//! Quickstart: analyze the paper's Figure 2 vulnerability and its fix.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use strtaint::{analyze_page, Config, Vfs};

fn main() {
    // The vulnerable page — the unanchored eregi() of the paper's
    // Figure 2 (Utopia News Pro).
    let vulnerable = r#"<?php
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($userid == '')
{
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
"#;

    let mut vfs = Vfs::new();
    vfs.add("useredit.php", vulnerable);
    let report = analyze_page(&vfs, "useredit.php", &Config::default())
        .expect("page parses");

    println!("== vulnerable page ==");
    print!("{report}");
    for (hotspot, finding) in report.findings() {
        println!(
            "\nA user can reach {} ({}:{}) with for example {:?} in the",
            hotspot.label,
            hotspot.file,
            hotspot.span,
            finding
                .witness
                .as_deref()
                .map(String::from_utf8_lossy)
                .unwrap_or_default()
        );
        println!("tainted position — the regex lacks anchors, so any string");
        println!("containing a digit passes the check.");
    }

    // The fix: anchor the filter.
    let fixed = vulnerable.replace("eregi('[0-9]+', $userid)", "preg_match('/^[0-9]+$/', $userid)");
    let mut vfs = Vfs::new();
    vfs.add("useredit.php", fixed);
    let report = analyze_page(&vfs, "useredit.php", &Config::default())
        .expect("page parses");
    println!("\n== fixed page ==");
    print!("{report}");
    assert!(report.is_verified());
    println!("\nWith the anchored check the analyzer *proves* the page safe");
    println!("(Theorem 3.4: no reports ⇒ no SQL command injection).");
}
