//! Diagnostic: run the analyzer over the corpus and print finding counts.
use strtaint::{analyze_app, Config};

fn main() {
    let verbose = std::env::args().any(|a| a == "-v");
    let filter: Option<String> = std::env::args().nth(1).filter(|a| a != "-v");
    for app in strtaint_corpus::apps::all() {
        if let Some(f) = &filter {
            if !app.name.to_lowercase().contains(&f.to_lowercase()) { continue; }
        }
        let t0 = std::time::Instant::now();
        let report = analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
        let d = report.direct_findings();
        let i = report.indirect_findings();
        println!(
            "{:<40} direct {} (want {}), indirect {} (want {})  [{:?}]",
            app.name, d.len(), app.truth.direct_total(), i.len(), app.truth.indirect, t0.elapsed()
        );
        if verbose || d.len() != app.truth.direct_total() || i.len() != app.truth.indirect {
            for (h, f) in report.distinct_findings() {
                println!("   {} @ {}:{} :: {}", h.label, h.file, h.span, f);
            }
            for p in &report.pages {
                for w in &p.warnings {
                    println!("   WARN[{}]: {}", p.entry, w);
                }
            }
        }
    }
}
