//! Audit a corpus application (or your own PHP tree) and print a full
//! report with witnesses.
//!
//! ```text
//! cargo run --release --example audit_app -- utopia      # corpus app
//! cargo run --release --example audit_app -- /path/to/php/project index.php
//! ```

use strtaint::{analyze_app, analyze_page_xss, Config, Vfs};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let xss = args.iter().any(|a| a == "--xss");
    args.retain(|a| a != "--xss");
    let (name, vfs, entries): (String, Vfs, Vec<String>) = match args.as_slice() {
        [app] if !app.contains('/') => {
            let app = match app.as_str() {
                "e107" => strtaint_corpus::apps::e107::build(),
                "eve" => strtaint_corpus::apps::eve::build(),
                "tiger" => strtaint_corpus::apps::tiger::build(),
                "utopia" => strtaint_corpus::apps::utopia::build(),
                "warp" => strtaint_corpus::apps::warp::build(),
                other => {
                    eprintln!("unknown corpus app {other:?} (e107|eve|tiger|utopia|warp)");
                    std::process::exit(2);
                }
            };
            (app.name.to_owned(), app.vfs, app.entries)
        }
        [dir, entry] => {
            let vfs = Vfs::from_dir(std::path::Path::new(dir)).expect("readable directory");
            (dir.clone(), vfs, vec![entry.clone()])
        }
        _ => {
            eprintln!("usage: audit_app <corpus-app> | audit_app <dir> <entry.php>");
            std::process::exit(2);
        }
    };

    let entry_refs: Vec<&str> = entries.iter().map(String::as_str).collect();
    if xss {
        // XSS mode: per-page reports from the echo-sink checker.
        let config = Config::default();
        for e in &entry_refs {
            match analyze_page_xss(&vfs, e, &config) {
                Ok(r) => print!("{r}"),
                Err(err) => eprintln!("{e}: {err}"),
            }
        }
        return;
    }
    let report = analyze_app(&name, &vfs, &entry_refs, &Config::default());
    println!("{report}");
    for page in &report.pages {
        if page.is_verified() && page.warnings.is_empty() {
            continue;
        }
        print!("{page}");
        for w in &page.warnings {
            println!("  warning: {w}");
        }
    }
    println!("\n=== distinct findings ===");
    for (h, f) in report.distinct_findings() {
        println!("{}:{} {} :: {}", h.file, h.span, h.label, f);
    }
}
