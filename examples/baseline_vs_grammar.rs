//! Side-by-side comparison with a classic binary taint analysis on the
//! paper's motivating cases (§1.1).
//!
//! ```text
//! cargo run --example baseline_vs_grammar
//! ```

use strtaint::{analyze_page, Config, Vfs};
use strtaint_baseline::taint_analyze;

struct Case {
    name: &'static str,
    src: &'static str,
    actually_vulnerable: bool,
}

const CASES: &[Case] = &[
    Case {
        name: "raw GET in quoted position",
        src: r#"<?php
$v = $_GET['v'];
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
        actually_vulnerable: true,
    },
    Case {
        name: "addslashes, quoted (safe)",
        src: r#"<?php
$v = addslashes($_GET['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
        actually_vulnerable: false,
    },
    Case {
        name: "addslashes, UNQUOTED numeric position (the paper's blind spot)",
        src: r#"<?php
$v = addslashes($_GET['v']);
$DB->query("SELECT * FROM t WHERE id=$v");
"#,
        actually_vulnerable: true,
    },
    Case {
        name: "anchored numeric check (safe)",
        src: r#"<?php
$v = $_GET['v'];
if (!preg_match('/^[0-9]+$/', $v)) { exit; }
$DB->query("SELECT * FROM t WHERE id='$v'");
"#,
        actually_vulnerable: false,
    },
    Case {
        name: "UNANCHORED numeric check (Figure 2)",
        src: r#"<?php
$v = $_GET['v'];
if (!eregi('[0-9]+', $v)) { exit; }
$DB->query("SELECT * FROM t WHERE id='$v'");
"#,
        actually_vulnerable: true,
    },
];

fn main() {
    println!(
        "{:<60} {:>10} {:>9} {:>9}",
        "case", "truth", "taint", "grammar"
    );
    let mut taint_correct = 0;
    let mut grammar_correct = 0;
    for case in CASES {
        let mut vfs = Vfs::new();
        vfs.add("p.php", case.src);
        let taint_flags = !taint_analyze(&vfs, "p.php").findings.is_empty();
        let grammar_flags = !analyze_page(&vfs, "p.php", &Config::default())
            .unwrap()
            .is_verified();
        let mark = |flagged: bool| {
            if flagged == case.actually_vulnerable {
                "ok"
            } else if flagged {
                "FP"
            } else {
                "MISS"
            }
        };
        if taint_flags == case.actually_vulnerable {
            taint_correct += 1;
        }
        if grammar_flags == case.actually_vulnerable {
            grammar_correct += 1;
        }
        println!(
            "{:<60} {:>10} {:>9} {:>9}",
            case.name,
            if case.actually_vulnerable { "vulnerable" } else { "safe" },
            mark(taint_flags),
            mark(grammar_flags),
        );
    }
    println!(
        "\nbinary taint: {taint_correct}/{} correct; grammar-based: {grammar_correct}/{} correct",
        CASES.len(),
        CASES.len()
    );
    assert_eq!(grammar_correct, CASES.len(), "the grammar analysis nails all cases");
}
