//! Sanitizer laboratory: inspect the transducer models (paper Fig. 6)
//! and their effect on languages.
//!
//! ```text
//! cargo run --example sanitizer_lab
//! ```

use strtaint_automata::fst::builders;
use strtaint_grammar::image::image;
use strtaint_grammar::lang::{bounded_language, sample_strings};
use strtaint_grammar::{Cfg, Taint};

fn main() {
    // The paper's Figure 6: str_replace("''", "'", ·).
    let fig6 = builders::figure6();
    println!("Figure 6 transducer: str_replace(\"''\", \"'\", ·)");
    for input in [&b"a''b"[..], b"''''", b"'", b"no quotes"] {
        let out = fig6.transduce_unique(input).unwrap();
        println!(
            "  {:?} -> {:?}",
            String::from_utf8_lossy(input),
            String::from_utf8_lossy(&out)
        );
    }

    // addslashes applied to a *language*, not a string: the image of a
    // grammar under the FST (the heart of §3.1.2).
    let mut g = Cfg::new();
    let attacker = g.add_nonterminal("attacker input");
    g.set_taint(attacker, Taint::DIRECT);
    g.add_literal_production(attacker, b"alice");
    g.add_literal_production(attacker, b"o'brien");
    g.add_literal_production(attacker, b"1' OR '1'='1");
    let (escaped, escaped_root) = image(&g, attacker, &builders::addslashes());
    println!("\naddslashes image of the attacker language:");
    for s in bounded_language(&escaped, escaped_root, 10).unwrap() {
        println!("  {:?}", String::from_utf8_lossy(&s));
    }

    // An infinite language through a replacement chain.
    let mut g2 = Cfg::new();
    let rec = g2.add_nonterminal("bbcode");
    g2.add_production(rec, {
        let mut v = g2.literal_symbols(b"[b]hi[/b]");
        v.push(strtaint_grammar::Symbol::N(rec));
        v
    });
    g2.add_production(rec, vec![]);
    let open = builders::replace_literal(b"[b]", b"<b>");
    let close = builders::replace_literal(b"[/b]", b"</b>");
    let (step1, r1) = image(&g2, rec, &open);
    let (step2, r2) = image(&step1, r1, &close);
    println!("\nBBCode replacement chain on ([b]hi[/b])*:");
    for s in sample_strings(&step2, r2, 40, 4) {
        println!("  {:?}", String::from_utf8_lossy(&s));
    }
    println!(
        "grammar growth: {} -> {} -> {} productions (the §5.3 blow-up)",
        g2.num_productions(),
        step1.num_productions(),
        step2.num_productions()
    );
}
