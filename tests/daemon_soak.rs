//! Fleet-scale soak for `strtaint serve` (ISSUE 6 acceptance): many
//! clients driving interleaved `analyze`/`invalidate`/`status`/`batch`
//! traffic across many workspaces through the bounded worker pool.
//!
//! What the soak pins, in order of importance:
//!
//! 1. **Zero cross-workspace leakage.** After the storm, every
//!    workspace's verdicts equal a serial single-workspace run over the
//!    same final tree (canonicalized: timing and engine-counter members
//!    stripped, since those legitimately depend on wall clock and
//!    shared-cache arrival order — the *verdict* content must match
//!    exactly).
//! 2. **Every request gets a structured answer.** No hangs, no torn
//!    lines, no panics — `ok:true` or `ok:false` with an `error`.
//! 3. **Shed-load under saturation.** With a one-deep queue and a
//!    stalled worker, excess traffic gets `overloaded` +
//!    `retry_after_ms`, and the daemon recovers when the stall clears.
//! 4. **Metrics tell the story**: request-latency histogram (p99
//!    derivable), queue-depth gauge, and shed counter are all present
//!    and consistent with the traffic driven.
//!
//! Scale knobs (CI runs a scaled-down soak, see
//! `.github/workflows/ci.yml`): `STRTAINT_SOAK_REQUESTS` (default
//! 1000) and `STRTAINT_SOAK_WORKSPACES` (default 12).

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use strtaint_corpus::synth::{synth_app, SynthConfig};
use strtaint_corpus::App;
use strtaint_daemon::json::{self, Json};
use strtaint_daemon::server::serve_socket;
use strtaint_daemon::{
    DaemonState, ServerConfig, ServerState, StallGate, WorkspaceMap,
};

fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One workspace's corpus: a small deterministic app, seeded per index
/// so workspaces differ (leakage between them would change verdicts).
fn ws_app(index: usize) -> App {
    synth_app(&SynthConfig {
        pages: 3,
        helpers: 2,
        filler_lines: 2,
        vuln_every: 2,
        replace_chain: 0,
        sinks_per_page: 1,
        seed: 100 + index as u64,
    })
}

/// The deterministic replacement body every `invalidate` in the soak
/// writes for `page0.php`: whatever order concurrent invalidates land
/// in, the final tree is the same, so a serial reference run is
/// well-defined.
fn variant_body(ws: usize) -> String {
    format!(
        "<?php\n$v = $_GET['w{ws}'];\n$r = $DB->query(\"SELECT * FROM t{ws} WHERE k='$v'\");\n"
    )
}

/// Strips members whose values legitimately differ between runs —
/// wall-clock timings and shared-cache engine counters — leaving the
/// verdict content (findings, hotspots, evidence) intact.
fn canonical(v: &Json) -> Json {
    match v {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "analysis_ms" && k != "check_ms" && k != "engine")
                .map(|(k, v)| (k.clone(), canonical(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(canonical).collect()),
        other => other.clone(),
    }
}

fn canonical_pages(response: &Json) -> String {
    let mut out = String::new();
    canonical(response.get("pages").expect("pages member")).write(&mut out);
    out
}

struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &PathBuf) -> Client {
        let mut last_err = None;
        for _ in 0..200 {
            match UnixStream::connect(socket) {
                Ok(s) => {
                    let reader = BufReader::new(s.try_clone().expect("clone stream"));
                    return Client { stream: s, reader };
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        panic!("socket never came up: {last_err:?}");
    }

    fn send(&mut self, line: &str) -> Json {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write newline");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "connection closed mid-soak");
        json::parse(response.trim()).expect("response parses as JSON")
    }
}

fn fleet_server(workspaces: usize, config: ServerConfig) -> (ServerState, Vec<App>) {
    let apps: Vec<App> = (0..workspaces).map(ws_app).collect();
    let map = WorkspaceMap::new(
        "ws0",
        Arc::new(DaemonState::new(
            apps[0].vfs.clone(),
            strtaint::Config::default(),
            None,
        )),
    );
    for (i, app) in apps.iter().enumerate().skip(1) {
        map.insert(
            &format!("ws{i}"),
            Arc::new(DaemonState::new(
                app.vfs.clone(),
                strtaint::Config::default(),
                None,
            )),
        );
    }
    (ServerState::new(map, config), apps)
}

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("strtaint-soak-{}-{tag}.sock", std::process::id()))
}

#[test]
fn soak_interleaved_fleet_traffic_has_no_cross_workspace_leakage() {
    let total_requests = env_knob("STRTAINT_SOAK_REQUESTS", 1_000);
    let n_workspaces = env_knob("STRTAINT_SOAK_WORKSPACES", 12).max(2);
    let n_clients = 8usize;

    let (server, apps) = fleet_server(
        n_workspaces,
        ServerConfig {
            workers: 4,
            queue_depth: 256,
            drain: Duration::from_millis(2_000),
        },
    );
    let socket = temp_socket("fleet");
    let _ = std::fs::remove_file(&socket);

    std::thread::scope(|scope| {
        let server_ref = &server;
        let sock = socket.clone();
        let listener = scope.spawn(move || serve_socket(server_ref, &sock));

        let per_client = total_requests / n_clients;
        let mut drivers = Vec::new();
        for c in 0..n_clients {
            let socket = socket.clone();
            let apps = &apps;
            drivers.push(scope.spawn(move || {
                let mut client = Client::connect(&socket);
                let mut answered = 0usize;
                for i in 0..per_client {
                    // Deterministic interleave: workspace and verb vary
                    // per (client, step) with no RNG.
                    let ws = (c * 31 + i * 7) % n_workspaces;
                    let entry = &apps[ws].entries[i % apps[ws].entries.len()];
                    let line = match i % 5 {
                        // Invalidate always writes the same body for
                        // (ws, page0), so the final tree is
                        // order-independent.
                        0 => format!(
                            "{{\"cmd\":\"invalidate\",\"workspace\":\"ws{ws}\",\"path\":\"page0.php\",\"contents\":{}}}",
                            Json::Str(variant_body(ws)).to_string()
                        ),
                        1 => format!("{{\"cmd\":\"status\",\"workspace\":\"ws{ws}\"}}"),
                        2 => format!(
                            "{{\"cmd\":\"batch\",\"workspace\":\"ws{ws}\",\"ops\":[{{\"cmd\":\"invalidate\",\"path\":\"page0.php\",\"contents\":{}}},{{\"cmd\":\"analyze\",\"entries\":[\"page0.php\"]}}]}}",
                            Json::Str(variant_body(ws)).to_string()
                        ),
                        _ => format!(
                            "{{\"cmd\":\"analyze\",\"workspace\":\"ws{ws}\",\"entries\":[\"{entry}\"],\"priority\":{}}}",
                            i % 3
                        ),
                    };
                    let response = client.send(&line);
                    // Every response is structured: ok, or an error
                    // string. Nothing else is acceptable under load.
                    match response.get("ok").and_then(Json::as_bool) {
                        Some(true) => {}
                        Some(false) => {
                            assert!(
                                response.get("error").and_then(Json::as_str).is_some(),
                                "failure without error member: {}",
                                response.to_string()
                            );
                        }
                        None => panic!("unstructured response: {}", response.to_string()),
                    }
                    answered += 1;
                }
                answered
            }));
        }
        // A dedicated monitor polls the query-cache counters while the
        // storm runs: accumulated engine stats only ever grow, so every
        // sampled sequence must be non-decreasing. A decrease would
        // mean counters are being reset or torn mid-merge.
        let monitor = {
            let socket = socket.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&socket);
                let mut samples: Vec<[f64; 4]> = Vec::new();
                for _ in 0..30 {
                    let m = client.send("{\"cmd\":\"metrics\",\"workspace\":\"ws0\"}");
                    let metrics = m.get("metrics").expect("metrics member");
                    let read = |name: &str| {
                        metrics
                            .get(name)
                            .and_then(Json::as_num)
                            .unwrap_or_else(|| panic!("gauge {name} missing"))
                    };
                    samples.push([
                        read("qcache.hits"),
                        read("qcache.misses"),
                        read("qcache.evictions"),
                        read("witness.skipped"),
                    ]);
                    std::thread::sleep(Duration::from_millis(20));
                }
                for w in samples.windows(2) {
                    for k in 0..4 {
                        assert!(
                            w[1][k] >= w[0][k],
                            "qcache counter {k} decreased mid-soak: {:?} -> {:?}",
                            w[0],
                            w[1]
                        );
                    }
                }
                samples.last().expect("samples nonempty")[1]
            })
        };
        let answered: usize = drivers.into_iter().map(|d| d.join().expect("driver")).sum();
        assert_eq!(answered, per_client * n_clients, "no request lost");
        let final_misses = monitor.join().expect("monitor");
        assert!(
            final_misses > 0.0,
            "soak drove analyses but the query cache saw no queries"
        );

        // Leakage check: per workspace, the daemon's post-storm verdicts
        // must equal a serial single-workspace run over the same final
        // tree (initial app with page0.php replaced by the variant).
        let mut client = Client::connect(&socket);
        for (ws, app) in apps.iter().enumerate() {
            let entries: Vec<String> =
                app.entries.iter().map(|e| format!("\"{e}\"")).collect();
            let daemon_view = client.send(&format!(
                "{{\"cmd\":\"analyze\",\"workspace\":\"ws{ws}\",\"entries\":[{}]}}",
                entries.join(",")
            ));
            assert_eq!(daemon_view.get("ok").and_then(Json::as_bool), Some(true));

            let mut reference_vfs = app.vfs.clone();
            reference_vfs.add("page0.php", variant_body(ws));
            let reference = DaemonState::new(
                reference_vfs,
                strtaint::Config::default(),
                None,
            );
            let reference_view = strtaint_daemon::protocol::handle_line(
                &reference,
                &format!("{{\"cmd\":\"analyze\",\"entries\":[{}]}}", entries.join(",")),
            )
            .response;
            assert_eq!(
                canonical_pages(&daemon_view),
                canonical_pages(&reference_view),
                "workspace ws{ws} diverged from its serial reference"
            );
        }

        // Metrics: the latency histogram saw the traffic (p99 is
        // derivable from its cumulative buckets), and queue/shed
        // metrics are reported.
        let m = client.send("{\"cmd\":\"metrics\"}");
        let metrics = m.get("metrics").expect("metrics member");
        let request_us = metrics.get("daemon.request_us").expect("latency histogram");
        let count = request_us
            .get("count")
            .and_then(Json::as_num)
            .expect("histogram count");
        assert!(
            count >= (per_client * n_clients) as f64,
            "histogram missed requests: {count}"
        );
        let buckets = request_us
            .get("buckets")
            .and_then(Json::as_arr)
            .expect("buckets");
        let rank = (0.99 * count).ceil();
        let p99 = buckets
            .iter()
            .find(|b| b.get("n").and_then(Json::as_num).unwrap_or(0.0) >= rank)
            .expect("p99 bucket exists");
        assert!(
            p99.get("le").is_some(),
            "p99 latency derivable from the histogram"
        );
        assert!(
            metrics.get("daemon.queue_depth").and_then(Json::as_num).is_some(),
            "queue-depth gauge reported"
        );
        assert!(
            metrics.get("daemon.shed").and_then(Json::as_num).is_some(),
            "shed counter reported"
        );

        client.send("{\"cmd\":\"shutdown\"}");
        drop(client);
        listener.join().expect("listener thread").expect("clean exit");
    });
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn saturated_queue_sheds_with_retry_hint_and_recovers() {
    let (server, _apps) = fleet_server(
        2,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            drain: Duration::from_millis(2_000),
        },
    );
    let gate = StallGate::new();
    server.pool().fault().arm_stall_next(Arc::clone(&gate));
    let socket = temp_socket("shed");
    let _ = std::fs::remove_file(&socket);

    std::thread::scope(|scope| {
        let server_ref = &server;
        let sock = socket.clone();
        let listener = scope.spawn(move || serve_socket(server_ref, &sock));

        // conn1's analyze occupies the (stalled) worker.
        let mut conn1 = Client::connect(&socket);
        conn1
            .stream
            .write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"page0.php\"]}\n")
            .expect("write");
        std::thread::sleep(Duration::from_millis(100));

        // conn2's analyze fills the one-deep queue.
        let mut conn2 = Client::connect(&socket);
        conn2
            .stream
            .write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"page1.php\"]}\n")
            .expect("write");
        std::thread::sleep(Duration::from_millis(100));

        // conn3 must be shed immediately with a structured backoff —
        // not queued, not hung.
        let mut conn3 = Client::connect(&socket);
        let shed = conn3.send("{\"cmd\":\"analyze\",\"entries\":[\"page2.php\"]}");
        assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(shed.get("error").and_then(Json::as_str), Some("overloaded"));
        let retry = shed
            .get("retry_after_ms")
            .and_then(Json::as_num)
            .expect("retry hint");
        assert!((10.0..=1_000.0).contains(&retry));

        // Cheap verbs bypass the pool: status answers even while the
        // queue is saturated, and reports the shed.
        let status = conn3.send("{\"cmd\":\"status\"}");
        assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
        assert!(status.get("shed").and_then(Json::as_num).unwrap_or(0.0) >= 1.0);
        assert!(status.get("queue_depth").and_then(Json::as_num).unwrap_or(0.0) >= 1.0);

        // Recovery: release the stall; both held requests complete and
        // new traffic flows.
        gate.release();
        let mut r1 = String::new();
        conn1.reader.read_line(&mut r1).expect("conn1 response");
        assert_eq!(
            json::parse(r1.trim())
                .expect("parses")
                .get("ok")
                .and_then(Json::as_bool),
            Some(true)
        );
        let mut r2 = String::new();
        conn2.reader.read_line(&mut r2).expect("conn2 response");
        assert_eq!(
            json::parse(r2.trim())
                .expect("parses")
                .get("ok")
                .and_then(Json::as_bool),
            Some(true)
        );
        let again = conn3.send("{\"cmd\":\"analyze\",\"entries\":[\"page2.php\"]}");
        assert_eq!(again.get("ok").and_then(Json::as_bool), Some(true));

        conn3.send("{\"cmd\":\"shutdown\"}");
        drop((conn1, conn2, conn3));
        listener.join().expect("listener thread").expect("clean exit");
    });
    let _ = std::fs::remove_file(&socket);
}
