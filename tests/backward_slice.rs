//! The backward query-relevance slice (paper §7 future work): with
//! `Config::backward_slice` on, display-only string work is widened,
//! query findings are unchanged, and Tiger-style pages analyze much
//! faster.



use strtaint::{analyze_app, analyze_page, Config, Vfs};

fn sliced() -> Config {
    Config {
        backward_slice: true,
        ..Config::default()
    }
}

#[test]
fn findings_unchanged_on_corpus_apps() {
    for app in [
        strtaint_corpus::apps::eve::build(),
        strtaint_corpus::apps::utopia::build(),
        strtaint_corpus::apps::warp::build(),
    ] {
        let plain = analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
        let fast = analyze_app(app.name, &app.vfs, &app.entry_refs(), &sliced());
        assert_eq!(
            plain.direct_findings().len(),
            fast.direct_findings().len(),
            "{}: direct findings must not change",
            app.name
        );
        assert_eq!(
            plain.indirect_findings().len(),
            fast.indirect_findings().len(),
            "{}: indirect findings must not change",
            app.name
        );
    }
}

#[test]
fn tiger_forum_speedup() {
    // The forum page runs BBCode chains on both a query-relevant value
    // (the cached body) and a display-only one (the preview). The
    // slice must keep the former precise (same findings) and skip the
    // latter.
    let app = strtaint_corpus::apps::tiger::build();
    let plain = analyze_page(&app.vfs, "forum.php", &Config::default()).unwrap();
    let fast = analyze_page(&app.vfs, "forum.php", &sliced()).unwrap();
    assert_eq!(
        plain.findings().count(),
        fast.findings().count(),
        "query findings preserved"
    );
    // The slice targets the string-analysis phase (the paper's took
    // hours on Tiger); the display-only chain must be skipped.
    assert!(
        fast.analysis_time < plain.analysis_time,
        "analysis must speed up: {:?} vs {:?}",
        fast.analysis_time,
        plain.analysis_time
    );
}

#[test]
fn display_chain_widened_but_query_precise() {
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php
$pv = str_replace('[b]', '<b>', $_POST['preview']);
echo $pv;
$v = addslashes($_POST['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    let r = analyze_page(&vfs, "p.php", &sliced()).unwrap();
    // The sanitizer on the query path stays precise: page verifies.
    assert!(r.is_verified(), "{r}");
}

#[test]
fn slice_is_sound_not_laundering() {
    // A vulnerable flow must still be reported with the slice on, even
    // through a display-looking helper.
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php
$x = str_replace('[b]', '<b>', $_GET['x']);
$DB->query("SELECT * FROM t WHERE x='$x'");
"#,
    );
    let r = analyze_page(&vfs, "p.php", &sliced()).unwrap();
    assert!(!r.is_verified(), "slice must not launder taint");
}
