//! Differential tests for the optimized check path: the cross-page
//! query cache, lazy witness extraction, and the Aho–Corasick C4
//! prefilter must be *observationally invisible*. The assertions here
//! are deliberately the strongest available — byte-identical SARIF
//! documents across the optimized, prepared-baseline, and naive
//! reference engines on the full corpus with every built-in policy
//! enabled, and byte-identical budget-exhaustion findings with the
//! cache on and off under tight fuel. Any divergence is a replay or
//! soundness bug, not a formatting nit.

use strtaint::{
    analyze_page_policies_cached, render, CheckOptions, Config, PageReport, PolicyChecker,
    SummaryCache, Vfs,
};
use strtaint_analysis::analyze;
use strtaint_checker::{CheckKind, Checker};
use strtaint_corpus::{apps, synth::synth_app, synth::SynthConfig, App};
use strtaint_grammar::Budget;

/// Every built-in policy id, so the differential covers the SQLCIV and
/// XSS checkers plus all three cascade classes in one run.
fn all_policies() -> Vec<String> {
    strtaint::policy::builtin()
        .iter()
        .map(|p| p.id.to_owned())
        .collect()
}

/// Analyzes every page of `vfs` with `checker` and renders the SARIF
/// document the CLI would print. Unanalyzable entries are skipped
/// identically for every engine (analysis is checker-independent).
fn sarif_for(vfs: &Vfs, entries: &[&str], config: &Config, checker: &PolicyChecker) -> String {
    let summaries = SummaryCache::new();
    let mut reports: Vec<PageReport> = Vec::new();
    for entry in entries {
        if let Ok(r) = analyze_page_policies_cached(vfs, entry, config, checker, &summaries) {
            reports.push(r);
        }
    }
    assert!(!reports.is_empty(), "no analyzable pages in corpus app");
    render::sarif(&reports)
}

/// The tentpole differential: optimized (cache + lazy witnesses +
/// prefilter), prepared baseline (no cache, no prefilter), and the
/// naive reference engine must render byte-identical SARIF for `app`
/// under all five policies. The optimized checker runs the corpus
/// twice so the second pass replays memoized verdicts — warm-cache
/// SARIF must also match.
fn assert_sarif_identical(app: &App) {
    let config = Config {
        policies: all_policies(),
        ..Config::default()
    };
    let entries: Vec<&str> = app.entry_refs();

    let optimized = PolicyChecker::new();
    let prepared = PolicyChecker::with_options(CheckOptions {
        query_cache: false,
        prefilter: false,
        ..CheckOptions::default()
    });
    let naive = PolicyChecker::with_options(CheckOptions {
        naive_engine: true,
        ..CheckOptions::default()
    });
    let eager = PolicyChecker::with_options(CheckOptions {
        eager_witness: true,
        ..CheckOptions::default()
    });

    let cold = sarif_for(&app.vfs, &entries, &config, &optimized);
    let warm = sarif_for(&app.vfs, &entries, &config, &optimized);
    let base = sarif_for(&app.vfs, &entries, &config, &prepared);
    let reference = sarif_for(&app.vfs, &entries, &config, &naive);
    let eagerly = sarif_for(&app.vfs, &entries, &config, &eager);

    assert_eq!(cold, base, "{}: optimized vs prepared SARIF differ", app.name);
    assert_eq!(cold, reference, "{}: optimized vs naive SARIF differ", app.name);
    assert_eq!(cold, warm, "{}: cold vs warm-cache SARIF differ", app.name);
    assert_eq!(cold, eagerly, "{}: lazy vs eager-witness SARIF differ", app.name);
}

#[test]
fn eve_sarif_identical_across_engines() {
    assert_sarif_identical(&apps::eve::build());
}

#[test]
fn utopia_sarif_identical_across_engines() {
    assert_sarif_identical(&apps::utopia::build());
}

#[test]
fn synth_sarif_identical_across_engines() {
    let app = synth_app(&SynthConfig {
        pages: 6,
        replace_chain: 2,
        ..SynthConfig::default()
    });
    assert_sarif_identical(&app);
}

/// A comparable rendering of one hotspot report, including witness
/// bytes and truncation flags — everything the user can observe.
fn render_reports(reports: &[strtaint_checker::HotspotReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            let mut s = format!("safe={} checked={} verified={}", r.is_safe(), r.checked, r.verified);
            for f in &r.findings {
                s.push_str(&format!(
                    " [{:?} {} w={:?} t={}]",
                    f.kind, f.name, f.witness, f.witness_truncated
                ));
            }
            s
        })
        .collect()
}

/// Checks every hotspot of every page serially (one worker, so fuel
/// draw order is deterministic) under `fuel`, returning the rendered
/// reports of all pages concatenated.
fn check_under_fuel(app: &App, checker: &Checker, fuel: u64) -> Vec<String> {
    let config = Config::default();
    let mut out = Vec::new();
    for entry in app.entry_refs() {
        let analysis = match analyze(&app.vfs, entry, &config) {
            Ok(a) => a,
            Err(_) => continue,
        };
        let roots: Vec<_> = analysis.hotspots.iter().map(|h| h.root).collect();
        // Fresh budget per page, checking phase only: identical fuel
        // pools for every engine variant.
        let budget = Budget::new(None, Some(fuel), None);
        out.extend(render_reports(&checker.check_hotspots_with(
            &analysis.cfg,
            &roots,
            &budget,
            1,
        )));
    }
    assert!(!out.is_empty(), "{}: no hotspot reports", app.name);
    out
}

/// The budget-parity regression (satellite): with `--fuel` tight
/// enough to trip mid-page, the cache-on and cache-off runs must
/// produce identical reports — same `BudgetExhausted` findings at the
/// same hotspots — because replaying a memoized verdict re-charges
/// exactly the fuel the original computation paid. A warm second pass
/// with the same checker must also agree (replayed charges trip at
/// the same point as live ones).
#[test]
fn budget_exhaustion_identical_with_cache_on_and_off() {
    let app = apps::eve::build();
    // Sweep fuel levels so at least one lands mid-page: too high and
    // nothing trips, too low and everything trips immediately.
    let mut saw_exhaustion = false;
    for fuel in [200, 1_000, 5_000, 20_000] {
        let cached = Checker::new();
        let uncached = Checker::with_options(CheckOptions {
            query_cache: false,
            ..CheckOptions::default()
        });
        let cold = check_under_fuel(&app, &cached, fuel);
        let warm = check_under_fuel(&app, &cached, fuel);
        let off = check_under_fuel(&app, &uncached, fuel);
        assert_eq!(cold, off, "fuel={fuel}: cache-on vs cache-off reports differ");
        assert_eq!(cold, warm, "fuel={fuel}: cold vs warm-cache reports differ");
        saw_exhaustion |= cold
            .iter()
            .any(|r| r.contains(&format!("{:?}", CheckKind::BudgetExhausted)));
    }
    assert!(
        saw_exhaustion,
        "fuel sweep never produced a BudgetExhausted finding — the parity \
         assertion is vacuous; lower the sweep"
    );
}
