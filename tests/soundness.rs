//! Property-based soundness and invariant tests (Theorem 3.4 and
//! Theorem 3.1 at system level).

use proptest::prelude::*;

use strtaint::{analyze_page, Config, Vfs};
use strtaint_automata::{Dfa, Regex};
use strtaint_grammar::intersect::intersect;
use strtaint_grammar::lang::sample_strings;
use strtaint_grammar::{Cfg, Symbol, Taint};

fn page(src: &str) -> strtaint::PageReport {
    let mut vfs = Vfs::new();
    vfs.add("p.php", src);
    analyze_page(&vfs, "p.php", &Config::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: a raw GET parameter spliced into a query must be
    /// reported regardless of the surrounding constant SQL text.
    #[test]
    fn raw_source_always_reported(
        table in "[a-z]{1,8}",
        column in "[a-z]{1,8}",
        param in "[a-z]{1,8}",
    ) {
        let src = format!(
            "<?php\n$v = $_GET['{param}'];\n$DB->query(\"SELECT * FROM {table} WHERE {column}='$v'\");\n"
        );
        let r = page(&src);
        prop_assert!(!r.is_verified());
    }

    /// Precision: an anchored-numeric-checked parameter verifies in a
    /// quoted position, whatever the constant skeleton.
    #[test]
    fn checked_numeric_always_verifies(
        table in "[a-z]{1,8}",
        column in "[a-z]{1,8}",
    ) {
        let src = format!(
            "<?php\n$v = $_GET['x'];\nif (!preg_match('/^[0-9]+$/', $v)) {{ exit; }}\n$DB->query(\"SELECT * FROM {table} WHERE {column}='$v'\");\n"
        );
        let r = page(&src);
        prop_assert!(r.is_verified(), "{}", r);
    }

    /// Soundness of the grammar phase: every string of the generated
    /// query grammar must actually be producible by the program text
    /// skeleton — here, it must start with the constant prefix.
    #[test]
    fn grammar_respects_constant_skeleton(prefix in "[A-Z]{3,10}") {
        let src = format!(
            "<?php\n$v = $_GET['x'];\n$DB->query(\"{prefix} '$v'\");\n"
        );
        let mut vfs = Vfs::new();
        vfs.add("p.php", src);
        let analysis = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
        let root = analysis.hotspots[0].root;
        for s in sample_strings(&analysis.cfg, root, 30, 16) {
            prop_assert!(
                s.starts_with(prefix.as_bytes()),
                "{:?} lost the constant prefix {:?}", s, prefix
            );
        }
    }

    /// Theorem 3.1 at the API level: intersection preserves taint — a
    /// tainted sub-language that survives the filter is still labeled.
    #[test]
    fn intersection_preserves_taint(strings in prop::collection::vec("[a-z0-9']{0,6}", 1..6)) {
        let mut g = Cfg::new();
        let x = g.add_nonterminal("src");
        g.set_taint(x, Taint::DIRECT);
        for s in &strings {
            g.add_literal_production(x, s.as_bytes());
        }
        let root = g.add_nonterminal("root");
        let mut rhs = g.literal_symbols(b"v=");
        rhs.push(Symbol::N(x));
        g.add_production(root, rhs);
        let filter = Regex::new("[0-9]").unwrap().match_dfa();
        let (out, new_root) = intersect(&g, root, &filter);
        let survives = strings.iter().any(|s| s.bytes().any(|b| b.is_ascii_digit()));
        if survives {
            let labeled = out.labeled_nonterminals();
            prop_assert!(
                labeled.iter().any(|&id| out.taint(id).is_direct()
                    && !out.is_empty_language(id)),
                "direct label lost through intersection"
            );
        } else {
            prop_assert!(out.is_empty_language(new_root));
        }
    }

    /// The C1 automaton agrees with a direct character-count oracle on
    /// arbitrary inputs.
    #[test]
    fn odd_quote_dfa_matches_oracle(s in "[a-z'\\\\]{0,24}") {
        let d = strtaint_checker::dfas::odd_unescaped_quotes();
        let bytes = s.as_bytes();
        // Oracle: scan counting quotes not preceded by an unconsumed
        // backslash escape.
        let mut count = 0usize;
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'\'' => {
                    count += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        prop_assert_eq!(d.accepts(bytes), count % 2 == 1, "{}", s);
    }

    /// Regex-engine / automata cross-check: `matches` agrees with the
    /// determinized-minimized automaton.
    #[test]
    fn regex_dfa_agreement(input in "[a-c']{0,12}") {
        for pat in ["^[a-c]+$", "a.*c", "^(a|bb)*$", "'.*'"] {
            let re = Regex::new(pat).unwrap();
            let d = re.match_dfa();
            prop_assert_eq!(re.matches(input.as_bytes()), d.accepts(input.as_bytes()),
                "pattern {} on {:?}", pat, input);
        }
    }

    /// FST sanity: addslashes output never contains an unescaped quote
    /// (the property that makes it a sanitizer inside string literals).
    #[test]
    fn addslashes_output_never_has_lone_quote(input in "[ a-z'\"\\\\]{0,16}") {
        let f = strtaint_automata::fst::builders::addslashes();
        let out = f.transduce_unique(input.as_bytes()).unwrap();
        let d = strtaint_checker::dfas::contains_unescaped_quote();
        prop_assert!(!d.accepts(&out), "{:?} -> {:?}", input, out);
    }

    /// Baseline comparison: on pages where both run, the grammar-based
    /// analyzer never misses something the baseline finds on raw
    /// sources (the baseline's findings on *unsanitized* flows are a
    /// subset of ours).
    #[test]
    fn grammar_finds_what_baseline_finds_raw(param in "[a-z]{1,6}") {
        let src = format!(
            "<?php\n$v = $_GET['{param}'];\n$DB->query(\"SELECT * FROM t WHERE c='$v'\");\n"
        );
        let mut vfs = Vfs::new();
        vfs.add("p.php", src.clone());
        let base = strtaint_baseline::taint_analyze(&vfs, "p.php");
        let ours = analyze_page(&vfs, "p.php", &Config::default()).unwrap();
        if !base.findings.is_empty() {
            prop_assert!(!ours.is_verified());
        }
    }
}

/// Deterministic check of the intersection-emptiness/derives agreement
/// on a recursive grammar.
#[test]
fn intersection_agrees_with_membership() {
    let mut g = Cfg::new();
    let a = g.add_nonterminal("A");
    g.add_production(a, vec![Symbol::T(b'('), Symbol::N(a), Symbol::T(b')')]);
    g.add_literal_production(a, b"x");
    for pat in ["^\\(+x\\)+$", "^x$", "^[()]*$", "^\\(\\(x\\)\\)$"] {
        let d: Dfa = Regex::new(pat).unwrap().match_dfa();
        let (out, root) = intersect(&g, a, &d);
        for s in sample_strings(&g, a, 12, 24) {
            let expected = d.accepts(&s);
            assert_eq!(
                out.derives(root, &s),
                expected,
                "pattern {pat} on {:?}",
                String::from_utf8_lossy(&s)
            );
        }
    }
}
