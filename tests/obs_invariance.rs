//! Differential test: observation never perturbs analysis.
//!
//! The tracing layer promises that no verdict byte depends on the
//! tracing mode — spans read clocks and bump atomics, nothing else.
//! This test runs corpus applications once with tracing fully off and
//! once with full tracing active (the `--trace-json` configuration,
//! trace actually written), renders every page verdict through the
//! daemon's wire serializer and all findings through the SARIF
//! renderer, and requires the bytes to be identical.
//!
//! Wall-clock members (`analysis_ms`/`check_ms`) are zeroed before
//! rendering: they differ between any two runs regardless of mode and
//! carry no verdict content.
//!
//! The companion `#[ignore]`d test bounds the *overhead* of tracing
//! (aggregate mode within 5% of disabled on a warm corpus run); CI
//! runs it in a dedicated job where the machine is quiet.

use std::time::{Duration, Instant};

use strtaint::{analyze_page_cached, render, Checker, Config, PageReport, SummaryCache};
use strtaint_corpus::apps;
use strtaint_daemon::verdict::page_to_json;
use strtaint_obs as obs;

/// Analyzes every entry of `app`, zeroing the wall-clock members so
/// two runs of the same tree render identically.
fn run_app(app: &strtaint_corpus::App) -> Vec<PageReport> {
    let config = Config::default();
    let checker = Checker::new();
    let summaries = SummaryCache::new();
    app.entries
        .iter()
        .map(|entry| {
            let mut report = analyze_page_cached(&app.vfs, entry, &config, &checker, &summaries)
                .expect("corpus entries parse");
            report.analysis_time = Duration::ZERO;
            report.check_time = Duration::ZERO;
            report
        })
        .collect()
}

/// Renders the bytes a daemon client and a CI run would see: one wire
/// JSON line per page verdict, plus the SARIF document over all pages.
fn render_all(reports: &[PageReport]) -> (Vec<String>, String) {
    let verdicts = reports.iter().map(|r| page_to_json(r).to_string()).collect();
    (verdicts, render::sarif(reports))
}

#[test]
fn verdicts_and_sarif_are_byte_identical_across_tracing_modes() {
    for app in [apps::eve::build(), apps::utopia::build()] {
        // Baseline: tracing fully off.
        obs::set_mode(obs::Mode::Off);
        let (verdicts_off, sarif_off) = render_all(&run_app(&app));

        // Full tracing, trace written — the `--trace-json` path.
        obs::set_mode(obs::Mode::Full);
        obs::reset();
        let (verdicts_full, sarif_full) = render_all(&run_app(&app));
        let dir = std::env::temp_dir().join(format!("obs_invariance_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let trace_path = dir.join(format!("{}.trace.json", app.name));
        obs::write_chrome_trace(&trace_path).expect("trace written");
        obs::set_mode(obs::Mode::Off);

        assert_eq!(
            verdicts_off.len(),
            verdicts_full.len(),
            "{}: page count differs across modes",
            app.name
        );
        for (off, full) in verdicts_off.iter().zip(&verdicts_full) {
            assert_eq!(off, full, "{}: verdict bytes differ across modes", app.name);
        }
        assert_eq!(
            sarif_off, sarif_full,
            "{}: SARIF bytes differ across modes",
            app.name
        );

        // The written trace is well-formed under the daemon's parser
        // and covers the pipeline phases the run exercised.
        let trace = std::fs::read_to_string(&trace_path).expect("trace readable");
        let parsed = strtaint_daemon::json::parse(&trace).expect("trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(strtaint_daemon::json::Json::as_arr)
            .expect("traceEvents");
        assert!(!events.is_empty(), "{}: trace is empty", app.name);
        let names: std::collections::BTreeSet<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(strtaint_daemon::json::Json::as_str))
            .collect();
        for expected in ["page", "lower", "summary", "emit", "check"] {
            assert!(
                names.contains(expected),
                "{}: no {expected:?} span in trace (got {names:?})",
                app.name
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Tracing overhead bound: a warm corpus run with aggregate tracing
/// must stay within 5% of the same run with tracing off. Run with
/// `--ignored` (CI gives it a dedicated quiet job; laptop noise can
/// exceed the margin).
#[test]
#[ignore = "timing-sensitive; run via scripts/overhead.sh or CI's overhead job"]
fn aggregate_tracing_overhead_is_within_5_percent() {
    let app = apps::eve::build();
    // Each sample times several back-to-back corpus runs: a single
    // scheduler interruption (a couple of milliseconds on a busy CI
    // box) then costs a percent of the sample instead of swamping the
    // margin outright.
    let time_run = || {
        let t = Instant::now();
        for _ in 0..4 {
            run_app(&app);
        }
        t.elapsed().as_secs_f64()
    };
    // Warm up caches and the allocator before timing either mode.
    obs::set_mode(obs::Mode::Off);
    time_run();

    // Interleave the two modes round by round, alternating which goes
    // first, and take each mode's best. Two biases have to die here:
    // timing one mode's whole block after the other's turns load or
    // clock-frequency drift into a bias against the later mode, and on
    // a busy single-core machine even the *position within a round* is
    // biased — periodic background work can alias against the round
    // period and always land on the same slot. Alternating the order
    // gives both modes equal shots at every position, so min() finds
    // each mode's true floor.
    //
    // Samples on a loaded machine are roughly bimodal (clean vs
    // interrupted), so sample adaptively: stop as soon as both floors
    // demonstrate the bound, give up only after many rounds. A fixed
    // small round count flakes whenever one mode happens to draw only
    // interrupted samples.
    let mut off = f64::INFINITY;
    let mut aggregate = f64::INFINITY;
    for round in 0..12 {
        let pair = if round % 2 == 0 {
            [obs::Mode::Off, obs::Mode::Aggregate]
        } else {
            [obs::Mode::Aggregate, obs::Mode::Off]
        };
        for mode in pair {
            obs::set_mode(mode);
            obs::reset();
            let t = time_run();
            match mode {
                obs::Mode::Off => off = off.min(t),
                _ => aggregate = aggregate.min(t),
            }
        }
        if round >= 3 && aggregate <= off * 1.05 {
            break;
        }
    }
    obs::set_mode(obs::Mode::Off);

    let ratio = aggregate / off;
    assert!(
        ratio <= 1.05,
        "aggregate tracing overhead {:.1}% exceeds 5% (off {off:.4}s, aggregate {aggregate:.4}s)",
        (ratio - 1.0) * 100.0
    );
}

/// Diagnostic companion to the overhead bound: same harness, both
/// positions tracing-off. If this "null" pair ever shows a spread
/// comparable to the real pair, the discrepancy is measurement noise,
/// not tracing cost.
#[test]
#[ignore = "diagnostic; run manually with --ignored --nocapture"]
fn overhead_null_experiment() {
    let app = apps::eve::build();
    let time_run = || {
        let t = Instant::now();
        run_app(&app);
        t.elapsed().as_secs_f64()
    };
    obs::set_mode(obs::Mode::Off);
    time_run();
    let mut first = f64::INFINITY;
    let mut second = f64::INFINITY;
    for _ in 0..7 {
        obs::set_mode(obs::Mode::Off);
        first = first.min(time_run());
        obs::set_mode(obs::Mode::Off);
        obs::reset();
        second = second.min(time_run());
    }
    println!("null pair: first {first:.4}s second {second:.4}s ratio {:.3}", second / first);
}
