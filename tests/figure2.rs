//! Reproduces the paper's Figure 2 (the Utopia News Pro `userid`
//! vulnerability) and Figure 4 (the generated grammar), end to end.

use strtaint::{analyze_page, CheckKind, Config, Vfs};

const FIGURE2: &str = r#"<?php
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
if ($userid == '')
{
    unp_msg($gp_invalidrequest);
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user`"
    . " WHERE userid='$userid'");
if (!$DB->is_single_row($getuser))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
"#;

fn vfs_with(src: &str) -> Vfs {
    let mut vfs = Vfs::new();
    vfs.add("useredit.php", src);
    vfs
}

#[test]
fn figure2_vulnerability_is_reported() {
    let report = analyze_page(&vfs_with(FIGURE2), "useredit.php", &Config::default()).unwrap();
    assert_eq!(report.hotspots.len(), 1);
    assert!(!report.is_verified(), "{report}");
    let findings: Vec<_> = report.findings().collect();
    assert_eq!(findings.len(), 1);
    let (_, f) = findings[0];
    assert!(f.taint.is_direct());
    assert_eq!(f.kind, CheckKind::OddQuotes);
    assert_eq!(f.name, "_GET[userid]");
    // The witness must pass the broken filter (contain a digit) and
    // carry an odd number of unescaped quotes.
    let w = f.witness.as_ref().expect("witness extracted");
    assert!(w.iter().any(|b| b.is_ascii_digit()), "witness passes eregi: {w:?}");
    assert!(w.contains(&b'\''));
}

#[test]
fn figure2_attack_query_is_derivable() {
    // The exact query the paper shows the attacker producing.
    let mut vfs = vfs_with(FIGURE2);
    vfs.add("x.php", ""); // unrelated
    let analysis =
        strtaint_analysis::analyze(&vfs, "useredit.php", &Config::default()).unwrap();
    let root = analysis.hotspots[0].root;
    let attack =
        b"SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user; --'";
    assert!(
        analysis.cfg.derives(root, attack),
        "the generated grammar must derive the paper's attack query"
    );
    // And the honest query too.
    assert!(analysis
        .cfg
        .derives(root, b"SELECT * FROM `unp_user` WHERE userid='42'"));
    // But not arbitrary garbage (the grammar is not Σ*: the constant
    // skeleton is fixed).
    assert!(!analysis.cfg.derives(root, b"DELETE FROM unp_user"));
}

#[test]
fn figure4_grammar_shape() {
    // Figure 4: the query grammar has a direct-labeled nonterminal for
    // the GET parameter whose language reflects the eregi filter.
    let analysis =
        strtaint_analysis::analyze(&vfs_with(FIGURE2), "useredit.php", &Config::default())
            .unwrap();
    let root = analysis.hotspots[0].root;
    let labeled = strtaint_checker::abstraction::maximal_labeled(&analysis.cfg, root);
    assert_eq!(labeled.len(), 1);
    let x = labeled[0];
    assert!(analysis.cfg.taint(x).is_direct());
    assert_eq!(analysis.cfg.name(x), "_GET[userid]");
    // The filter admits any string containing a digit:
    assert!(analysis.cfg.derives(x, b"123"));
    assert!(analysis.cfg.derives(x, b"1'; DROP TABLE unp_user; --"));
    // ... but not digit-free strings (eregi must match):
    assert!(!analysis.cfg.derives(x, b"abc"));
    // ... and not the empty string (line 09's check):
    assert!(!analysis.cfg.derives(x, b""));
}

#[test]
fn anchored_fix_verifies() {
    let fixed = FIGURE2.replace("eregi('[0-9]+', $userid)", "preg_match('/^[\\d]+$/', $userid)");
    let report = analyze_page(&vfs_with(&fixed), "useredit.php", &Config::default()).unwrap();
    assert!(report.is_verified(), "{report}");
}

#[test]
fn fully_anchored_ereg_also_verifies() {
    let fixed = FIGURE2.replace("eregi('[0-9]+', $userid)", "eregi('^[0-9]+$', $userid)");
    let report = analyze_page(&vfs_with(&fixed), "useredit.php", &Config::default()).unwrap();
    assert!(report.is_verified(), "{report}");
}

#[test]
fn start_anchor_alone_is_insufficient() {
    let still_broken = FIGURE2.replace("eregi('[0-9]+', $userid)", "eregi('^[0-9]+', $userid)");
    let report =
        analyze_page(&vfs_with(&still_broken), "useredit.php", &Config::default()).unwrap();
    assert!(!report.is_verified(), "prefix-anchored filter still admits attacks");
}

#[test]
fn finding_carries_example_attack_query() {
    let report = analyze_page(&vfs_with(FIGURE2), "useredit.php", &Config::default()).unwrap();
    let (_, f) = report.findings().next().unwrap();
    let q = f.example_query.as_ref().expect("example query constructed");
    let q = String::from_utf8_lossy(q);
    assert!(
        q.starts_with("SELECT * FROM `unp_user` WHERE userid='"),
        "{q}"
    );
    // The witness sits inside the query skeleton.
    let w = String::from_utf8_lossy(f.witness.as_ref().unwrap()).into_owned();
    assert!(q.contains(&w), "{q} must contain {w}");
}
