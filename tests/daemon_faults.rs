//! Fault-injection suite for `strtaint serve` (ISSUE 6 acceptance):
//! each injected fault — a worker killed mid-request, a corrupted
//! artifact-cache entry, a client dropping its connection mid-request,
//! a shutdown racing queued work — must degrade to a structured error
//! or a clean recompute. Never a silent "verified", a poisoned lock,
//! or a wedged daemon.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use strtaint_corpus::synth::{synth_app, SynthConfig};
use strtaint_corpus::App;
use strtaint_daemon::json::{self, Json};
use strtaint_daemon::protocol::handle_line;
use strtaint_daemon::server::serve_socket;
use strtaint_daemon::{
    ArtifactStore, DaemonState, ServerConfig, ServerState, StallGate, WorkspaceMap,
};

fn small_app() -> App {
    synth_app(&SynthConfig {
        pages: 3,
        helpers: 2,
        filler_lines: 2,
        vuln_every: 2,
        replace_chain: 0,
        sinks_per_page: 1,
        seed: 42,
    })
}

fn server_over(app: &App, config: ServerConfig) -> ServerState {
    ServerState::new(
        WorkspaceMap::new(
            "ws0",
            Arc::new(DaemonState::new(
                app.vfs.clone(),
                strtaint::Config::default(),
                None,
            )),
        ),
        config,
    )
}

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "strtaint-faults-{}-{tag}.sock",
        std::process::id()
    ))
}

fn connect(socket: &PathBuf) -> UnixStream {
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(socket) {
            return s;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("socket never came up");
}

fn send(stream: &mut UnixStream, reader: &mut BufReader<UnixStream>, line: &str) -> Json {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    json::parse(response.trim()).expect("response parses")
}

#[test]
fn worker_killed_mid_request_yields_structured_error_and_daemon_survives() {
    let app = small_app();
    let server = server_over(&app, ServerConfig::default());
    let socket = temp_socket("panic");
    let _ = std::fs::remove_file(&socket);

    std::thread::scope(|scope| {
        let server_ref = &server;
        let sock = socket.clone();
        let listener = scope.spawn(move || serve_socket(server_ref, &sock));

        let mut conn = connect(&socket);
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));

        // The next pooled job panics its worker mid-request.
        server.pool().fault().arm_panic_after(1);
        let r = send(
            &mut conn,
            &mut reader,
            "{\"cmd\":\"analyze\",\"entries\":[\"page0.php\"]}",
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        let err = r.get("error").and_then(Json::as_str).expect("error member");
        assert!(err.contains("panic"), "error names the panic: {err}");

        // Same connection, same daemon: the retry computes a real
        // verdict (no poisoned lock, no dead worker).
        let retry = send(
            &mut conn,
            &mut reader,
            "{\"cmd\":\"analyze\",\"entries\":[\"page0.php\"]}",
        );
        assert_eq!(retry.get("ok").and_then(Json::as_bool), Some(true));
        let pages = retry.get("pages").and_then(Json::as_arr).expect("pages");
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].get("skipped"), Some(&Json::Null));

        // The panic is visible in metrics, not swallowed.
        let m = send(&mut conn, &mut reader, "{\"cmd\":\"metrics\"}");
        let panics = m
            .get("metrics")
            .and_then(|ms| ms.get("daemon.worker_panics"))
            .and_then(Json::as_num)
            .expect("worker_panics counter");
        assert!(panics >= 1.0);

        send(&mut conn, &mut reader, "{\"cmd\":\"shutdown\"}");
        drop((reader, conn));
        listener.join().expect("listener").expect("clean exit");
    });
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn corrupt_cache_entry_degrades_to_clean_recompute_with_identical_verdict() {
    let app = small_app();
    let cache = std::env::temp_dir().join(format!(
        "strtaint-faults-{}-cache",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache);

    let entries: Vec<String> = app.entries.iter().map(|e| format!("\"{e}\"")).collect();
    let analyze = format!("{{\"cmd\":\"analyze\",\"entries\":[{}]}}", entries.join(","));

    // First lifetime: compute and persist everything.
    let first = DaemonState::new(
        app.vfs.clone(),
        strtaint::Config::default(),
        Some(ArtifactStore::open(&cache).expect("open")),
    );
    let r1 = handle_line(&first, &analyze).response;
    assert_eq!(r1.get("ok").and_then(Json::as_bool), Some(true));
    drop(first);

    // Second lifetime: every store read is injected-torn. Replay must
    // degrade to recompute — same verdicts, never a silent trust.
    let store = ArtifactStore::open(&cache).expect("reopen");
    store.fault.arm_corrupt_reads(u64::MAX);
    let second = DaemonState::new(app.vfs.clone(), strtaint::Config::default(), Some(store));
    let r2 = handle_line(&second, &analyze).response;
    assert_eq!(r2.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        r2.get("computed").and_then(Json::as_num),
        Some(app.entries.len() as f64),
        "torn reads force clean recomputes"
    );
    assert_eq!(
        r2.get("replayed").and_then(Json::as_num),
        Some(0.0),
        "nothing is replayed from a corrupt store"
    );

    // Verdict equality: strip timing/engine members (wall clock and
    // shared-cache order differ across processes), compare the rest.
    fn canonical(v: &Json) -> Json {
        match v {
            Json::Obj(members) => Json::Obj(
                members
                    .iter()
                    .filter(|(k, _)| {
                        k != "analysis_ms" && k != "check_ms" && k != "engine"
                    })
                    .map(|(k, v)| (k.clone(), canonical(v)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(canonical).collect()),
            other => other.clone(),
        }
    }
    let mut a = String::new();
    canonical(r1.get("pages").expect("pages")).write(&mut a);
    let mut b = String::new();
    canonical(r2.get("pages").expect("pages")).write(&mut b);
    assert_eq!(a, b, "recomputed verdicts identical to the originals");

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn client_dropping_connection_mid_request_leaves_daemon_healthy() {
    let app = small_app();
    let server = server_over(&app, ServerConfig::default());
    let socket = temp_socket("dropconn");
    let _ = std::fs::remove_file(&socket);

    std::thread::scope(|scope| {
        let server_ref = &server;
        let sock = socket.clone();
        let listener = scope.spawn(move || serve_socket(server_ref, &sock));

        // Hold the worker so the victim's request is in flight when the
        // connection dies, forcing the response write to hit a dead
        // socket.
        let gate = StallGate::new();
        server.pool().fault().arm_stall_next(Arc::clone(&gate));
        {
            let mut victim = connect(&socket);
            victim
                .write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"page0.php\"]}\n")
                .expect("write");
            std::thread::sleep(Duration::from_millis(100));
            // Dropped here, mid-request, without reading the response.
        }
        gate.release();

        // The daemon is unaffected: a fresh client gets real answers.
        let mut conn = connect(&socket);
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let r = send(
            &mut conn,
            &mut reader,
            "{\"cmd\":\"analyze\",\"entries\":[\"page0.php\",\"page1.php\",\"page2.php\"]}",
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            r.get("pages").and_then(Json::as_arr).map(|p| p.len()),
            Some(3)
        );

        send(&mut conn, &mut reader, "{\"cmd\":\"shutdown\"}");
        drop((reader, conn));
        listener.join().expect("listener").expect("clean exit");
    });
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn shutdown_drain_is_bounded_and_flushes_queued_work_with_structured_errors() {
    let app = small_app();
    let server = server_over(
        &app,
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            drain: Duration::from_millis(300),
        },
    );
    let socket = temp_socket("drain");
    let _ = std::fs::remove_file(&socket);
    let gate = StallGate::new();
    server.pool().fault().arm_stall_next(Arc::clone(&gate));

    std::thread::scope(|scope| {
        let server_ref = &server;
        let sock = socket.clone();
        let listener = scope.spawn(move || serve_socket(server_ref, &sock));

        // conn1 occupies the stalled worker; conn2's request sits in
        // the queue behind it.
        let conn1 = connect(&socket);
        (&conn1)
            .write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"page0.php\"]}\n")
            .expect("write");
        std::thread::sleep(Duration::from_millis(100));
        let mut conn2 = connect(&socket);
        conn2
            .write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"page1.php\"]}\n")
            .expect("write");
        let mut reader2 = BufReader::new(conn2.try_clone().expect("clone"));
        std::thread::sleep(Duration::from_millis(100));

        // Shutdown with the worker wedged: the drain deadline (300ms)
        // must bound the wait, and conn2's queued request must be
        // flushed with a structured shutting_down error.
        let mut conn3 = connect(&socket);
        let mut reader3 = BufReader::new(conn3.try_clone().expect("clone"));
        let t0 = Instant::now();
        let ack = send(&mut conn3, &mut reader3, "{\"cmd\":\"shutdown\"}");
        assert_eq!(ack.get("shutdown").and_then(Json::as_bool), Some(true));

        let mut flushed = String::new();
        reader2.read_line(&mut flushed).expect("flushed response");
        let flushed = json::parse(flushed.trim()).expect("parses");
        assert_eq!(flushed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            flushed.get("error").and_then(Json::as_str),
            Some("shutting_down"),
            "queued work flushed with a structured error, not dropped"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drain is bounded even with a wedged worker"
        );

        // Unwedge so the listener (which joins connection threads and
        // the stalled in-flight job) can exit, then confirm it does so
        // promptly.
        gate.release();
        drop((reader2, conn2, reader3, conn3, conn1));
        listener.join().expect("listener").expect("clean exit");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "listener exits after drain"
        );
    });
    let _ = std::fs::remove_file(&socket);
}
