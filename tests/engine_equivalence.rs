//! Engine equivalence on the corpus: the prepared intersection engine
//! (byte-class DFAs, early-exit fixpoint, shared preparations) and the
//! parallel hotspot driver must produce exactly the verdicts of the
//! naive reference engine on real application pages. Any divergence
//! here is a soundness or precision bug in the overhauled engine, so
//! the comparison is per-hotspot and per-finding, not aggregate.

use strtaint_analysis::{analyze, Config};
use strtaint_checker::{CheckOptions, Checker, HotspotReport};
use strtaint_corpus::{apps, synth::synth_app, synth::SynthConfig, App};
use strtaint_grammar::Budget;

/// A comparable verdict for one hotspot: safety, counts, and every
/// finding's identity *including witness bytes* — witnesses are
/// canonical ((length, lexicographic)-minimal) in both engines, so
/// tie-breaking among equally short strings is deterministic and the
/// bytes are part of the verdict.
#[derive(Debug, PartialEq, Eq)]
struct Verdict {
    safe: bool,
    checked: usize,
    verified: usize,
    findings: Vec<(String, String, Option<Vec<u8>>)>, // (kind, source name, witness)
}

fn verdict(r: &HotspotReport) -> Verdict {
    let mut findings: Vec<_> = r
        .findings
        .iter()
        .map(|f| (format!("{:?}", f.kind), f.name.clone(), f.witness.clone()))
        .collect();
    findings.sort();
    Verdict {
        safe: r.is_safe(),
        checked: r.checked,
        verified: r.verified,
        findings,
    }
}

/// Checks every page of `app` three ways — naive serial, prepared
/// serial, prepared parallel with a shared cache — and asserts the
/// verdicts are identical hotspot by hotspot.
fn assert_engines_agree(app: &App) {
    let config = Config::default();
    let naive = Checker::with_options(CheckOptions {
        naive_engine: true,
        ..CheckOptions::default()
    });
    let prepared = Checker::new();

    let mut hotspots_seen = 0usize;
    for entry in app.entry_refs() {
        let analysis = match analyze(&app.vfs, entry, &config) {
            Ok(a) => a,
            Err(_) => continue, // skipped pages have no hotspots to compare
        };
        let roots: Vec<_> = analysis.hotspots.iter().map(|h| h.root).collect();
        hotspots_seen += roots.len();

        let naive_reports: Vec<_> = roots
            .iter()
            .map(|&r| naive.check_hotspot_with(&analysis.cfg, r, &Budget::unlimited()))
            .collect();
        let serial_reports: Vec<_> = roots
            .iter()
            .map(|&r| prepared.check_hotspot_with(&analysis.cfg, r, &Budget::unlimited()))
            .collect();
        let parallel_reports =
            prepared.check_hotspots_with(&analysis.cfg, &roots, &Budget::unlimited(), 4);

        assert_eq!(parallel_reports.len(), roots.len());
        for (i, ((n, s), p)) in naive_reports
            .iter()
            .zip(&serial_reports)
            .zip(&parallel_reports)
            .enumerate()
        {
            let (vn, vs, vp) = (verdict(n), verdict(s), verdict(p));
            assert_eq!(
                vn, vs,
                "{}: {}: hotspot {i}: naive vs prepared-serial verdicts differ",
                app.name, entry
            );
            assert_eq!(
                vs, vp,
                "{}: {}: hotspot {i}: serial vs parallel verdicts differ",
                app.name, entry
            );
            // The prepared engines run the identical reconstruction,
            // so their witnesses must match byte for byte.
            for (fs, fp) in s.findings.iter().zip(&p.findings) {
                assert_eq!(
                    fs.witness, fp.witness,
                    "{}: {}: hotspot {i}: serial vs parallel witness bytes differ",
                    app.name, entry
                );
            }
        }
    }
    assert!(hotspots_seen > 0, "{}: corpus app had no hotspots", app.name);
}

#[test]
fn eve_verdicts_identical_across_engines() {
    assert_engines_agree(&apps::eve::build());
}

#[test]
fn utopia_verdicts_identical_across_engines() {
    assert_engines_agree(&apps::utopia::build());
}

#[test]
fn synth_verdicts_identical_across_engines() {
    let app = synth_app(&SynthConfig {
        pages: 6,
        replace_chain: 2,
        ..SynthConfig::default()
    });
    assert_engines_agree(&app);
}
