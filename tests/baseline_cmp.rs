//! Grammar analysis vs. binary taint baseline — the comparison behind
//! the paper's §1.1 critique of taint-only tools.

use strtaint::{analyze_page, Config, Vfs};
use strtaint_baseline::taint_analyze;

fn both(src: &str) -> (bool, bool) {
    let mut vfs = Vfs::new();
    vfs.add("p.php", src);
    let baseline_flags = !taint_analyze(&vfs, "p.php").findings.is_empty();
    let grammar_flags = !analyze_page(&vfs, "p.php", &Config::default())
        .unwrap()
        .is_verified();
    (baseline_flags, grammar_flags)
}

#[test]
fn baseline_misses_numeric_context_bug() {
    // The paper's escape_quotes example: sanitizer credited blindly.
    let (baseline, grammar) = both(
        r#"<?php
$id = addslashes($_GET['id']);
$r = $DB->query("SELECT * FROM t WHERE id=$id");
"#,
    );
    assert!(!baseline, "binary taint trusts addslashes");
    assert!(grammar, "grammar analysis sees the unquoted context");
}

#[test]
fn baseline_false_positive_on_checked_input() {
    let (baseline, grammar) = both(
        r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit; }
$r = $DB->query("SELECT * FROM t WHERE id='$id'");
"#,
    );
    assert!(baseline, "binary taint cannot credit a check");
    assert!(!grammar, "grammar analysis verifies the check");
}

#[test]
fn both_agree_on_plain_cases() {
    // Raw flow: both flag.
    let (b, g) = both(
        r#"<?php
$v = $_GET['v'];
$r = $DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(b && g);
    // Constant query: both verify.
    let (b, g) = both(r#"<?php $r = $DB->query("SELECT * FROM t WHERE v=1");"#);
    assert!(!b && !g);
    // Escaped + quoted: both verify.
    let (b, g) = both(
        r#"<?php
$v = addslashes($_GET['v']);
$r = $DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(!b && !g);
}

#[test]
fn corpus_disagreements_match_design() {
    // On the Warp corpus app (all sanitized), the grammar analysis
    // verifies everything while the baseline still flags the
    // whitelist-checked ORDER BY page.
    let app = strtaint_corpus::apps::warp::build();
    let mut baseline_flagged = 0usize;
    for e in app.entries.iter() {
        baseline_flagged += taint_analyze(&app.vfs, e).findings.len();
    }
    assert!(
        baseline_flagged > 0,
        "baseline cannot verify Warp's in_array whitelist"
    );
    let report = strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
    assert!(report.distinct_findings().is_empty());
}

#[test]
fn corpus_misses_match_design() {
    // On the EVE app, the baseline misses the escaped-but-unquoted
    // killmail bug that the grammar analysis reports.
    let app = strtaint_corpus::apps::eve::build();
    let base = taint_analyze(&app.vfs, "killmail.php");
    assert!(base.findings.is_empty(), "baseline misses killmail.php");
    let r = analyze_page(&app.vfs, "killmail.php", &Config::default()).unwrap();
    assert!(!r.is_verified());
}
