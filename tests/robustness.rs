//! Fault-tolerance and resource-governance tests: pathological pages
//! must return within their budgets, budget trips must surface as
//! degradations, and degradation may only lose *precision* — a hotspot
//! that is vulnerable under an unlimited budget must never be reported
//! verified under any budget (soundness of degradation).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use strtaint::{
    analyze_app_parallel_with, analyze_page, analyze_page_with, CheckKind, Checker, Config, Vfs,
};

/// A page chaining `n` `str_replace` calls over a tainted value into an
/// unquoted (vulnerable) numeric sink. Transducer images compose
/// multiplicatively, so deep chains are the classic blow-up (the
/// paper's Tiger PHP News System effect, §5.3).
fn deep_replace_page(n: usize) -> String {
    let mut src = String::from("<?php\n$x = $_GET['a'];\n");
    for i in 0..n {
        let a = (b'a' + (i % 26) as u8) as char;
        let b = (b'a' + ((i + 1) % 26) as u8) as char;
        writeln!(src, "$x = str_replace('{a}', '{b}{b}', $x);").expect("write to string");
    }
    src.push_str("$r = $DB->query(\"SELECT * FROM t WHERE id=$x\");\n");
    src
}

/// A page concatenating a tainted value into a query `n` times —
/// a 1000-way nested concatenation grows the grammar linearly but
/// stresses every worklist.
fn nested_concat_page(n: usize) -> String {
    let mut src = String::from("<?php\n$q = 'SELECT * FROM t WHERE a=';\n");
    for _ in 0..n {
        src.push_str("$q = $q . $_GET['a'];\n");
    }
    src.push_str("$r = $DB->query($q);\n");
    src
}

/// A page guarding a tainted value with an alternation-heavy —
/// and unanchored, hence useless — regex before a quoted sink.
/// Intersecting with the alternation automaton is the expensive step.
fn alternation_page(n: usize) -> String {
    let mut alts = Vec::new();
    for i in 0..n {
        let a = (b'a' + (i % 26) as u8) as char;
        let b = (b'a' + ((i / 26) % 26) as u8) as char;
        alts.push(format!("{a}{b}{a}"));
    }
    let mut src = String::from("<?php\n$x = $_GET['a'];\n");
    writeln!(src, "if (preg_match('/({})/', $x)) {{", alts.join("|")).expect("write to string");
    src.push_str("  $r = $DB->query(\"SELECT * FROM t WHERE name='$x'\");\n}\n");
    src
}

fn vfs_with(src: &str) -> Vfs {
    let mut vfs = Vfs::new();
    vfs.add("page.php", src);
    vfs
}

fn config_with(timeout: Option<Duration>, fuel: Option<u64>) -> Config {
    Config {
        timeout,
        fuel,
        ..Config::default()
    }
}

/// The core conservativity check: analyze a feasible-size variant of
/// the page under an unlimited budget to establish the true verdict,
/// then `src` (a same-shape page, possibly far larger) under each
/// constrained budget; when the unlimited run finds the construction
/// vulnerable, no constrained run may report it verified.
///
/// The unlimited baseline runs on the smaller variant because the
/// pathological sizes are intractable without budgets — which is the
/// point of this suite.
fn assert_budgets_conservative(
    baseline_src: &str,
    src: &str,
    budgets: &[(Option<Duration>, Option<u64>)],
) {
    let unlimited = analyze_page(&vfs_with(baseline_src), "page.php", &Config::default())
        .expect("baseline page parses");
    assert!(
        !unlimited.is_verified(),
        "baseline must be vulnerable under an unlimited budget"
    );
    let vfs = vfs_with(src);
    for &(timeout, fuel) in budgets {
        let r = analyze_page(&vfs, "page.php", &config_with(timeout, fuel))
            .expect("budgeted run still returns a report");
        assert!(
            !r.is_verified(),
            "vulnerable under unlimited budget but verified under \
             timeout={timeout:?} fuel={fuel:?} — degradation lost soundness"
        );
    }
}

#[test]
fn deep_str_replace_chain_stays_within_fuel() {
    // 24 chained transducer images blow up multiplicatively — an
    // unlimited run is intractable; the fuel budget must cut it short.
    let src = deep_replace_page(24);
    let vfs = vfs_with(&src);
    let t0 = Instant::now();
    let r = analyze_page(&vfs, "page.php", &config_with(None, Some(20_000)))
        .expect("fuel exhaustion must degrade, not error");
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "the fuel budget must bound the deep replace chain"
    );
    // The sink is genuinely vulnerable (unquoted numeric context), so
    // whether or not fuel ran out the page must not verify.
    assert!(!r.is_verified());
    // And if fuel did run out, that must be visible, with every
    // affected hotspot carrying a conservative finding.
    if r.is_degraded() {
        assert!(r.all_degradations().count() > 0);
        assert!(r.findings().count() > 0);
    }
    assert_budgets_conservative(
        &deep_replace_page(6),
        &src,
        &[
            (None, Some(1)),
            (None, Some(100)),
            (None, Some(10_000)),
            (Some(Duration::from_nanos(1)), None),
        ],
    );
}

#[test]
fn thousand_way_nested_concat_completes() {
    let src = nested_concat_page(1000);
    let vfs = vfs_with(&src);
    let t0 = Instant::now();
    let r = analyze_page(&vfs, "page.php", &config_with(None, Some(200_000)))
        .expect("deep concatenation must not error");
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "a 1000-way concat must finish promptly under a fuel budget"
    );
    // Tainted, unsanitized, string-context-free sink: vulnerable.
    assert!(!r.is_verified());
    assert_budgets_conservative(
        &nested_concat_page(20),
        &src,
        &[(None, Some(10)), (None, Some(100_000))],
    );
}

#[test]
fn alternation_heavy_regex_degrades_soundly() {
    let src = alternation_page(48);
    let vfs = vfs_with(&src);
    // Unlimited run: the unanchored alternation does not confine the
    // input, so the quoted sink is vulnerable.
    let unlimited =
        analyze_page(&vfs, "page.php", &Config::default()).expect("page parses");
    assert!(!unlimited.is_verified(), "unanchored guard must not verify");
    // A small fuel budget trips inside the grammar–automaton
    // intersection; the refinement is abandoned (kept unrefined /
    // widened), which must preserve the vulnerability verdict.
    for fuel in [1u64, 50, 1_000, 50_000] {
        let r = analyze_page(&vfs, "page.php", &config_with(None, Some(fuel)))
            .expect("budgeted run returns");
        assert!(!r.is_verified(), "fuel={fuel} must stay conservative");
    }
}

#[test]
fn expired_deadline_emits_degradations() {
    // A deadline that has already passed when analysis starts: the
    // amortized deadline check trips as soon as enough fuel ticks
    // accumulate, and every loss is recorded.
    let src = deep_replace_page(12);
    let vfs = vfs_with(&src);
    let t0 = Instant::now();
    let r = analyze_page(
        &vfs,
        "page.php",
        &config_with(Some(Duration::from_nanos(1)), None),
    )
    .expect("deadline expiry must degrade, not error");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "an expired deadline must cut the analysis short"
    );
    assert!(r.is_degraded(), "deadline trips must be reported");
    assert!(
        r.all_degradations()
            .any(|d| d.to_string().contains("deadline")),
        "degradations must name the exhausted resource"
    );
    assert!(!r.is_verified(), "degraded page must not claim verified");
    assert!(
        r.findings()
            .any(|(_, f)| f.kind == CheckKind::BudgetExhausted)
            || r.findings().count() > 0,
        "unproven hotspots must carry conservative findings"
    );
}

#[test]
fn panicking_page_is_isolated_in_parallel_run() {
    let mut vfs = Vfs::new();
    vfs.add("ok1.php", "<?php $r = $DB->query(\"SELECT 1\");");
    vfs.add("boom.php", "<?php $r = $DB->query(\"SELECT 2\");");
    vfs.add("ok2.php", "<?php $r = $DB->query(\"SELECT 3\");");
    let config = Config::default();
    let checker = Checker::new();
    let app = analyze_app_parallel_with(
        "faulty",
        &vfs,
        &["ok1.php", "boom.php", "ok2.php"],
        2,
        |vfs, entry| {
            if entry == "boom.php" {
                panic!("simulated analyzer fault");
            }
            analyze_page_with(vfs, entry, &config, &checker)
        },
    );
    assert_eq!(app.pages.len(), 3, "every page gets a report slot");
    assert!(app.pages[0].is_verified(), "healthy pages complete");
    assert!(app.pages[2].is_verified(), "healthy pages complete");
    let reason = app.pages[1].skipped.as_deref().expect("faulty page skipped");
    assert!(reason.contains("simulated analyzer fault"), "{reason}");
    assert!(!app.pages[1].is_verified(), "a skipped page never verifies");
    assert_eq!(app.skipped_pages(), 1);
    assert_eq!(
        app.files_analyzed(),
        2,
        "the skipped page contributes zero analyzed files"
    );
}

#[test]
fn per_page_deadline_skips_only_slow_pages() {
    // One cheap page and one page whose analysis is cut short by the
    // deadline: the cheap page must still verify while the slow page
    // degrades (per-page budgets, not per-app).
    let mut vfs = Vfs::new();
    vfs.add("fast.php", "<?php $r = $DB->query(\"SELECT 1\");");
    vfs.add("slow.php", deep_replace_page(12));
    let config = config_with(Some(Duration::from_nanos(1)), None);
    let checker = Checker::new();
    let app = analyze_app_parallel_with(
        "mixed",
        &vfs,
        &["fast.php", "slow.php"],
        2,
        |vfs, entry| analyze_page_with(vfs, entry, &config, &checker),
    );
    assert_eq!(app.pages.len(), 2);
    // The fast page charges so little fuel that the amortized deadline
    // check never fires — it completes and verifies.
    assert!(app.pages[0].is_verified(), "cheap page unaffected");
    assert!(!app.pages[1].is_verified(), "slow page stays conservative");
    assert!(app.pages[1].is_degraded() || app.pages[1].skipped.is_some());
}
