//! Reproduces the paper's Figure 9 (the type-conversion false
//! positive) and Figure 10 (the indirect `$USER` report).

use strtaint::{analyze_page, Config, Vfs};

const FIGURE9: &str = r#"<?php
isset($_GET['newsid']) ?
    $getnewsid = $_GET['newsid'] : $getnewsid = false;
if (($getnewsid != false) &&
    (!preg_match('/^[\d]+$/', $getnewsid)))
{
    unp_msg('You entered an invalid news ID.');
    exit;
}
$showall = isset($_GET['showall']) ? $_GET['showall'] : '';
if (!$showall && $getnewsid)
{
    $getnews = $DB->query("SELECT * FROM `unp_news`"
        . " WHERE `newsid`='$getnewsid'"
        . " ORDER BY `date` DESC LIMIT 1");
}
"#;

const FIGURE10: &str = r#"<?php
function unp_clean($in) { return addslashes($in); }
function unp_isEmpty($v) { if ($v == '') { return true; } return false; }
$posttime = time();
$subject = unp_clean($_POST['subject']);
$news = unp_clean($_POST['news']);
$newsposter = $USER['username'];
$newsposterid = $USER['userid'];
// Verification
if (unp_isEmpty($subject) || unp_isEmpty($news))
{
    unp_msg($gp_allfields);
    exit;
}
if (!preg_match('/^[\d]+$/', $newsposterid))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$submitnews = $DB->query("INSERT INTO `unp_news`"
    . "(`date`, `subject`, `news`, `posterid`,"
    . "`poster`)"
    . " VALUES "
    . "('$posttime','$subject','$news',"
    . "'$newsposterid','$newsposter')");
"#;

#[test]
fn figure9_false_positive_reproduced() {
    // The code is actually safe (the && short-circuit plus PHP's
    // string-to-bool semantics guarantee $getnewsid is numeric when the
    // query runs), but neither the paper's analyzer nor ours tracks the
    // conversion through the first conditional — a documented FP.
    let mut vfs = Vfs::new();
    vfs.add("newsview.php", FIGURE9);
    let report = analyze_page(&vfs, "newsview.php", &Config::default()).unwrap();
    assert!(
        !report.is_verified(),
        "expected the Figure 9 false positive to be reported"
    );
    let findings: Vec<_> = report.findings().collect();
    assert_eq!(findings.len(), 1);
    assert!(findings[0].1.taint.is_direct());
}

#[test]
fn figure9_with_separated_checks_verifies() {
    // Restructuring the check (no conjunction) lets the analyzer refine
    // each branch and verify the page — the "fix" the paper's
    // discussion implies.
    let separated = r#"<?php
$getnewsid = isset($_GET['newsid']) ? $_GET['newsid'] : '';
if ($getnewsid != '')
{
    if (!preg_match('/^[\d]+$/', $getnewsid))
    {
        exit;
    }
    $getnews = $DB->query("SELECT * FROM `unp_news` WHERE `newsid`='$getnewsid'");
}
"#;
    let mut vfs = Vfs::new();
    vfs.add("newsview.php", separated);
    let report = analyze_page(&vfs, "newsview.php", &Config::default()).unwrap();
    assert!(report.is_verified(), "{report}");
}

#[test]
fn figure10_indirect_report() {
    let mut vfs = Vfs::new();
    vfs.add("newspost.php", FIGURE10);
    let report = analyze_page(&vfs, "newspost.php", &Config::default()).unwrap();
    let findings: Vec<_> = report.findings().collect();
    assert_eq!(findings.len(), 1, "{report}");
    let (_, f) = findings[0];
    // $newsposter is the unchecked indirect source.
    assert!(f.taint.is_indirect());
    assert!(!f.taint.is_direct());
    assert_eq!(f.name, "USER[username]");
}

#[test]
fn figure10_checked_id_is_not_reported() {
    // $newsposterid is regex-checked to be numeric; despite being an
    // indirect source it must verify — the "inconsistent programming"
    // contrast the paper highlights.
    let mut vfs = Vfs::new();
    vfs.add("newspost.php", FIGURE10);
    let report = analyze_page(&vfs, "newspost.php", &Config::default()).unwrap();
    for (_, f) in report.findings() {
        assert_ne!(f.name, "USER[userid]", "checked id must not be flagged");
        assert_ne!(f.name, "_POST[subject]", "escaped+quoted must not be flagged");
    }
}
