//! Cross-validation of the two phases that share Definition 2.2: the
//! static checker's witnesses, executed as concrete queries, must be
//! flagged by the runtime syntactic-confinement monitor (the SqlCheck
//! approach of the paper's companion POPL 2006 work, §6.3).

use strtaint::{analyze_app, Config};
use strtaint_sql::runtime::{check_query, RuntimeVerdict};
use strtaint_sql::SqlGrammar;

#[test]
fn static_witnesses_are_runtime_attacks() {
    let g = SqlGrammar::standard();
    let mut validated = 0usize;
    for app in [
        strtaint_corpus::apps::eve::build(),
        strtaint_corpus::apps::utopia::build(),
        strtaint_corpus::apps::e107::build(),
    ] {
        let report = analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
        for (hotspot, finding) in report.distinct_findings() {
            let (Some(witness), Some(query)) = (&finding.witness, &finding.example_query)
            else {
                continue;
            };
            // Locate the witness inside the example query.
            let Some(pos) = query
                .windows(witness.len().max(1))
                .position(|w| w == witness.as_slice())
            else {
                continue;
            };
            let span = (pos, pos + witness.len());
            let verdict = check_query(&g, query, span);
            assert!(
                !matches!(verdict, RuntimeVerdict::Confined(_)),
                "{} @ {}: static witness {:?} in {:?} judged confined at runtime",
                hotspot.label,
                hotspot.file,
                String::from_utf8_lossy(witness),
                String::from_utf8_lossy(query),
            );
            validated += 1;
        }
    }
    assert!(
        validated >= 15,
        "expected to cross-validate many findings, got {validated}"
    );
}

#[test]
fn honest_inputs_pass_both_phases() {
    // A verified page's queries, executed with honest inputs, pass the
    // runtime monitor too.
    let g = SqlGrammar::standard();
    let honest = [
        (&b"SELECT * FROM `unp_user` WHERE userid='42'"[..], 39usize, 41usize),
        (b"SELECT * FROM t WHERE id=7", 25, 26),
        (b"SELECT * FROM t WHERE name='bob'", 28, 31),
    ];
    for (q, lo, hi) in honest {
        assert!(
            matches!(check_query(&g, q, (lo, hi)), RuntimeVerdict::Confined(_)),
            "{:?}",
            String::from_utf8_lossy(q)
        );
    }
}
