//! Table 1 ground truth: each corpus application must produce exactly
//! the findings profile of the corresponding paper subject, and the
//! totals must reproduce the paper's headline numbers (19 real + 5
//! false direct reports → 20.8% false-positive rate; 17 indirect).

use strtaint::{analyze_app, Config};
use strtaint_corpus::apps;

fn check(app: strtaint_corpus::App) -> (usize, usize) {
    let report = analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
    let direct = report.direct_findings().len();
    let indirect = report.indirect_findings().len();
    assert_eq!(
        direct,
        app.truth.direct_total(),
        "{}: direct findings (got {direct}, want {})\n{report}",
        app.name,
        app.truth.direct_total()
    );
    assert_eq!(
        indirect, app.truth.indirect,
        "{}: indirect findings",
        app.name
    );
    (direct, indirect)
}

#[test]
fn eve_matches_table1() {
    check(apps::eve::build());
}

#[test]
fn utopia_matches_table1() {
    check(apps::utopia::build());
}

#[test]
fn e107_matches_table1() {
    check(apps::e107::build());
}

#[test]
fn warp_matches_table1() {
    let app = apps::warp::build();
    let report = analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
    assert!(report.distinct_findings().is_empty(), "Warp verifies clean");
    // Every page fully verified.
    for p in &report.pages {
        assert!(p.is_verified(), "{p}");
    }
}

#[test]
#[ignore = "slow (~20s release, minutes in debug); run with --ignored"]
fn tiger_matches_table1() {
    check(apps::tiger::build());
}

#[test]
fn paper_totals_without_tiger() {
    // Totals minus the tiger row (covered by the ignored slow test):
    // direct 16+4+1 = 21 of 24, indirect 12+1+4 = 17 of 19.
    let mut direct = 0;
    let mut indirect = 0;
    for app in [apps::eve::build(), apps::utopia::build(), apps::e107::build(), apps::warp::build()] {
        let (d, i) = check(app);
        direct += d;
        indirect += i;
    }
    assert_eq!(direct, 21);
    assert_eq!(indirect, 17);
}

#[test]
fn false_positive_rate_matches_paper() {
    // 5 seeded false positives over 19+5 direct reports = 20.8%.
    let apps = apps::all();
    let real: usize = apps.iter().map(|a| a.truth.direct_real).sum();
    let false_pos: usize = apps.iter().map(|a| a.truth.direct_false).sum();
    let indirect: usize = apps.iter().map(|a| a.truth.indirect).sum();
    assert_eq!(real, 19, "Table 1 total real direct errors");
    assert_eq!(false_pos, 5, "Table 1 total false direct errors");
    // Table 1's per-row indirect counts sum to 19 although the paper's
    // totals row prints 17 — an internal inconsistency in the published
    // table; we follow the per-row values (see EXPERIMENTS.md).
    assert_eq!(indirect, 19, "Table 1 per-row indirect errors");
    let rate = false_pos as f64 / (real + false_pos) as f64;
    assert!((rate - 0.208).abs() < 0.001, "paper reports 20.8%, got {rate:.3}");
}
