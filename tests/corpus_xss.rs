//! XSS analysis over the corpus: the synthetic subjects were designed
//! for the SQLCIV evaluation, but their echo sinks exercise the XSS
//! checker on realistic pages.

use strtaint::{analyze_page_xss, Config, Vfs};

#[test]
fn utopia_escaped_messages_are_xss_safe() {
    // unp_msg() routes everything through htmlspecialchars.
    let app = strtaint_corpus::apps::utopia::build();
    let r = analyze_page_xss(&app.vfs, "search.php", &Config::default()).unwrap();
    for (h, f) in r.findings() {
        // The only tolerated finding source would be raw fetch echoes;
        // search.php has none.
        panic!("unexpected XSS finding on search.php: {} {}", h.label, f);
    }
}

#[test]
fn utopia_raw_row_echo_is_stored_xss() {
    // news.php echoes a fetched subject without escaping — a stored
    // XSS with the indirect label, exactly the paper's §7 scenario.
    let app = strtaint_corpus::apps::utopia::build();
    let r = analyze_page_xss(&app.vfs, "news.php", &Config::default()).unwrap();
    let findings: Vec<_> = r.findings().collect();
    assert!(
        findings.iter().any(|(_, f)| f.taint.is_indirect()),
        "expected a stored-XSS report: {r}"
    );
}

#[test]
fn xss_checker_runs_on_every_corpus_page() {
    // Robustness: no panics, deterministic outcome on repeat.
    for app in [
        strtaint_corpus::apps::eve::build(),
        strtaint_corpus::apps::warp::build(),
    ] {
        for e in &app.entries {
            let a = analyze_page_xss(&app.vfs, e, &Config::default()).unwrap();
            let b = analyze_page_xss(&app.vfs, e, &Config::default()).unwrap();
            assert_eq!(
                a.findings().count(),
                b.findings().count(),
                "{}: nondeterministic XSS result",
                e
            );
        }
    }
}

#[test]
fn mixed_page_sql_safe_xss_unsafe() {
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php
$q = intval($_GET['q']);
$r = $DB->query("SELECT * FROM t WHERE id=$q");
echo "<h1>Search: " . $_GET['q'] . "</h1>";
"#,
    );
    let sql = strtaint::analyze_page(&vfs, "p.php", &Config::default()).unwrap();
    let xss = analyze_page_xss(&vfs, "p.php", &Config::default()).unwrap();
    assert!(sql.is_verified());
    assert!(!xss.is_verified());
}
