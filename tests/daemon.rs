//! Durability round-trip for `strtaint serve` (DESIGN.md §5d): a cold
//! daemon restart over an unchanged tree must replay the stored
//! verdicts — byte-identical page JSON, zero new Bar-Hillel queries —
//! and a corrupted artifact store must degrade to a clean re-run (same
//! verdicts, only timing lost), never change an answer.

use std::path::PathBuf;

use strtaint_corpus::synth::{synth_app, SynthConfig};
use strtaint_daemon::json::Json;
use strtaint_daemon::protocol::handle_line;
use strtaint_daemon::{ArtifactStore, DaemonState};
use strtaint_corpus::App;

fn small_app() -> App {
    // Small enough for debug-profile tier-1, mixed safe/vulnerable.
    synth_app(&SynthConfig {
        pages: 4,
        helpers: 3,
        filler_lines: 4,
        vuln_every: 2,
        replace_chain: 0,
        sinks_per_page: 1,
        seed: 11,
    })
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "strtaint-daemon-it-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(app: &App, cache: &PathBuf) -> DaemonState {
    let store = ArtifactStore::open(cache).expect("cache dir opens");
    // Rebuild the tree from scratch each boot, as a restarted daemon
    // would from disk.
    DaemonState::new(app.vfs.clone(), strtaint::Config::default(), Some(store))
}

fn request(state: &DaemonState, line: &str) -> Json {
    let handled = handle_line(state, line);
    assert_eq!(
        handled.response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        handled.response.to_string()
    );
    handled.response
}

fn analyze_all(state: &DaemonState, app: &App) -> Json {
    let entries: Vec<String> = app
        .entries
        .iter()
        .map(|e| format!("\"{e}\""))
        .collect();
    request(
        state,
        &format!("{{\"cmd\":\"analyze\",\"entries\":[{}]}}", entries.join(",")),
    )
}

/// The `pages` array serialized exactly as the wire writes it.
fn pages_bytes(response: &Json) -> String {
    let mut out = String::new();
    response.get("pages").expect("pages member").write(&mut out);
    out
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

fn engine_queries(status: &Json) -> f64 {
    status
        .get("engine")
        .and_then(|e| e.get("queries"))
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN)
}

#[test]
fn cold_restart_replays_byte_identical_with_zero_new_queries() {
    let app = small_app();
    let cache = temp_cache("restart");
    let n = app.entries.len() as f64;

    // First daemon lifetime: everything computes.
    let first = boot(&app, &cache);
    let r1 = analyze_all(&first, &app);
    assert_eq!(num(&r1, "computed"), n);
    assert_eq!(num(&r1, "replayed"), 0.0);
    let s1 = request(&first, "{\"cmd\":\"status\"}");
    assert!(engine_queries(&s1) > 0.0, "cold run performs engine work");
    let bytes1 = pages_bytes(&r1);
    drop(first); // "kill" the daemon

    // Second lifetime over the same cache and an unchanged tree.
    let second = boot(&app, &cache);
    let r2 = analyze_all(&second, &app);
    assert_eq!(num(&r2, "replayed"), n, "warm start replays every page");
    assert_eq!(num(&r2, "computed"), 0.0);
    assert_eq!(pages_bytes(&r2), bytes1, "replayed report is byte-identical");

    let s2 = request(&second, "{\"cmd\":\"status\"}");
    assert_eq!(
        engine_queries(&s2),
        0.0,
        "zero new Bar-Hillel queries on a warm restart"
    );
    let loaded = s2
        .get("store")
        .and_then(|s| s.get("loaded"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert_eq!(loaded, n, "every page came from the artifact store");

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn corrupt_cache_degrades_to_clean_rerun() {
    let app = small_app();
    let cache = temp_cache("corrupt");

    let first = boot(&app, &cache);
    let r1 = analyze_all(&first, &app);
    drop(first);

    // Truncate/garble every stored verdict.
    let verdicts = cache.join("verdicts");
    let mut mangled = 0;
    for entry in std::fs::read_dir(&verdicts).expect("verdict dir") {
        let path = entry.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("readable artifact");
        let mut garbage = bytes[..bytes.len() / 2].to_vec();
        garbage.extend_from_slice(b"\x00\xffnot json");
        std::fs::write(&path, garbage).expect("write garbage");
        mangled += 1;
    }
    assert_eq!(mangled, app.entries.len(), "one artifact per page");

    let second = boot(&app, &cache);
    let r2 = analyze_all(&second, &app);
    assert_eq!(
        num(&r2, "computed"),
        app.entries.len() as f64,
        "corrupt artifacts are dropped, not trusted: everything recomputes"
    );
    let s2 = request(&second, "{\"cmd\":\"status\"}");
    let dropped = s2
        .get("store")
        .and_then(|s| s.get("dropped"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(dropped >= mangled as f64, "mangled artifacts counted as dropped");

    // Verdicts must agree with the original run on everything except
    // timing (a re-run can't reproduce wall-clock measurements).
    let p1 = r1.get("pages").and_then(Json::as_arr).expect("pages 1");
    let p2 = r2.get("pages").and_then(Json::as_arr).expect("pages 2");
    assert_eq!(p1.len(), p2.len());
    for (a, b) in p1.iter().zip(p2) {
        assert_eq!(
            a.get("entry").and_then(Json::as_str),
            b.get("entry").and_then(Json::as_str)
        );
        assert_eq!(
            a.get("verified").and_then(Json::as_bool),
            b.get("verified").and_then(Json::as_bool),
            "verdict unchanged for {:?}",
            a.get("entry")
        );
        let findings = |p: &Json| {
            p.get("hotspots")
                .and_then(Json::as_arr)
                .map(|hs| {
                    hs.iter()
                        .map(|h| {
                            h.get("findings")
                                .and_then(Json::as_arr)
                                .map(|fs| fs.len())
                                .unwrap_or(0)
                        })
                        .sum::<usize>()
                })
                .unwrap_or(0)
        };
        assert_eq!(findings(a), findings(b), "findings unchanged");
    }

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn editing_one_page_rechecks_only_that_page() {
    let app = small_app();
    let cache = temp_cache("delta");
    let state = boot(&app, &cache);
    analyze_all(&state, &app);

    // Rewrite one page in place (same path set, new contents).
    let target = &app.entries[0];
    let edited = "<?php $id = $_GET['id']; \
                  $r = $DB->query(\"SELECT x FROM y WHERE id='\" . $id . \"'\");";
    let r = request(
        &state,
        &format!(
            "{{\"cmd\":\"invalidate\",\"path\":\"{target}\",\"contents\":{}}}",
            Json::Str(edited.to_owned()).to_string()
        ),
    );
    assert_eq!(r.get("changed").and_then(Json::as_bool), Some(true));

    let r2 = analyze_all(&state, &app);
    assert_eq!(num(&r2, "computed"), 1.0, "only the edited page recomputes");
    assert_eq!(num(&r2, "replayed"), (app.entries.len() - 1) as f64);

    let _ = std::fs::remove_dir_all(&cache);
}
