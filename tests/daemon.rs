//! Durability round-trip for `strtaint serve` (DESIGN.md §5d): a cold
//! daemon restart over an unchanged tree must replay the stored
//! verdicts — byte-identical page JSON, zero new Bar-Hillel queries —
//! and a corrupted artifact store must degrade to a clean re-run (same
//! verdicts, only timing lost), never change an answer.

use std::path::PathBuf;

use strtaint_corpus::synth::{synth_app, SynthConfig};
use strtaint_daemon::json::Json;
use strtaint_daemon::protocol::handle_line;
use strtaint_daemon::{ArtifactStore, DaemonState};
use strtaint_corpus::App;

fn small_app() -> App {
    // Small enough for debug-profile tier-1, mixed safe/vulnerable.
    synth_app(&SynthConfig {
        pages: 4,
        helpers: 3,
        filler_lines: 4,
        vuln_every: 2,
        replace_chain: 0,
        sinks_per_page: 1,
        seed: 11,
    })
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "strtaint-daemon-it-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(app: &App, cache: &PathBuf) -> DaemonState {
    let store = ArtifactStore::open(cache).expect("cache dir opens");
    // Rebuild the tree from scratch each boot, as a restarted daemon
    // would from disk.
    DaemonState::new(app.vfs.clone(), strtaint::Config::default(), Some(store))
}

fn request(state: &DaemonState, line: &str) -> Json {
    let handled = handle_line(state, line);
    assert_eq!(
        handled.response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        handled.response.to_string()
    );
    handled.response
}

fn analyze_all(state: &DaemonState, app: &App) -> Json {
    let entries: Vec<String> = app
        .entries
        .iter()
        .map(|e| format!("\"{e}\""))
        .collect();
    request(
        state,
        &format!("{{\"cmd\":\"analyze\",\"entries\":[{}]}}", entries.join(",")),
    )
}

/// The `pages` array serialized exactly as the wire writes it.
fn pages_bytes(response: &Json) -> String {
    let mut out = String::new();
    response.get("pages").expect("pages member").write(&mut out);
    out
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

fn engine_queries(status: &Json) -> f64 {
    status
        .get("engine")
        .and_then(|e| e.get("queries"))
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN)
}

#[test]
fn cold_restart_replays_byte_identical_with_zero_new_queries() {
    let app = small_app();
    let cache = temp_cache("restart");
    let n = app.entries.len() as f64;

    // First daemon lifetime: everything computes.
    let first = boot(&app, &cache);
    let r1 = analyze_all(&first, &app);
    assert_eq!(num(&r1, "computed"), n);
    assert_eq!(num(&r1, "replayed"), 0.0);
    let s1 = request(&first, "{\"cmd\":\"status\"}");
    assert!(engine_queries(&s1) > 0.0, "cold run performs engine work");
    let bytes1 = pages_bytes(&r1);
    drop(first); // "kill" the daemon

    // Second lifetime over the same cache and an unchanged tree.
    let second = boot(&app, &cache);
    let r2 = analyze_all(&second, &app);
    assert_eq!(num(&r2, "replayed"), n, "warm start replays every page");
    assert_eq!(num(&r2, "computed"), 0.0);
    assert_eq!(pages_bytes(&r2), bytes1, "replayed report is byte-identical");

    let s2 = request(&second, "{\"cmd\":\"status\"}");
    assert_eq!(
        engine_queries(&s2),
        0.0,
        "zero new Bar-Hillel queries on a warm restart"
    );
    let loaded = s2
        .get("store")
        .and_then(|s| s.get("loaded"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert_eq!(loaded, n, "every page came from the artifact store");

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn corrupt_cache_degrades_to_clean_rerun() {
    let app = small_app();
    let cache = temp_cache("corrupt");

    let first = boot(&app, &cache);
    let r1 = analyze_all(&first, &app);
    drop(first);

    // Truncate/garble every stored verdict.
    let verdicts = cache.join("verdicts");
    let mut mangled = 0;
    for entry in std::fs::read_dir(&verdicts).expect("verdict dir") {
        let path = entry.expect("dir entry").path();
        let bytes = std::fs::read(&path).expect("readable artifact");
        let mut garbage = bytes[..bytes.len() / 2].to_vec();
        garbage.extend_from_slice(b"\x00\xffnot json");
        std::fs::write(&path, garbage).expect("write garbage");
        mangled += 1;
    }
    assert_eq!(mangled, app.entries.len(), "one artifact per page");

    let second = boot(&app, &cache);
    let r2 = analyze_all(&second, &app);
    assert_eq!(
        num(&r2, "computed"),
        app.entries.len() as f64,
        "corrupt artifacts are dropped, not trusted: everything recomputes"
    );
    let s2 = request(&second, "{\"cmd\":\"status\"}");
    let dropped = s2
        .get("store")
        .and_then(|s| s.get("dropped"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(dropped >= mangled as f64, "mangled artifacts counted as dropped");

    // Verdicts must agree with the original run on everything except
    // timing (a re-run can't reproduce wall-clock measurements).
    let p1 = r1.get("pages").and_then(Json::as_arr).expect("pages 1");
    let p2 = r2.get("pages").and_then(Json::as_arr).expect("pages 2");
    assert_eq!(p1.len(), p2.len());
    for (a, b) in p1.iter().zip(p2) {
        assert_eq!(
            a.get("entry").and_then(Json::as_str),
            b.get("entry").and_then(Json::as_str)
        );
        assert_eq!(
            a.get("verified").and_then(Json::as_bool),
            b.get("verified").and_then(Json::as_bool),
            "verdict unchanged for {:?}",
            a.get("entry")
        );
        let findings = |p: &Json| {
            p.get("hotspots")
                .and_then(Json::as_arr)
                .map(|hs| {
                    hs.iter()
                        .map(|h| {
                            h.get("findings")
                                .and_then(Json::as_arr)
                                .map(|fs| fs.len())
                                .unwrap_or(0)
                        })
                        .sum::<usize>()
                })
                .unwrap_or(0)
        };
        assert_eq!(findings(a), findings(b), "findings unchanged");
    }

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn editing_one_page_rechecks_only_that_page() {
    let app = small_app();
    let cache = temp_cache("delta");
    let state = boot(&app, &cache);
    analyze_all(&state, &app);

    // Rewrite one page in place (same path set, new contents).
    let target = &app.entries[0];
    let edited = "<?php $id = $_GET['id']; \
                  $r = $DB->query(\"SELECT x FROM y WHERE id='\" . $id . \"'\");";
    let r = request(
        &state,
        &format!(
            "{{\"cmd\":\"invalidate\",\"path\":\"{target}\",\"contents\":{}}}",
            Json::Str(edited.to_owned()).to_string()
        ),
    );
    assert_eq!(r.get("changed").and_then(Json::as_bool), Some(true));

    let r2 = analyze_all(&state, &app);
    assert_eq!(num(&r2, "computed"), 1.0, "only the edited page recomputes");
    assert_eq!(num(&r2, "replayed"), (app.entries.len() - 1) as f64);

    let _ = std::fs::remove_dir_all(&cache);
}

// ---------------------------------------------------------------------
// The `metrics` verb (observability layer)
// ---------------------------------------------------------------------

/// The `metrics` member of a metrics response.
fn metrics_of(response: &Json) -> &Json {
    response.get("metrics").expect("metrics member")
}

/// A plain-number metric (counter or gauge) by registry name.
fn metric(response: &Json, name: &str) -> f64 {
    metrics_of(response)
        .get(name)
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN)
}

/// A histogram metric's observation count by registry name.
fn histogram_count(response: &Json, name: &str) -> f64 {
    metrics_of(response)
        .get(name)
        .and_then(|h| h.get("count"))
        .and_then(Json::as_num)
        .unwrap_or(f64::NAN)
}

#[test]
fn metrics_verb_roundtrips_over_stdio() {
    let app = small_app();
    let state = DaemonState::new(app.vfs.clone(), strtaint::Config::default(), None);
    let entries: Vec<String> = app.entries.iter().map(|e| format!("\"{e}\"")).collect();
    let input = format!(
        "{{\"cmd\":\"analyze\",\"entries\":[{}]}}\n{{\"cmd\":\"metrics\"}}\n{{\"cmd\":\"shutdown\"}}\n",
        entries.join(",")
    );
    let mut output = Vec::new();
    let shut = strtaint_daemon::serve_lines(&state, input.as_bytes(), &mut output)
        .expect("serves");
    assert!(shut);
    let lines: Vec<&str> = std::str::from_utf8(&output).expect("utf8").lines().collect();
    assert_eq!(lines.len(), 3);
    let m = strtaint_daemon::json::parse(lines[1]).expect("metrics line parses");
    assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true));
    // Every EngineStats counter is present, alongside the daemon's own.
    for name in [
        "engine.queries",
        "engine.normalizations",
        "engine.normalizations_saved",
        "engine.realized_triples",
        "engine.early_exits",
        "summary_cache.hits",
        "summary_cache.misses",
    ] {
        assert!(metric(&m, name).is_finite(), "missing metric {name}");
    }
    assert!(metric(&m, "engine.queries") > 0.0, "analyze ran engine work");
    assert_eq!(metric(&m, "daemon.pages_computed"), app.entries.len() as f64);
    assert_eq!(metric(&m, "daemon.requests"), 2.0, "analyze + this metrics call");
    assert_eq!(
        histogram_count(&m, "daemon.compute_us"),
        app.entries.len() as f64,
        "one compute-latency observation per computed page"
    );
}

#[cfg(unix)]
#[test]
fn metrics_verb_roundtrips_over_unix_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let app = small_app();
    let socket = std::env::temp_dir().join(format!(
        "strtaint-daemon-it-{}-metrics.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&socket);
    let state = DaemonState::new(app.vfs.clone(), strtaint::Config::default(), None);
    let server_state = strtaint_daemon::ServerState::single("ws0", state);

    std::thread::scope(|scope| {
        let server =
            scope.spawn(|| strtaint_daemon::server::serve_socket(&server_state, &socket));

        // The listener needs a moment to bind; retry the connect.
        let mut stream = None;
        for _ in 0..100 {
            match UnixStream::connect(&socket) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let stream = stream.expect("socket accepts connections");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut send = |line: &str| {
            (&stream).write_all(line.as_bytes()).expect("write");
            (&stream).write_all(b"\n").expect("write newline");
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            strtaint_daemon::json::parse(&response).expect("response parses")
        };

        let entry = &app.entries[0];
        let r = send(&format!("{{\"cmd\":\"analyze\",\"entries\":[\"{entry}\"]}}"));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let m = send("{\"cmd\":\"metrics\"}");
        assert_eq!(m.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(metric(&m, "daemon.pages_computed"), 1.0);
        assert!(metric(&m, "engine.queries").is_finite());
        let s = send("{\"cmd\":\"shutdown\"}");
        assert_eq!(s.get("shutdown").and_then(Json::as_bool), Some(true));
        server.join().expect("server thread").expect("serve ok");
    });
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn metrics_counters_increase_monotonically_across_analyzes() {
    let app = small_app();
    let state = DaemonState::new(app.vfs.clone(), strtaint::Config::default(), None);

    analyze_all(&state, &app);
    let m1 = request(&state, "{\"cmd\":\"metrics\"}");
    analyze_all(&state, &app); // warm: replays, no engine work
    let m2 = request(&state, "{\"cmd\":\"metrics\"}");

    // Monotone counters move forward, never back.
    assert!(metric(&m2, "daemon.requests") > metric(&m1, "daemon.requests"));
    assert_eq!(
        metric(&m2, "daemon.pages_replayed"),
        metric(&m1, "daemon.pages_replayed") + app.entries.len() as f64,
        "second analyze replays every page"
    );
    assert_eq!(
        metric(&m2, "daemon.pages_computed"),
        metric(&m1, "daemon.pages_computed"),
        "replay computes nothing"
    );
    assert_eq!(
        metric(&m2, "engine.queries"),
        metric(&m1, "engine.queries"),
        "replay adds zero engine queries"
    );
    assert_eq!(
        histogram_count(&m2, "daemon.replay_us"),
        histogram_count(&m1, "daemon.replay_us") + app.entries.len() as f64,
        "one replay-latency observation per replayed page"
    );
}

#[test]
fn metrics_reset_across_restart_even_when_verdicts_replay() {
    let app = small_app();
    let cache = temp_cache("metrics-restart");
    let n = app.entries.len() as f64;

    let first = boot(&app, &cache);
    analyze_all(&first, &app);
    let m1 = request(&first, "{\"cmd\":\"metrics\"}");
    assert_eq!(metric(&m1, "daemon.pages_computed"), n);
    assert!(metric(&m1, "engine.queries") > 0.0);
    drop(first); // "kill" the daemon

    // Restart over the same store: verdicts replay, metrics start over.
    let second = boot(&app, &cache);
    let m2 = request(&second, "{\"cmd\":\"metrics\"}");
    assert_eq!(metric(&m2, "daemon.pages_computed"), 0.0, "fresh counters");
    assert_eq!(metric(&m2, "daemon.pages_replayed"), 0.0);
    assert_eq!(metric(&m2, "engine.queries"), 0.0, "no engine work yet");
    assert_eq!(metric(&m2, "daemon.requests"), 1.0, "only this metrics call");

    analyze_all(&second, &app);
    let m3 = request(&second, "{\"cmd\":\"metrics\"}");
    assert_eq!(metric(&m3, "daemon.pages_replayed"), n, "store replays all");
    assert_eq!(metric(&m3, "daemon.pages_computed"), 0.0);
    assert_eq!(metric(&m3, "engine.queries"), 0.0, "replay is engine-free");
    assert_eq!(histogram_count(&m3, "daemon.replay_us"), n);

    let _ = std::fs::remove_dir_all(&cache);
}

/// Rewrites every stored verdict artifact's text with `f`, returning
/// how many files changed.
fn mangle_artifacts(cache: &PathBuf, f: impl Fn(&str) -> String) -> usize {
    let mut changed = 0;
    for entry in std::fs::read_dir(cache.join("verdicts")).expect("verdict dir") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        let mangled = f(&text);
        if mangled != text {
            std::fs::write(&path, mangled).expect("write mangled");
            changed += 1;
        }
    }
    changed
}

#[test]
fn pre_remedy_engine_artifact_is_dropped_not_replayed() {
    let app = small_app();
    let cache = temp_cache("pre-remedy-engine");
    let n = app.entries.len();

    let first = boot(&app, &cache);
    analyze_all(&first, &app);
    drop(first);

    // Downgrade each artifact to an engine suffix without the `.rm1`
    // remediation marker (the suffix has since grown further, so drop
    // the marker in place rather than trimming the tail).
    let current = strtaint_checker::engine_version();
    let old = current.replace(".rm1", "");
    assert_ne!(current, old.as_str(), "engine suffix must carry .rm1");
    let changed = mangle_artifacts(&cache, |text| text.replace(current, &old));
    assert_eq!(changed, n, "one artifact per page carried the engine stamp");

    let second = boot(&app, &cache);
    let r2 = analyze_all(&second, &app);
    assert_eq!(
        num(&r2, "computed"),
        n as f64,
        "pre-remedy artifacts must recompute, never replay"
    );
    assert_eq!(num(&r2, "replayed"), 0.0);
    let s2 = request(&second, "{\"cmd\":\"status\"}");
    let dropped = s2
        .get("store")
        .and_then(|s| s.get("dropped"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert_eq!(dropped, n as f64, "each stale-engine artifact is dropped");

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn artifact_stripped_of_skeleton_evidence_recomputes() {
    let app = small_app();
    let cache = temp_cache("no-skeletons");
    let n = app.entries.len();

    let first = boot(&app, &cache);
    analyze_all(&first, &app);
    drop(first);

    // Simulate a pre-remedy page body: hotspots without the skeleton
    // allowlist member. The engine header is left *current*, so this
    // exercises the structural validation in `Verdict::from_artifact`,
    // not the version gate.
    let changed = mangle_artifacts(&cache, |text| {
        text.replace("\"skeletons\":", "\"skeletons_stripped\":")
    });
    assert_eq!(changed, n, "every page body carried skeleton evidence");

    let second = boot(&app, &cache);
    let r2 = analyze_all(&second, &app);
    assert_eq!(
        num(&r2, "computed"),
        n as f64,
        "evidence-free artifacts must recompute, never replay"
    );
    assert_eq!(num(&r2, "replayed"), 0.0);

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn profile_is_byte_identical_cold_and_daemon_warm() {
    use strtaint::{analyze_page_policies_cached, CheckOptions, PolicyChecker, SummaryCache};

    let app = small_app();
    let cache = temp_cache("profile");
    let policies: Vec<String> = vec!["sql".into(), "xss".into()];

    // Cold run: direct in-process analysis, no daemon, no store.
    let config = strtaint::Config {
        policies: policies.clone(),
        ..strtaint::Config::default()
    };
    let checker = PolicyChecker::with_options(CheckOptions::default());
    let summaries = SummaryCache::new();
    let reports: Vec<_> = app
        .entries
        .iter()
        .map(|e| {
            analyze_page_policies_cached(&app.vfs, e, &config, &checker, &summaries).expect(e)
        })
        .collect();
    let cold = strtaint_remedy::render_profile(&strtaint_remedy::profile_pages(&reports));

    let entries: Vec<String> = app.entries.iter().map(|e| format!("\"{e}\"")).collect();
    let profile_req = format!(
        "{{\"cmd\":\"profile\",\"entries\":[{}],\"policies\":[\"sql\",\"xss\"]}}",
        entries.join(",")
    );

    // First daemon lifetime computes and persists the verdicts.
    let first = boot(&app, &cache);
    let r1 = request(&first, &profile_req);
    let warm1 = r1.get("profile").and_then(Json::as_str).expect("profile");
    assert_eq!(warm1, cold, "daemon compute profile matches the cold run");
    drop(first);

    // Second lifetime replays every verdict from the store — and must
    // render the byte-identical profile without any engine work.
    let second = boot(&app, &cache);
    let r2 = request(&second, &profile_req);
    let warm2 = r2.get("profile").and_then(Json::as_str).expect("profile");
    assert_eq!(warm2, cold, "daemon warm-replay profile is byte-identical");
    let s2 = request(&second, "{\"cmd\":\"status\"}");
    assert_eq!(
        engine_queries(&s2),
        0.0,
        "warm profile performs zero new Bar-Hillel queries"
    );

    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn profile_verb_routes_through_the_server_envelope() {
    // The CLI's `serve` path goes through the multi-workspace server
    // routing, not `handle_line` directly — a verb known only to the
    // protocol layer would answer `unknown cmd` over the wire.
    let app = small_app();
    let state = DaemonState::new(app.vfs.clone(), strtaint::Config::default(), None);
    let server = strtaint_daemon::ServerState::single("ws0", state);
    let entry = &app.entries[0];
    let input = format!(
        "{{\"cmd\":\"profile\",\"entries\":[\"{entry}\"]}}\n{{\"cmd\":\"shutdown\"}}\n"
    );
    let mut output = Vec::new();
    let shut = strtaint_daemon::serve_server_lines(&server, input.as_bytes(), &mut output)
        .expect("serves");
    assert!(shut);
    let first = std::str::from_utf8(&output)
        .expect("utf8")
        .lines()
        .next()
        .expect("response line")
        .to_owned();
    let r = strtaint_daemon::json::parse(&first).expect("profile line parses");
    assert_eq!(
        r.get("ok").and_then(Json::as_bool),
        Some(true),
        "profile must be a routed verb: {first}"
    );
    let profile = r.get("profile").and_then(Json::as_str).expect("profile text");
    assert!(profile.contains("strtaint-profile/1"));
}
