//! End-to-end tests for the remediation subsystem (`strtaint-remedy`):
//! fix planning, apply-and-reprove round trips, SARIF fixes against
//! pinned golden fixtures, renderer agreement on witness truncation,
//! and guard-profile determinism.

use std::time::Duration;

use strtaint::report::PageReport;
use strtaint::{analyze_page_policies_cached, CheckOptions, Config, PolicyChecker, SummaryCache};
use strtaint_analysis::{Hotspot, Provenance, Vfs};
use strtaint_checker::{CheckKind, Finding, HotspotReport};
use strtaint_corpus::{policies, remedy as remedy_corpus};
use strtaint_grammar::{NtId, Taint};
use strtaint_php::Span;
use strtaint_remedy::{plan_fixes, run_fix, to_result_fixes, Strategy};

fn analyze_all(vfs: &Vfs, entries: &[String], config: &Config) -> Vec<PageReport> {
    let checker = PolicyChecker::with_options(CheckOptions::default());
    let summaries = SummaryCache::new();
    entries
        .iter()
        .map(|e| analyze_page_policies_cached(vfs, e, config, &checker, &summaries).expect(e))
        .collect()
}

#[test]
fn fix_apply_discharges_fixable_seeds_and_preserves_ambiguous_pages() {
    let vfs = remedy_corpus::vfs();
    let entries: Vec<String> = remedy_corpus::seeds()
        .iter()
        .map(|s| s.entry.to_owned())
        .collect();
    let config = Config {
        policies: vec!["sql".into(), "xss".into()],
        ..Config::default()
    };
    let outcome = run_fix(&vfs, &entries, &config).expect("fix pipeline");

    for seed in remedy_corpus::seeds() {
        let plans: Vec<_> = outcome
            .plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.entry == seed.entry)
            .collect();
        assert!(!plans.is_empty(), "{}: no finding was planned", seed.entry);
        if seed.fixable {
            for (i, plan) in &plans {
                assert!(
                    plan.is_applicable(),
                    "{}: plan unexpectedly ambiguous: {:?}",
                    seed.entry,
                    plan.ambiguous
                );
                assert!(outcome.applied[*i], "{}: plan not applied", seed.entry);
                assert!(
                    outcome.discharged[*i],
                    "{}: finding not discharged by re-analysis",
                    seed.entry
                );
                match &plan.strategy {
                    Some(Strategy::Sanitize { function }) => {
                        assert_eq!(
                            function, seed.sanitizer,
                            "{}: wrong sanitizer",
                            seed.entry
                        );
                    }
                    other => panic!("{}: expected sanitize strategy, got {other:?}", seed.entry),
                }
            }
            let re = outcome
                .reanalyzed
                .iter()
                .find(|r| r.entry == seed.entry)
                .expect("reanalyzed report");
            assert_eq!(
                re.findings().count(),
                0,
                "{}: findings remain after apply",
                seed.entry
            );
        } else {
            for (i, plan) in &plans {
                assert!(
                    plan.ambiguous.is_some(),
                    "{}: expected an ambiguous plan",
                    seed.entry
                );
                assert!(!outcome.applied[*i]);
            }
            assert_eq!(
                outcome.fixed_vfs.get(seed.entry),
                vfs.get(seed.entry),
                "{}: ambiguous page was modified",
                seed.entry
            );
        }
    }
}

#[test]
fn fix_apply_discharges_policy_corpus_vulns_and_keeps_safe_pages_identical() {
    let vfs = policies::vfs();
    let entries: Vec<String> = policies::seeds()
        .iter()
        .map(|s| s.entry.to_owned())
        .collect();
    let config = Config {
        policies: vec!["shell".into(), "path".into(), "eval".into()],
        ..Config::default()
    };
    let outcome = run_fix(&vfs, &entries, &config).expect("fix pipeline");

    for seed in policies::seeds() {
        if seed.vulnerable {
            let plan_idx: Vec<usize> = outcome
                .plans
                .iter()
                .enumerate()
                .filter(|(_, p)| p.entry == seed.entry)
                .map(|(i, _)| i)
                .collect();
            assert!(!plan_idx.is_empty(), "{}: no plan", seed.entry);
            for i in plan_idx {
                assert!(
                    outcome.discharged[i],
                    "{}: not discharged ({:?})",
                    seed.entry, outcome.plans[i].ambiguous
                );
                assert!(matches!(
                    outcome.plans[i].strategy,
                    Some(Strategy::Guard { .. })
                ));
            }
            let re = outcome
                .reanalyzed
                .iter()
                .find(|r| r.entry == seed.entry)
                .expect("reanalyzed report");
            assert_eq!(
                re.findings().count(),
                0,
                "{}: findings remain after apply",
                seed.entry
            );
        } else {
            // Sanitized pages carry no findings, get no plans, and
            // must come through the apply step byte-identical.
            assert!(
                !outcome.plans.iter().any(|p| p.entry == seed.entry),
                "{}: unexpected plan for a safe page",
                seed.entry
            );
            assert_eq!(
                outcome.fixed_vfs.get(seed.entry),
                vfs.get(seed.entry),
                "{}: safe page was modified",
                seed.entry
            );
        }
    }
    // Shared layout files are untouched too.
    assert_eq!(outcome.fixed_vfs.get("pages/home.php"), vfs.get("pages/home.php"));
}

/// A synthetic one-finding report with a truncated witness, for
/// renderer-agreement checks (real witnesses this long need
/// pathological grammars; the flag's plumbing is what's under test).
fn truncated_report() -> PageReport {
    let finding = Finding {
        nonterminal: NtId(1),
        name: "_GET[id]".into(),
        taint: Taint::DIRECT,
        kind: CheckKind::OddQuotes,
        witness: Some(vec![b'\''; strtaint_checker::MAX_WITNESS_BYTES]),
        witness_truncated: true,
        example_query: None,
        detail: String::new(),
        at: None,
    };
    let hotspot = Hotspot {
        file: "index.php".into(),
        span: Span::new(3, 1),
        label: "mysql_query".into(),
        root: NtId(0),
        policy: "sql".into(),
        provenance: Provenance::default(),
    };
    let report = HotspotReport {
        findings: vec![finding],
        checked: 1,
        verified: 0,
        ..HotspotReport::default()
    };
    PageReport {
        entry: "index.php".into(),
        hotspots: vec![(hotspot, report)],
        grammar_nonterminals: 2,
        grammar_productions: 2,
        analysis_time: Duration::default(),
        check_time: Duration::default(),
        warnings: Vec::new(),
        unmodeled: Vec::new(),
        files_analyzed: 1,
        inputs: vec!["index.php".into()],
        degradations: Vec::new(),
        skipped: None,
    }
}

#[test]
fn all_three_renderers_mark_witness_truncation() {
    let reports = vec![truncated_report()];

    // Text renderer: the Display impl flags the capped witness.
    let text = reports[0].to_string();
    assert!(text.contains("[truncated]"), "text renderer: {text}");

    // JSON renderer: structured boolean member.
    let json = strtaint::render::json_report(&reports, None);
    assert!(
        json.contains("\"witness_truncated\": true"),
        "json renderer: {json}"
    );

    // SARIF renderer: structured result property (not just prose).
    let sarif = strtaint::render::sarif(&reports);
    assert!(
        sarif.contains("\"properties\": {\"witnessTruncated\": true}"),
        "sarif renderer: {sarif}"
    );
    assert!(sarif.contains("… [truncated]"), "sarif message: {sarif}");

    // And an untruncated finding renders `false` everywhere.
    let mut clean = truncated_report();
    clean.hotspots[0].1.findings[0].witness = Some(b"1'".to_vec());
    clean.hotspots[0].1.findings[0].witness_truncated = false;
    let reports = vec![clean];
    assert!(!reports[0].to_string().contains("[truncated]"));
    let json = strtaint::render::json_report(&reports, None);
    assert!(json.contains("\"witness_truncated\": false"));
    let sarif = strtaint::render::sarif(&reports);
    assert!(sarif.contains("\"properties\": {\"witnessTruncated\": false}"));
}

/// Renders the SARIF-with-fixes document for one seeded page.
fn sarif_fixes_for(vfs: &Vfs, entry: &str, policies_list: &[&str]) -> String {
    let config = Config {
        policies: policies_list.iter().map(|s| s.to_string()).collect(),
        ..Config::default()
    };
    let entries = vec![entry.to_owned()];
    let reports = analyze_all(vfs, &entries, &config);
    let plans = plan_fixes(vfs, &reports);
    assert!(
        plans.iter().any(|p| p.is_applicable()),
        "{entry}: no applicable plan"
    );
    let fixes = to_result_fixes(vfs, &plans);
    strtaint::render::sarif_with_fixes(&reports, &fixes)
}

fn assert_golden(generated: &str, golden: &str, path: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, generated).expect("update golden");
        return;
    }
    assert_eq!(
        generated, golden,
        "SARIF fixes drifted from {path}; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn sarif_fixes_match_golden_fixture_per_policy_class() {
    let rv = remedy_corpus::vfs();
    let pv = policies::vfs();
    let cases: [(&Vfs, &str, &[&str], &str, &str); 5] = [
        (
            &rv,
            "sql_quoted_vuln.php",
            &["sql"],
            include_str!("golden/sarif_fixes_sql.sarif"),
            "tests/golden/sarif_fixes_sql.sarif",
        ),
        (
            &rv,
            "xss_vuln.php",
            &["sql", "xss"],
            include_str!("golden/sarif_fixes_xss.sarif"),
            "tests/golden/sarif_fixes_xss.sarif",
        ),
        (
            &pv,
            "shell_vuln.php",
            &["shell"],
            include_str!("golden/sarif_fixes_shell.sarif"),
            "tests/golden/sarif_fixes_shell.sarif",
        ),
        (
            &pv,
            "path_vuln.php",
            &["path"],
            include_str!("golden/sarif_fixes_path.sarif"),
            "tests/golden/sarif_fixes_path.sarif",
        ),
        (
            &pv,
            "eval_vuln.php",
            &["eval"],
            include_str!("golden/sarif_fixes_eval.sarif"),
            "tests/golden/sarif_fixes_eval.sarif",
        ),
    ];
    for (vfs, entry, pols, golden, path) in cases {
        let generated = sarif_fixes_for(vfs, entry, pols);
        assert_golden(&generated, golden, path);
    }
}

#[test]
fn profile_render_is_deterministic_and_carries_skeletons() {
    let vfs = remedy_corpus::vfs();
    let entries: Vec<String> = remedy_corpus::seeds()
        .iter()
        .map(|s| s.entry.to_owned())
        .collect();
    let config = Config {
        policies: vec!["sql".into(), "xss".into()],
        ..Config::default()
    };
    let a = strtaint_remedy::render_profile(&strtaint_remedy::profile_pages(&analyze_all(
        &vfs, &entries, &config,
    )));
    let b = strtaint_remedy::render_profile(&strtaint_remedy::profile_pages(&analyze_all(
        &vfs, &entries, &config,
    )));
    assert_eq!(a, b, "profile must be deterministic across runs");
    assert!(a.contains("strtaint-profile/1"));
    assert!(a.contains(strtaint_checker::engine_version()));
    // The quoted-context page's skeleton shows the placeholder inside
    // the string literal — the exact evidence the fix planner used.
    assert!(
        a.contains("'?'"),
        "expected a quoted placeholder skeleton in:\n{a}"
    );
}
