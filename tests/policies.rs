//! Policy-layer acceptance tests.
//!
//! - Every seeded vulnerable corpus page reports a finding with its
//!   class's rule id; every sanitized variant verifies clean.
//! - The three new classes carry distinct SARIF rule ids.
//! - With the default policy set (`["sql"]`) the policy-driven pipeline
//!   is byte-identical to the dedicated SQLCIV path on the corpus —
//!   text, findings, and SARIF.
//! - The cheap-first cascade reorder changes no verdict on the corpus.
//! - The SARIF rule-id namespace is pinned by a golden file
//!   (`tests/golden/rule_ids.txt`); adding or renaming a rule id is an
//!   intentional, reviewed change.

use std::collections::HashSet;

use strtaint::{
    analyze_page_cached, analyze_page_policies, analyze_page_policies_cached, render,
    CheckOptions, Checker, Config, PolicyChecker, SummaryCache,
};
use strtaint_corpus::policies::{seeds, vfs};

fn config_with(policies: &[&str]) -> Config {
    Config {
        policies: policies.iter().map(|&p| p.to_owned()).collect(),
        ..Config::default()
    }
}

#[test]
fn seeded_pages_match_ground_truth() {
    let vfs = vfs();
    for seed in seeds() {
        let config = config_with(&["sql", seed.policy]);
        let report = analyze_page_policies(&vfs, seed.entry, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", seed.entry));
        if seed.vulnerable {
            let rules: Vec<&str> = report
                .findings()
                .map(|(_, f)| f.kind.rule_id())
                .collect();
            assert!(
                rules.contains(&seed.rule),
                "{}: expected rule {}, got {rules:?}\n{report}",
                seed.entry,
                seed.rule
            );
        } else {
            assert!(
                report.is_verified(),
                "{}: sanitized variant must verify\n{report}",
                seed.entry
            );
            assert_eq!(
                report.findings().count(),
                0,
                "{}: sanitized variant must have zero findings",
                seed.entry
            );
        }
    }
}

#[test]
fn new_classes_have_distinct_sarif_rule_ids() {
    let vfs = vfs();
    let config = config_with(&["sql", "shell", "path", "eval"]);
    let checker = PolicyChecker::new();
    let summaries = SummaryCache::new();
    let mut reports = Vec::new();
    for seed in seeds().iter().filter(|s| s.vulnerable) {
        reports.push(
            analyze_page_policies_cached(&vfs, seed.entry, &config, &checker, &summaries)
                .expect("seeded page analyzes"),
        );
    }
    let sarif = render::sarif(&reports);
    let mut classes = HashSet::new();
    for rule in [
        "strtaint/shell-metachar",
        "strtaint/path-traversal",
        "strtaint/code-injection",
    ] {
        assert!(sarif.contains(rule), "SARIF must carry {rule}:\n{sarif}");
        classes.insert(rule);
    }
    assert_eq!(classes.len(), 3, "one distinct rule id per class");
}

#[test]
fn sql_only_policy_run_is_byte_identical_to_dedicated_path() {
    // The refactor's core acceptance criterion: routing the default
    // config through the policy layer must not change a single byte of
    // output on the existing corpus.
    let app = strtaint_corpus::apps::utopia::build();
    let config = Config::default();
    let checker = Checker::new();
    let pchecker = PolicyChecker::new();
    let s1 = SummaryCache::new();
    let s2 = SummaryCache::new();
    let mut dedicated = Vec::new();
    let mut policy_driven = Vec::new();
    for entry in &app.entries {
        dedicated
            .push(analyze_page_cached(&app.vfs, entry, &config, &checker, &s1).expect("page"));
        policy_driven.push(
            analyze_page_policies_cached(&app.vfs, entry, &config, &pchecker, &s2)
                .expect("page"),
        );
    }
    assert_eq!(
        render::sarif(&dedicated),
        render::sarif(&policy_driven),
        "SARIF bytes must match"
    );
    // Text reports include wall-clock timings, so compare them with
    // the timing fields held constant: everything else must agree.
    for (d, p) in dedicated.iter().zip(&policy_driven) {
        assert_eq!(d.is_verified(), p.is_verified(), "{}: verdict", d.entry);
        assert_eq!(
            d.findings().count(),
            p.findings().count(),
            "{}: finding count",
            d.entry
        );
        for ((hd, fd), (hp, fp)) in d.findings().zip(p.findings()) {
            assert_eq!(hd.label, hp.label);
            assert_eq!(fd.kind, fp.kind);
            assert_eq!(fd.name, fp.name);
            assert_eq!(fd.witness, fp.witness);
            assert_eq!(fd.example_query, fp.example_query);
        }
    }
}

#[test]
fn cheap_first_preserves_corpus_verdicts() {
    let app = strtaint_corpus::apps::eve::build();
    let config = Config::default();
    let fast = Checker::new();
    let slow = Checker::with_options(CheckOptions {
        cheap_first: false,
        ..CheckOptions::default()
    });
    let s1 = SummaryCache::new();
    let s2 = SummaryCache::new();
    for entry in &app.entries {
        let a = analyze_page_cached(&app.vfs, entry, &config, &fast, &s1).expect("page");
        let b = analyze_page_cached(&app.vfs, entry, &config, &slow, &s2).expect("page");
        assert_eq!(a.is_verified(), b.is_verified(), "{entry}");
        assert_eq!(a.findings().count(), b.findings().count(), "{entry}");
        for ((_, fa), (_, fb)) in a.findings().zip(b.findings()) {
            assert_eq!(fa.kind, fb.kind, "{entry}");
            assert_eq!(fa.witness, fb.witness, "{entry}");
        }
    }
}

#[test]
fn rule_id_namespace_matches_golden_file() {
    let mut lines = Vec::new();
    lines.push("# SARIF rule ids, pinned. Regenerate only on an".to_owned());
    lines.push("# intentional policy/kind change (see tests/policies.rs).".to_owned());
    for kind in strtaint::policy::CheckKind::all() {
        lines.push(format!("kind {}", kind.rule_id()));
    }
    for policy in strtaint::policy::builtin() {
        lines.push(format!("policy {} {}", policy.id, policy.rule_ids.join(" ")));
    }
    let generated = format!("{}\n", lines.join("\n"));
    let golden = include_str!("golden/rule_ids.txt");
    assert_eq!(
        generated, golden,
        "rule-id namespace drifted from tests/golden/rule_ids.txt; \
         if intentional, update the golden file to:\n{generated}"
    );
}
