//! End-to-end cross-site-scripting analysis (the paper's §7 future
//! work, built on the same grammar machinery).

use strtaint::{analyze_page_xss, Config, Vfs};

fn xss(src: &str) -> strtaint::PageReport {
    let mut vfs = Vfs::new();
    vfs.add("p.php", src);
    analyze_page_xss(&vfs, "p.php", &Config::default()).unwrap()
}

#[test]
fn reflected_xss_reported() {
    let r = xss(
        r#"<?php
$name = $_GET['name'];
echo "<p>Hello, $name!</p>";
"#,
    );
    assert!(!r.is_verified(), "{r}");
    let (_, f) = r.findings().next().unwrap();
    assert!(f.taint.is_direct());
    assert!(f.detail.contains("XSS"));
}

#[test]
fn htmlspecialchars_verifies() {
    let r = xss(
        r#"<?php
$name = htmlspecialchars($_GET['name']);
echo "<p>Hello, $name!</p>";
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn attribute_breakout_reported() {
    // htmlspecialchars (pre-5.4 default) escapes `"` so double-quoted
    // attributes are safe — but single-quoted attributes are not,
    // because `'` passes through. The checker distinguishes contexts.
    let safe = xss(
        r#"<?php
$u = htmlspecialchars($_GET['u']);
echo "<a href=\"profile.php?u=$u\">profile</a>";
"#,
    );
    assert!(safe.is_verified(), "{safe}");

    let unsafe_attr = xss(
        r#"<?php
$u = htmlspecialchars($_GET['u']);
echo "<a href='profile.php?u=$u'>profile</a>";
"#,
    );
    assert!(
        !unsafe_attr.is_verified(),
        "single-quoted attribute + htmlspecialchars default flags is exploitable"
    );
}

#[test]
fn stored_xss_is_indirect() {
    let r = xss(
        r#"<?php
$res = $DB->query("SELECT * FROM comments");
$row = $DB->fetch_array($res);
$c = $row['body'];
echo "<div>$c</div>";
"#,
    );
    assert!(!r.is_verified());
    let (_, f) = r.findings().next().unwrap();
    assert!(f.taint.is_indirect(), "stored XSS carries the indirect label");
}

#[test]
fn numeric_output_verifies() {
    let r = xss(
        r#"<?php
$n = intval($_GET['page']);
echo "<span>page $n</span>";
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn strip_tags_in_text_context_verifies() {
    let r = xss(
        r#"<?php
$c = strip_tags($_POST['comment']);
echo "<p>$c</p>";
"#,
    );
    assert!(r.is_verified(), "strip_tags removes all angle brackets: {r}");
}

#[test]
fn sql_and_xss_reports_are_independent() {
    // A page that is SQL-safe but XSS-unsafe.
    let src = r#"<?php
$id = intval($_GET['id']);
$r = $DB->query("SELECT * FROM t WHERE id=$id");
echo "<p>Results for " . $_GET['q'] . "</p>";
"#;
    let mut vfs = Vfs::new();
    vfs.add("p.php", src);
    let sql = strtaint::analyze_page(&vfs, "p.php", &Config::default()).unwrap();
    assert!(sql.is_verified(), "SQL side is safe");
    let xss_report = analyze_page_xss(&vfs, "p.php", &Config::default()).unwrap();
    assert!(!xss_report.is_verified(), "XSS side is not");
}
