//! Reproduces the paper's Figure 5: "Grammar reflects dataflow" — the
//! contrived branch program whose generated grammar mirrors the SSA
//! form (5b) as productions (5c).

use strtaint::{Config, Vfs};

#[test]
fn figure5_join_productions() {
    // Figure 5a, with the hotspot appended so the grammar is observable:
    //   $X = $UNTRUSTED;
    //   if ($A) { $X = $X . "s"; } else { $X = $X . "s"; }
    //   $Z = $X;
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php
$X = $_GET['u'];
if ($A) {
    $X = $X . "s";
} else {
    $X = $X . "s";
}
$Z = $X;
$DB->query($Z);
"#,
    );
    let a = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
    let root = a.hotspots[0].root;
    // Both branches append "s": every derivable string ends in 's', and
    // the untrusted prefix is unconstrained (UNTRUSTED → Σ*).
    assert!(a.cfg.derives(root, b"s"));
    assert!(a.cfg.derives(root, b"anything at all s"));
    assert!(a.cfg.derives(root, b"abcs"));
    assert!(!a.cfg.derives(root, b"abc"), "strings not ending in 's' excluded");
    assert!(!a.cfg.derives(root, b""), "the append is unconditional");
    // The dataflow is visible in the grammar: Z's nonterminal reaches a
    // direct-labeled source (X1 ← UNTRUSTED in the figure).
    let labeled = strtaint_checker::abstraction::maximal_labeled(&a.cfg, root);
    assert_eq!(labeled.len(), 1);
    assert!(a.cfg.taint(labeled[0]).is_direct());
}

#[test]
fn figure5_branches_with_different_suffixes() {
    // Variant showing the join keeps *both* alternatives (X4 → X2 | X3).
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php
$X = $_GET['u'];
if ($A) {
    $X = $X . "a";
} else {
    $X = $X . "b";
}
$DB->query($X);
"#,
    );
    let a = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
    let root = a.hotspots[0].root;
    assert!(a.cfg.derives(root, b"xa"));
    assert!(a.cfg.derives(root, b"xb"));
    assert!(!a.cfg.derives(root, b"xc"));
}
