//! Property tests hammering the daemon protocol layer with hostile
//! input (ISSUE 6 satellite): malformed JSON, truncated requests,
//! wrong-typed fields, oversized payloads, and garbage bytes. The
//! contract under test is uniform — every input line yields exactly one
//! structured JSON response (`ok:true`, or `ok:false` with an `error`
//! string); nothing panics, nothing hangs, nothing closes the loop
//! early except an explicit `shutdown`.

use proptest::prelude::*;

use strtaint_daemon::json::{self, Json};
use strtaint_daemon::protocol::handle_line;
use strtaint_daemon::{DaemonState, ServerConfig, ServerState, WorkspaceMap};
use strtaint::{Config, Vfs};

fn state() -> DaemonState {
    let mut vfs = Vfs::new();
    vfs.add("a.php", "<?php $r = $DB->query(\"SELECT 1\");");
    DaemonState::new(vfs, Config::default(), None)
}

fn server() -> ServerState {
    ServerState::new(
        WorkspaceMap::new("ws0", std::sync::Arc::new(state())),
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            drain: std::time::Duration::from_millis(200),
        },
    )
}

/// The uniform response contract: structured JSON, an `ok` member,
/// and on failure a non-empty `error` string.
fn assert_structured(line: &str, response: &Json) {
    let reparsed = json::parse(&response.to_string())
        .unwrap_or_else(|e| panic!("response not valid JSON for input {line:?}: {e}"));
    assert_eq!(&reparsed, response, "writer/parser fixpoint holds");
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => {
            let err = response.get("error").and_then(Json::as_str).unwrap_or("");
            assert!(!err.is_empty(), "failure without error for input {line:?}");
        }
        None => panic!("no ok member for input {line:?}: {}", response.to_string()),
    }
}

/// A syntactically valid request whose field values are hostile.
fn hostile_request(cmd: &str, field: &str, value: &str) -> String {
    format!("{{\"cmd\":{cmd},{field}:{value}}}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn garbage_bytes_get_structured_errors(
        line in "[ -~]{0,120}",
    ) {
        let s = state();
        let handled = handle_line(&s, &line);
        assert_structured(&line, &handled.response);
        // Only a well-formed shutdown request may stop the loop.
        if handled.shutdown {
            let parsed = json::parse(line.trim()).expect("shutdown only from valid JSON");
            assert_eq!(parsed.get("cmd").and_then(Json::as_str), Some("shutdown"));
        }
    }

    #[test]
    fn truncated_valid_requests_never_panic(
        cut in 0usize..90,
        entries in prop::collection::vec("[a-z][a-z0-9]{0,6}\\.php", 0..4),
    ) {
        let quoted: Vec<String> = entries.iter().map(|e| format!("\"{e}\"")).collect();
        let full = format!(
            "{{\"cmd\":\"analyze\",\"entries\":[{}],\"priority\":3,\"deadline_ms\":50}}",
            quoted.join(",")
        );
        // Truncate on a char boundary (all-ASCII input, any index works).
        let cut = cut.min(full.len());
        let line = &full[..cut];
        let s = state();
        let handled = handle_line(&s, line);
        assert_structured(line, &handled.response);
        assert!(!handled.shutdown, "truncated analyze cannot shut down");
    }

    #[test]
    fn wrong_typed_fields_get_structured_errors(
        cmd in prop_oneof![
            Just("\"analyze\""), Just("\"invalidate\""), Just("\"batch\""),
            Just("\"status\""), Just("17"), Just("null"), Just("[]"),
        ],
        field in prop_oneof![
            Just("\"entries\""), Just("\"priority\""), Just("\"deadline_ms\""),
            Just("\"workspace\""), Just("\"ops\""), Just("\"path\""),
        ],
        value in prop_oneof![
            Just("17"), Just("-3"), Just("\"ten\""), Just("{}"),
            Just("[[[[]]]]"), Just("null"), Just("true"), Just("3.5"),
            Just("{\"cmd\":\"analyze\"}"), Just("[0,1,2]"),
        ],
    ) {
        let line = hostile_request(cmd, field, value);
        // Through the bare protocol layer…
        let s = state();
        let handled = handle_line(&s, &line);
        assert_structured(&line, &handled.response);
        // …and through the routing/server layer (workspace resolution,
        // priority/deadline validation) executed inline.
        let srv = server();
        let handled = srv.handle_inline(&line);
        assert_structured(&line, &handled.response);
        assert!(!handled.shutdown);
    }

    #[test]
    fn hostile_batches_fail_per_op_not_per_connection(
        ops in prop::collection::vec(
            prop_oneof![
                Just("{\"cmd\":\"status\"}".to_owned()),
                Just("{\"cmd\":\"shutdown\"}".to_owned()),
                Just("{\"cmd\":\"batch\",\"ops\":[]}".to_owned()),
                Just("{\"cmd\":\"analyze\",\"entries\":\"nope\"}".to_owned()),
                Just("{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}".to_owned()),
                Just("{}".to_owned()),
                Just("17".to_owned()),
            ],
            0..6,
        ),
    ) {
        let line = format!("{{\"cmd\":\"batch\",\"ops\":[{}]}}", ops.join(","));
        let s = state();
        let handled = handle_line(&s, &line);
        assert_structured(&line, &handled.response);
        assert!(!handled.shutdown, "a batch can never smuggle a shutdown");
        if handled.response.get("ok").and_then(Json::as_bool) == Some(true) {
            let results = handled
                .response
                .get("results")
                .and_then(Json::as_arr)
                .expect("ok batch has results");
            assert_eq!(results.len(), ops.len(), "one result slot per op");
            for r in results {
                assert_structured(&line, r);
            }
        }
    }
}

#[test]
fn oversized_line_is_rejected_without_buffering() {
    let s = state();
    // Just past the protocol cap: one giant (syntactically valid) line.
    let line = format!(
        "{{\"cmd\":\"analyze\",\"pad\":\"{}\"}}",
        "x".repeat(strtaint_daemon::protocol::MAX_LINE_BYTES)
    );
    let handled = handle_line(&s, &line);
    assert_structured(&line, &handled.response);
    assert_eq!(
        handled.response.get("ok").and_then(Json::as_bool),
        Some(false),
        "oversized requests are refused"
    );
}

#[test]
fn deeply_nested_json_is_rejected_not_stack_overflowed() {
    let s = state();
    let line = format!("{}{}", "[".repeat(4_000), "]".repeat(4_000));
    let handled = handle_line(&s, &line);
    assert_structured(&line, &handled.response);
    assert_eq!(handled.response.get("ok").and_then(Json::as_bool), Some(false));
}

#[test]
fn stdio_loop_answers_every_hostile_line_and_survives() {
    use strtaint_daemon::serve_server_lines;

    let srv = server();
    let input = "not json\n\
                 {\"cmd\":\"analyze\",\"entries\":[\"a.php\"],\"workspace\":9}\n\
                 {\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}\n\
                 {truncated\n\
                 \n\
                 {\"cmd\":\"nope\"}\n";
    let mut output = Vec::new();
    let shut = serve_server_lines(&srv, input.as_bytes(), &mut output).expect("serves");
    assert!(!shut, "no shutdown requested");
    let lines: Vec<Json> = std::str::from_utf8(&output)
        .expect("utf8")
        .lines()
        .map(|l| json::parse(l).expect("every response parses"))
        .collect();
    assert_eq!(lines.len(), 5, "one response per non-empty line");
    // The well-formed analyze in the middle still succeeded.
    assert_eq!(lines[2].get("ok").and_then(Json::as_bool), Some(true));
    for (line, response) in input.lines().filter(|l| !l.trim().is_empty()).zip(&lines) {
        assert_structured(line, response);
    }
}
