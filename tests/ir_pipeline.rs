//! The staged AST→IR→grammar pipeline must be invisible in results:
//! summaries are a pure caching layer, so a page analyzed through a
//! cold cache, a warm cache, or no shared cache at all yields the same
//! grammars, hotspots, and warnings — while a warm cache does strictly
//! less lowering work (measured by the cache counters).

use strtaint::{
    analyze_app_parallel_cached, analyze_page_cached, analyze_page_with, Checker, Config,
    PageReport, SummaryCache, Vfs,
};
use strtaint_corpus::synth::{synth_app, SynthConfig};

/// A small app exercising the IR features the cache must preserve:
/// a shared include defining a function, branch joins feeding a
/// hotspot, and a loop fixpoint.
fn join_app() -> Vfs {
    let mut vfs = Vfs::new();
    vfs.add(
        "lib.php",
        r#"<?php
function fetch_row($w) {
    global $DB;
    return $DB->query("SELECT * FROM t WHERE " . $w);
}
"#,
    );
    for page in ["p1.php", "p2.php"] {
        vfs.add(
            page,
            r#"<?php
include('lib.php');
$id = $_GET['id'];
if (isset($_GET['alt'])) {
    $cond = "id='" . $id . "'";
} else {
    $cond = "id=''";
}
for ($i = 0; $i < 3; $i = $i + 1) {
    $cond = $cond . " OR id=''";
}
$r = fetch_row($cond);
"#,
        );
    }
    vfs
}

/// Canonical text form of a page's per-hotspot query grammars, plus
/// everything else observable about the page.
fn fingerprint(p: &PageReport) -> String {
    let mut out = String::new();
    for (h, r) in &p.hotspots {
        out.push_str(&format!(
            "hotspot {} @ {}:{} safe={} checked={} findings={}\n",
            h.label,
            h.file,
            h.span,
            r.is_safe(),
            r.checked,
            r.findings.len()
        ));
    }
    out.push_str(&format!(
        "V={} R={} files={}\n",
        p.grammar_nonterminals, p.grammar_productions, p.files_analyzed
    ));
    for w in &p.warnings {
        out.push_str(w);
        out.push('\n');
    }
    out
}

/// Canonical dump of every hotspot's grammar (productions reachable
/// from the hotspot root, in creation order).
fn grammar_dump(vfs: &Vfs, entry: &str, config: &Config, summaries: &SummaryCache) -> String {
    let budget = config.page_budget();
    let a = strtaint_analysis::analyze_cached(vfs, entry, config, &budget, summaries).unwrap();
    a.hotspots
        .iter()
        .map(|h| a.cfg.display_from(h.root))
        .collect::<Vec<_>>()
        .join("\n---\n")
}

#[test]
fn cold_and_warm_cache_grammars_identical() {
    let vfs = join_app();
    let config = Config::default();
    let cache = SummaryCache::new();

    // Cold: first pass lowers everything.
    let cold: Vec<String> = ["p1.php", "p2.php"]
        .iter()
        .map(|e| grammar_dump(&vfs, e, &config, &cache))
        .collect();
    let misses_after_cold = cache.misses();
    assert!(misses_after_cold > 0, "cold pass must lower files");

    // Warm: same cache, zero new lowerings, bit-identical grammars.
    let warm: Vec<String> = ["p1.php", "p2.php"]
        .iter()
        .map(|e| grammar_dump(&vfs, e, &config, &cache))
        .collect();
    assert_eq!(cache.misses(), misses_after_cold, "warm pass must not lower");
    assert!(cache.hits() > 0);
    assert_eq!(cold, warm, "warm-cache grammars must be bit-identical");
}

#[test]
fn shared_cache_reports_match_uncached_path() {
    let vfs = join_app();
    let config = Config::default();
    let checker = Checker::new();
    let cache = SummaryCache::new();
    for entry in ["p1.php", "p2.php"] {
        let uncached = analyze_page_with(&vfs, entry, &config, &checker).unwrap();
        let cached = analyze_page_cached(&vfs, entry, &config, &checker, &cache).unwrap();
        assert_eq!(
            fingerprint(&uncached),
            fingerprint(&cached),
            "{entry}: cached result differs"
        );
    }
    // p2 rides entirely on p1's lowerings: lib.php and the (identical)
    // page body are both content-hash hits.
    assert!(cache.hits() > 0, "second page must hit the shared cache");
}

#[test]
fn include_and_function_summaries_reused_across_pages() {
    let vfs = join_app();
    let config = Config::default();
    let checker = Checker::new();
    let cache = SummaryCache::new();
    let first = analyze_page_cached(&vfs, "p1.php", &config, &checker, &cache).unwrap();
    let after_first = cache.misses();
    let second = analyze_page_cached(&vfs, "p2.php", &config, &checker, &cache).unwrap();
    // p2.php's body is byte-identical to p1.php's and lib.php is shared,
    // so the second page lowers nothing new.
    assert_eq!(cache.misses(), after_first, "p2 must reuse all summaries");
    // Both pages see the include-defined function and the env joins.
    assert_eq!(first.hotspots.len(), 1);
    assert_eq!(second.hotspots.len(), 1);
    assert!(!first.is_verified(), "raw-GET branch is a SQLCIV");
    assert_eq!(fingerprint(&first).replace("p1.php", "X"),
               fingerprint(&second).replace("p2.php", "X"));
}

#[test]
fn warm_parallel_app_lowered_at_least_30_percent_less() {
    let app = synth_app(&SynthConfig::default());
    let entries = app.entry_refs();
    let config = Config::default();
    let checker = Checker::new();

    // Cold baseline: every page gets a private cache, so shared
    // includes are lowered once *per page*.
    let mut cold_lowerings = 0u64;
    for e in &entries {
        let fresh = SummaryCache::new();
        analyze_page_cached(&app.vfs, e, &config, &checker, &fresh).unwrap();
        cold_lowerings += fresh.misses();
    }

    // Warm: the app driver shares one cache across its workers.
    let shared = SummaryCache::new();
    let report =
        analyze_app_parallel_cached(app.name, &app.vfs, &entries, &config, 4, &shared);
    assert_eq!(report.pages.len(), entries.len());
    let warm_lowerings = report.summary_misses;
    assert!(warm_lowerings > 0);
    assert_eq!(
        report.summary_hits + report.summary_misses,
        cold_lowerings,
        "cache sees one lookup per (page, file) traversal"
    );
    assert!(
        warm_lowerings * 10 <= cold_lowerings * 7,
        "warm cache must lower >=30% less: {warm_lowerings} vs {cold_lowerings}"
    );
}
