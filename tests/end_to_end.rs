//! End-to-end behavior tests across the analysis features: includes,
//! loops, string builtins, interprocedural flows, and the dynamic
//! include resolution of paper §4.

use strtaint::{analyze_page, Config, Vfs};

fn page(src: &str) -> strtaint::PageReport {
    let mut vfs = Vfs::new();
    vfs.add("index.php", src);
    analyze_page(&vfs, "index.php", &Config::default()).unwrap()
}

#[test]
fn query_built_in_loop_is_analyzed() {
    // Loop-carried concatenation: tainted values accumulate.
    let r = page(
        r#"<?php
$where = "1=1";
foreach ($_POST['filters'] as $f) {
    $where = $where . " AND tag='" . $f . "'";
}
$DB->query("SELECT * FROM items WHERE " . $where);
"#,
    );
    assert!(!r.is_verified(), "loop-carried taint must be found");
}

#[test]
fn sanitized_loop_verifies() {
    let r = page(
        r#"<?php
$where = "1=1";
foreach ($_POST['filters'] as $f) {
    $c = addslashes($f);
    $where = $where . " AND tag='" . $c . "'";
}
$DB->query("SELECT * FROM items WHERE " . $where);
"#,
    );
    // addslashes applied to the loop variable — sanitizer inside the
    // loop body, applied to the (non-loop-carried) element. Each piece
    // is escaped and quoted.
    assert!(r.is_verified(), "{r}");
}

#[test]
fn static_include_flows() {
    let mut vfs = Vfs::new();
    vfs.add(
        "db.php",
        r#"<?php
function fetch_user($id) {
    global $DB;
    return $DB->query("SELECT * FROM users WHERE id='" . $id . "'");
}
"#,
    );
    vfs.add(
        "index.php",
        r#"<?php
include('db.php');
fetch_user(intval($_GET['id']));
"#,
    );
    let r = analyze_page(&vfs, "index.php", &Config::default()).unwrap();
    assert!(r.is_verified(), "intval'd id through include+function: {r}");

    // Same flow without intval must be flagged.
    vfs.add(
        "index.php",
        r#"<?php
include('db.php');
fetch_user($_GET['id']);
"#,
    );
    let r = analyze_page(&vfs, "index.php", &Config::default()).unwrap();
    assert!(!r.is_verified());
}

#[test]
fn dynamic_include_resolved_by_layout() {
    // Paper §4: the filesystem layout is part of the specification.
    let mut vfs = Vfs::new();
    vfs.add(
        "mods/a.php",
        r#"<?php $q = $DB->query("SELECT * FROM a WHERE x='" . $_GET['x'] . "'");"#,
    );
    vfs.add("mods/b.php", r#"<?php $safe = 1;"#);
    vfs.add(
        "index.php",
        r#"<?php
$m = $_GET['mod'];
if (!in_array($m, array('a', 'b'))) { $m = 'b'; }
include('mods/' . $m . '.php');
"#,
    );
    let r = analyze_page(&vfs, "index.php", &Config::default()).unwrap();
    // The vulnerable module is reachable through the dynamic include.
    assert!(!r.is_verified(), "{r}");
    assert!(r.warnings.is_empty(), "include resolved without warnings: {:?}", r.warnings);
}

#[test]
fn unresolvable_dynamic_include_warns() {
    let mut vfs = Vfs::new();
    vfs.add("index.php", r#"<?php include('mods/' . $_GET['m'] . '.php');"#);
    let r = analyze_page(&vfs, "index.php", &Config::default()).unwrap();
    assert!(
        r.warnings.iter().any(|w| w.contains("include")),
        "unresolved dynamic include must warn: {:?}",
        r.warnings
    );
}

#[test]
fn include_override_config() {
    let mut vfs = Vfs::new();
    vfs.add(
        "mods/a.php",
        r#"<?php $q = $DB->query("SELECT * FROM a WHERE x='" . $_GET['x'] . "'");"#,
    );
    vfs.add("index.php", "<?php include('mods/' . $_GET['m'] . '.php');\n");
    let mut config = Config::default();
    config
        .include_overrides
        .insert("index.php:1".into(), vec!["mods/a.php".into()]);
    let r = analyze_page(&vfs, "index.php", &config).unwrap();
    assert!(!r.is_verified(), "override routes analysis into the module");
}

#[test]
fn sprintf_splices_arguments() {
    let r = page(
        r#"<?php
$q = sprintf("SELECT * FROM logs WHERE level=%d AND tag='%s'", $_GET['l'], addslashes($_GET['t']));
$DB->query($q);
"#,
    );
    assert!(r.is_verified(), "%d coerces numeric, %s escaped+quoted: {r}");

    let r = page(
        r#"<?php
$q = sprintf("SELECT * FROM logs WHERE tag='%s'", $_GET['t']);
$DB->query($q);
"#,
    );
    assert!(!r.is_verified(), "raw %s argument must be flagged");
}

#[test]
fn explode_pieces_tracked() {
    let r = page(
        r#"<?php
$parts = explode('|', $_GET['path']);
$first = $parts[0];
$DB->query("SELECT * FROM nodes WHERE p='$first'");
"#,
    );
    assert!(!r.is_verified(), "explode pieces of tainted input stay tainted");
}

#[test]
fn str_replace_quote_doubling_alone_is_bypassable() {
    // Hand-rolled quote doubling WITHOUT backslash handling is a real
    // (subtle) vulnerability in MySQL: the input `\'` becomes `\''`,
    // i.e. an escaped quote followed by a lone one. The transducer
    // model (paper Fig. 6 machinery) exposes exactly this.
    let r = page(
        r#"<?php
$v = str_replace("'", "''", $_GET['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(!r.is_verified(), "backslash bypass must be found");
    let (_, f) = r.findings().next().unwrap();
    let w = f.witness.clone().unwrap();
    assert!(w.contains(&b'\\'), "witness demonstrates the backslash bypass: {w:?}");
}

#[test]
fn str_replace_full_escaping_verifies() {
    // Doubling backslashes first, then quotes — the correct hand-rolled
    // escape — verifies.
    let r = page(
        r#"<?php
$v = str_replace('\\', '\\\\', $_GET['v']);
$v = str_replace("'", "''", $v);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn str_replace_incomplete_escaping_reported() {
    // Deleting quotes but forgetting backslash-quote interplay is fine;
    // but replacing the wrong character is not.
    let r = page(
        r#"<?php
$v = str_replace('"', '\\"', $_GET['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(!r.is_verified(), "escaping double quotes does not help single-quoted context");
}

#[test]
fn switch_whitelist_verifies() {
    let r = page(
        r#"<?php
switch ($_GET['sort']) {
    case 'name': $col = 'name'; break;
    case 'date': $col = 'created'; break;
    default: $col = 'id';
}
$DB->query("SELECT * FROM t ORDER BY $col");
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn method_chained_db_wrapper() {
    let r = page(
        r#"<?php
$res = $DB->query("SELECT * FROM t WHERE id=1");
$row = $DB->fetch_array($res);
$next = $row['next_id'];
$DB->query("SELECT * FROM t WHERE id='$next'");
"#,
    );
    let findings: Vec<_> = r.findings().collect();
    assert_eq!(findings.len(), 1);
    assert!(findings[0].1.taint.is_indirect());
}

#[test]
fn urlencode_makes_input_inert() {
    let r = page(
        r#"<?php
$v = urlencode($_GET['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(r.is_verified(), "urlencoded data cannot carry quotes: {r}");
}

#[test]
fn md5_result_is_safe_in_quotes() {
    let r = page(
        r#"<?php
$h = md5($_POST['password']);
$DB->query("SELECT * FROM users WHERE pw='$h'");
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn numeric_arithmetic_is_safe() {
    let r = page(
        r#"<?php
$pageno = $_GET['p'] + 0;
$offset = $pageno * 10;
$DB->query("SELECT * FROM t LIMIT 10 OFFSET $offset");
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn unknown_function_widens_soundly() {
    let r = page(
        r#"<?php
$v = some_unknown_library_call($_GET['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");
"#,
    );
    assert!(!r.is_verified(), "unknown function must not launder taint");
    assert!(r.unmodeled.iter().any(|f| f == "some_unknown_library_call"));
}

#[test]
fn files_analyzed_counts_reincludes() {
    let mut vfs = Vfs::new();
    vfs.add("h.php", "<?php $x = 1;\n");
    vfs.add(
        "index.php",
        "<?php include('h.php'); include('h.php'); $DB->query(\"SELECT 1\");",
    );
    let r = analyze_page(&vfs, "index.php", &Config::default()).unwrap();
    // index + h analyzed twice (plain include re-analyzes, as the
    // paper's tool does — §5.3).
    assert_eq!(r.files_analyzed, 3);
}

#[test]
fn prepared_statements_verify() {
    // The PreparedStatement pattern the related work (§6.3) describes:
    // placeholders keep bound parameters out of the query syntax.
    let r = page(
        r#"<?php
$stmt = $DB->prepare("SELECT * FROM t WHERE id = 1 AND name = 'x'");
$stmt->execute(array($_GET['id'], $_POST['name']));
"#,
    );
    assert!(r.is_verified(), "bound parameters are not part of the query: {r}");
    assert_eq!(r.hotspots.len(), 1, "prepare is the hotspot, execute is not");
}

#[test]
fn interpolated_prepare_still_flagged() {
    // Building the *template* from user input defeats preparation.
    let r = page(
        r#"<?php
$t = $_GET['table'];
$stmt = $DB->prepare("SELECT * FROM $t WHERE id = 1");
$stmt->execute(array());
"#,
    );
    assert!(!r.is_verified(), "tainted template must be flagged");
}

#[test]
fn list_destructuring_tracks_taint() {
    let r = page(
        r#"<?php
list($user, $domain) = explode('@', $_POST['email']);
$DB->query("SELECT * FROM users WHERE name='$user'");
"#,
    );
    assert!(!r.is_verified(), "list() pieces of tainted input stay tainted");
}

#[test]
fn alternative_syntax_template_analyzed() {
    // The template idiom: logic in alternative-syntax blocks around
    // inline HTML.
    let r = page(
        r#"<?php if (!preg_match('/^[0-9]+$/', $_GET['id'])): ?>
<p>bad id</p>
<?php exit; endif;
$id = $_GET['id'];
$r = $DB->query("SELECT * FROM t WHERE id='$id'");
"#,
    );
    assert!(r.is_verified(), "refinement flows through endif: {r}");
}

#[test]
fn heredoc_query_analyzed() {
    // Heredoc syntax is a common way to write long queries.
    let r = page(
        r#"<?php
$id = $_GET['id'];
$q = <<<SQL
SELECT *
FROM t
WHERE id='$id'
SQL;
$DB->query($q);
"#,
    );
    assert!(!r.is_verified(), "tainted heredoc interpolation flagged");

    let r = page(
        r#"<?php
$id = intval($_GET['id']);
$q = <<<SQL
SELECT * FROM t WHERE id=$id
SQL;
$DB->query($q);
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn class_method_db_wrapper() {
    // The application-defined DB layer the real subjects use: a class
    // wrapping query construction.
    let r = page(
        r#"<?php
class Database {
    var $conn = null;
    function safe_query($tbl, $id) {
        global $DB;
        return $DB->query("SELECT * FROM " . $tbl . " WHERE id=" . intval($id));
    }
    function raw_query($sql) {
        global $DB;
        return $DB->query($sql);
    }
}
$db = new Database();
$db->safe_query('users', $_GET['id']);
"#,
    );
    assert!(r.is_verified(), "intval inside the class method: {r}");

    let r = page(
        r#"<?php
class Database {
    function raw_query($sql) {
        global $DB;
        return $DB->query($sql);
    }
}
$db = new Database();
$db->raw_query("SELECT * FROM t WHERE n='" . $_POST['n'] . "'");
"#,
    );
    assert!(!r.is_verified(), "taint flows through the method");
}

#[test]
fn class_method_sanitizer() {
    let r = page(
        r#"<?php
class Filter {
    function clean($v) {
        return addslashes($v);
    }
}
$f = new Filter();
$n = $f->clean($_POST['name']);
$DB->query("SELECT * FROM u WHERE name='$n'");
"#,
    );
    assert!(r.is_verified(), "{r}");
}

#[test]
fn parallel_app_analysis_matches_sequential() {
    let app = strtaint_corpus::apps::utopia::build();
    let seq = strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
    let par = strtaint::analyze_app_parallel(
        app.name,
        &app.vfs,
        &app.entry_refs(),
        &Config::default(),
        4,
    );
    assert_eq!(
        seq.direct_findings().len(),
        par.direct_findings().len(),
        "parallel analysis must find the same direct errors"
    );
    assert_eq!(
        seq.indirect_findings().len(),
        par.indirect_findings().len()
    );
    // Page order is preserved.
    let seq_entries: Vec<_> = seq.pages.iter().map(|p| &p.entry).collect();
    let par_entries: Vec<_> = par.pages.iter().map(|p| &p.entry).collect();
    assert_eq!(seq_entries, par_entries);
}

#[test]
fn constants_resolve_in_queries() {
    // Table-prefix constants are ubiquitous in the subjects (e107's
    // MPREFIX, UNP_PREFIX, ...).
    let r = page(
        r#"<?php
define('PREFIX', 'unp_');
$id = intval($_GET['id']);
$DB->query("SELECT * FROM " . PREFIX . "user WHERE id=$id");
"#,
    );
    assert!(r.is_verified(), "{r}");
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        r#"<?php
define('PREFIX', 'unp_');
$DB->query("SELECT * FROM " . PREFIX . "user WHERE id=1");
"#,
    );
    let a = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
    assert!(a
        .cfg
        .derives(a.hotspots[0].root, b"SELECT * FROM unp_user WHERE id=1"));
}

#[test]
fn hotspot_spans_point_at_call_sites() {
    let mut vfs = Vfs::new();
    vfs.add(
        "p.php",
        "<?php\n$a = 1;\n$b = 2;\n$DB->query(\"SELECT 1\");\n$DB->query(\"SELECT 2\");\n",
    );
    let a = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
    let lines: Vec<u32> = a.hotspots.iter().map(|h| h.span.line).collect();
    assert_eq!(lines, vec![4, 5]);
}

#[test]
fn include_once_runs_once() {
    let mut vfs = Vfs::new();
    vfs.add("counter.php", "<?php $n = $n . 'x';\n");
    vfs.add(
        "p.php",
        r#"<?php
$n = '';
include_once('counter.php');
include_once('counter.php');
$DB->query("SELECT '" . $n . "'");
"#,
    );
    let a = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
    let root = a.hotspots[0].root;
    assert!(a.cfg.derives(root, b"SELECT 'x'"), "included once");
    assert!(!a.cfg.derives(root, b"SELECT 'xx'"), "not twice");
}

#[test]
fn plain_include_runs_twice() {
    let mut vfs = Vfs::new();
    vfs.add("counter.php", "<?php $n = $n . 'x';\n");
    vfs.add(
        "p.php",
        r#"<?php
$n = '';
include('counter.php');
include('counter.php');
$DB->query("SELECT '" . $n . "'");
"#,
    );
    let a = strtaint_analysis::analyze(&vfs, "p.php", &Config::default()).unwrap();
    let root = a.hotspots[0].root;
    assert!(a.cfg.derives(root, b"SELECT 'xx'"));
}

#[test]
fn do_while_taint_accumulates() {
    let r = page(
        r#"<?php
$q = "SELECT * FROM t WHERE 1=1";
$i = 0;
do {
    $q = $q . " OR tag='" . $_GET['t'] . "'";
    $i++;
} while ($i < 3);
$DB->query($q);
"#,
    );
    assert!(!r.is_verified());
}

#[test]
fn global_statement_links_scopes() {
    let r = page(
        r#"<?php
$prefix = "app_";
function tbl($name) {
    global $prefix;
    return $prefix . $name;
}
$id = intval($_GET['id']);
$DB->query("SELECT * FROM " . tbl('users') . " WHERE id=$id");
"#,
    );
    assert!(r.is_verified(), "{r}");
}
