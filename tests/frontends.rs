//! Cross-frontend differential suite (DESIGN.md §14).
//!
//! The frontend abstraction promises that surface syntax is the *only*
//! thing a language owns: once lowered, the pipeline neither knows nor
//! cares which frontend produced the IR. These tests hold the PHP and
//! template frontends to that promise:
//!
//! - Ten paired programs (five policy classes × vulnerable/sanitized)
//!   written in both languages must agree on verdict, SARIF rule ids,
//!   and witness presence.
//! - A mixed-language app flows taint across the language boundary in
//!   both directions, shares one `SummaryCache` between pages, and
//!   round-trips through the daemon with byte-identical cold/warm
//!   replay.
//! - Pre-frontend daemon artifacts (older engine suffix, or missing
//!   per-dependency frontend evidence) are dropped, never replayed;
//!   flipping the extension map recomputes only the affected pages.

use std::fs;
use std::path::PathBuf;

use strtaint::{
    analyze_page_policies, analyze_page_policies_cached, analyze_page_xss, render, Config,
    PageReport, PolicyChecker, SummaryCache, Vfs,
};
use strtaint_corpus::frontends::{mixed_app, pairs, vfs};
use strtaint_daemon::json::{self, Json};
use strtaint_daemon::protocol::handle_line;
use strtaint_daemon::{ArtifactStore, DaemonState};

fn config_for(policy: &str) -> Config {
    let mut policies = vec!["sql".to_owned()];
    if policy != "sql" {
        policies.push(policy.to_owned());
    }
    Config {
        policies,
        ..Config::default()
    }
}

/// Analyzes one pair member under its pair's policy; `"xss"` routes
/// through the XSS checker like the CLI's `--xss` flag does.
fn analyze(vfs: &Vfs, entry: &str, policy: &str) -> PageReport {
    if policy == "xss" {
        analyze_page_xss(vfs, entry, &Config::default())
            .unwrap_or_else(|e| panic!("{entry}: {e}"))
    } else {
        analyze_page_policies(vfs, entry, &config_for(policy))
            .unwrap_or_else(|e| panic!("{entry}: {e}"))
    }
}

fn rule_ids(report: &PageReport) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = report.findings().map(|(_, f)| f.kind.rule_id()).collect();
    ids.sort_unstable();
    ids
}

/// `(rule id, has witness)` per finding, order-insensitive.
fn witness_profile(report: &PageReport) -> Vec<(&'static str, bool)> {
    let mut profile: Vec<(&'static str, bool)> = report
        .findings()
        .map(|(_, f)| (f.kind.rule_id(), f.witness.is_some()))
        .collect();
    profile.sort_unstable();
    profile
}

/// The `ruleId` values a rendered SARIF log carries, sorted.
fn sarif_rule_ids(sarif: &str) -> Vec<String> {
    let mut ids: Vec<String> = sarif
        .lines()
        .filter_map(|l| {
            l.trim()
                .strip_prefix("\"ruleId\": \"")
                .and_then(|rest| rest.strip_suffix("\","))
                .map(str::to_owned)
        })
        .collect();
    ids.sort();
    ids
}

#[test]
fn paired_programs_agree_across_frontends() {
    let vfs = vfs();
    for pair in pairs() {
        let php = analyze(&vfs, pair.php_entry, pair.policy);
        let tpl = analyze(&vfs, pair.tpl_entry, pair.policy);

        // Both members must match the pair's ground truth...
        assert_eq!(
            php.is_verified(),
            !pair.vulnerable,
            "{}: PHP member verdict\n{php}",
            pair.name
        );
        assert_eq!(
            tpl.is_verified(),
            !pair.vulnerable,
            "{}: template member verdict\n{tpl}",
            pair.name
        );
        // ...and each other, down to rule ids and witness presence.
        assert_eq!(
            rule_ids(&php),
            rule_ids(&tpl),
            "{}: rule ids diverge\nPHP: {php}\nTPL: {tpl}",
            pair.name
        );
        assert_eq!(
            witness_profile(&php),
            witness_profile(&tpl),
            "{}: witness presence diverges",
            pair.name
        );
        if pair.vulnerable {
            assert!(
                rule_ids(&php).contains(&pair.rule),
                "{}: expected rule {}, got {:?}\n{php}",
                pair.name,
                pair.rule,
                rule_ids(&php)
            );
        } else {
            assert_eq!(
                php.findings().count() + tpl.findings().count(),
                0,
                "{}: sanitized pair must have zero findings",
                pair.name
            );
        }
    }
}

#[test]
fn paired_sarif_logs_carry_identical_rule_ids() {
    let vfs = vfs();
    for pair in pairs() {
        let php = analyze(&vfs, pair.php_entry, pair.policy);
        let tpl = analyze(&vfs, pair.tpl_entry, pair.policy);
        assert_eq!(
            sarif_rule_ids(&render::sarif(&[php])),
            sarif_rule_ids(&render::sarif(&[tpl])),
            "{}: SARIF rule ids diverge across frontends",
            pair.name
        );
    }
}

fn assert_golden(generated: &str, golden: &str, path: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, generated).expect("update golden");
        return;
    }
    assert_eq!(
        generated, golden,
        "template SARIF drifted from {path}; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn tpl_sarif_matches_golden_fixture_per_policy_class() {
    // The template corpus SARIF is pinned per policy class: frontend
    // lowering changes that move a finding, rename a rule, or shift a
    // span show up as a reviewed golden diff, never silently.
    let vfs = vfs();
    let cases: [(&str, &str, &str, &str); 5] = [
        (
            "sql_vuln.tpl",
            "sql",
            include_str!("golden/sarif_tpl_sql.sarif"),
            "tests/golden/sarif_tpl_sql.sarif",
        ),
        (
            "xss_vuln.tpl",
            "xss",
            include_str!("golden/sarif_tpl_xss.sarif"),
            "tests/golden/sarif_tpl_xss.sarif",
        ),
        (
            "shell_vuln.tpl",
            "shell",
            include_str!("golden/sarif_tpl_shell.sarif"),
            "tests/golden/sarif_tpl_shell.sarif",
        ),
        (
            "path_vuln.tpl",
            "path",
            include_str!("golden/sarif_tpl_path.sarif"),
            "tests/golden/sarif_tpl_path.sarif",
        ),
        (
            "eval_vuln.tpl",
            "eval",
            include_str!("golden/sarif_tpl_eval.sarif"),
            "tests/golden/sarif_tpl_eval.sarif",
        ),
    ];
    for (entry, policy, golden, path) in cases {
        let generated = render::sarif(&[analyze(&vfs, entry, policy)]);
        assert_golden(&generated, golden, path);
    }
}

#[test]
fn mixed_language_app_crosses_the_boundary_and_shares_summaries() {
    let (vfs, _) = mixed_app();
    let config = Config::default();
    let checker = PolicyChecker::new();
    let summaries = SummaryCache::new();

    // PHP → template: taint enters in `index.php`, sinks in the
    // template partial it includes.
    let r1 = analyze_page_policies_cached(&vfs, "index.php", &config, &checker, &summaries)
        .expect("index.php analyzes");
    assert!(!r1.is_verified(), "cross-language taint must reach the sink\n{r1}");
    assert!(
        rule_ids(&r1).contains(&"strtaint/odd-quotes"),
        "template sink reports through the shared policy registry\n{r1}"
    );

    // The PHP-side whitelist sanitizes the same template sink.
    let r2 = analyze_page_policies_cached(&vfs, "index2.php", &config, &checker, &summaries)
        .expect("index2.php analyzes");
    assert!(
        r2.is_verified(),
        "PHP-side sanitizer must verify the template sink\n{r2}"
    );

    // Both pages share `partial.tpl` through one cache: three distinct
    // files lowered, the shared partial served from cache once.
    assert_eq!(
        summaries.misses(),
        3,
        "index.php, index2.php, partial.tpl each lower exactly once"
    );
    assert!(summaries.hits() >= 1, "shared partial must hit the cache");

    // Template → PHP: taint enters in `page.tpl`, sinks in the PHP
    // helper it includes.
    let r3 = analyze_page_policies_cached(&vfs, "page.tpl", &config, &checker, &summaries)
        .expect("page.tpl analyzes");
    assert!(
        !r3.is_verified(),
        "template-origin taint must reach the PHP sink\n{r3}"
    );
    assert_eq!(summaries.misses(), 5, "page.tpl and helper.php lower once each");
}

#[test]
fn pure_php_trees_lower_each_file_exactly_once() {
    // The frontend trait must add zero lowerings on a pure-PHP tree:
    // re-analyzing the whole policy corpus against a warm cache lowers
    // nothing new.
    let vfs = strtaint_corpus::policies::vfs();
    let checker = PolicyChecker::new();
    let summaries = SummaryCache::new();
    let run = |tag: &str| {
        for seed in strtaint_corpus::policies::seeds() {
            let config = config_for(seed.policy);
            analyze_page_policies_cached(&vfs, seed.entry, &config, &checker, &summaries)
                .unwrap_or_else(|e| panic!("{tag}: {}: {e}", seed.entry));
        }
    };
    run("cold");
    let cold_misses = summaries.misses();
    assert!(cold_misses > 0, "cold run lowers the corpus");
    run("warm");
    assert_eq!(
        summaries.misses(),
        cold_misses,
        "warm re-analysis of a pure-PHP tree must not lower a single extra file"
    );
    assert!(summaries.hits() > 0, "warm run is served from the cache");
}

// ---- daemon: mixed workspaces, replay, and invalidation ------------

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "strtaint-frontends-it-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn boot(vfs: &Vfs, config: Config, cache: &PathBuf) -> DaemonState {
    let store = ArtifactStore::open(cache).expect("cache dir opens");
    DaemonState::new(vfs.clone(), config, Some(store))
}

fn request(state: &DaemonState, line: &str) -> Json {
    let handled = handle_line(state, line);
    assert_eq!(
        handled.response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        handled.response.to_string()
    );
    handled.response
}

fn analyze_entries(state: &DaemonState, entries: &[&str]) -> Json {
    let list: Vec<String> = entries.iter().map(|e| format!("\"{e}\"")).collect();
    request(
        state,
        &format!("{{\"cmd\":\"analyze\",\"entries\":[{}]}}", list.join(",")),
    )
}

fn pages_bytes(response: &Json) -> String {
    let mut out = String::new();
    response.get("pages").expect("pages member").write(&mut out);
    out
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_num).unwrap_or(f64::NAN)
}

#[test]
fn mixed_workspace_replays_byte_identical_across_extensions() {
    let (vfs, entries) = mixed_app();
    let cache = temp_cache("mixed-replay");
    let n = entries.len() as f64;

    let first = boot(&vfs, Config::default(), &cache);
    let r1 = analyze_entries(&first, &entries);
    assert_eq!(num(&r1, "computed"), n);
    assert_eq!(num(&r1, "replayed"), 0.0);
    let bytes1 = pages_bytes(&r1);
    drop(first);

    // A restarted daemon over the unchanged mixed tree replays every
    // page — template entries exactly like PHP ones.
    let second = boot(&vfs, Config::default(), &cache);
    let r2 = analyze_entries(&second, &entries);
    assert_eq!(num(&r2, "replayed"), n, "warm start replays .php and .tpl pages");
    assert_eq!(num(&r2, "computed"), 0.0);
    assert_eq!(pages_bytes(&r2), bytes1, "replayed report is byte-identical");
    let _ = fs::remove_dir_all(cache);
}

/// Rewrites every stored verdict artifact through `doctor`, simulating
/// a store written by an older daemon.
fn doctor_artifacts(cache: &PathBuf, doctor: impl Fn(&str) -> String) {
    let dir = cache.join("verdicts");
    let mut doctored = 0;
    for entry in fs::read_dir(&dir).expect("verdicts dir").flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "json") {
            let text = fs::read_to_string(&path).expect("artifact reads");
            fs::write(&path, doctor(&text)).expect("artifact rewrites");
            doctored += 1;
        }
    }
    assert!(doctored > 0, "no artifacts to doctor under {}", dir.display());
}

#[test]
fn pre_frontend_engine_artifacts_are_dropped_not_replayed() {
    let (vfs, entries) = mixed_app();
    let cache = temp_cache("old-engine");
    let n = entries.len() as f64;

    let first = boot(&vfs, Config::default(), &cache);
    let r1 = analyze_entries(&first, &entries);
    assert_eq!(num(&r1, "computed"), n);
    drop(first);

    // Rewind each artifact's engine stamp to the pre-frontend era
    // (`+qc1.rm1`, no `fe1` suffix): the store must refuse them all.
    doctor_artifacts(&cache, |text| text.replace("+qc1.rm1.fe1", "+qc1.rm1"));

    let second = boot(&vfs, Config::default(), &cache);
    let r2 = analyze_entries(&second, &entries);
    assert_eq!(num(&r2, "replayed"), 0.0, "old-engine artifacts never replay");
    assert_eq!(num(&r2, "computed"), n, "every page recomputes cleanly");
    let _ = fs::remove_dir_all(cache);
}

#[test]
fn artifacts_without_frontend_evidence_are_dropped_not_replayed() {
    let (vfs, entries) = mixed_app();
    let cache = temp_cache("no-evidence");
    let n = entries.len() as f64;

    let first = boot(&vfs, Config::default(), &cache);
    analyze_entries(&first, &entries);
    drop(first);

    // Strip the per-dependency frontend evidence — the member a
    // pre-frontend daemon never wrote — leaving the artifact otherwise
    // intact (current engine stamp, valid hashes).
    doctor_artifacts(&cache, |text| {
        let value = json::parse(text.trim_end()).expect("artifact parses");
        let Json::Obj(members) = value else {
            panic!("artifact is an object");
        };
        let stripped: Vec<(String, Json)> = members
            .into_iter()
            .filter(|(k, _)| k != "frontends")
            .collect();
        let mut out = String::new();
        Json::Obj(stripped).write(&mut out);
        out.push('\n');
        out
    });

    let second = boot(&vfs, Config::default(), &cache);
    let r2 = analyze_entries(&second, &entries);
    assert_eq!(
        num(&r2, "replayed"),
        0.0,
        "artifacts lacking frontend evidence never replay"
    );
    assert_eq!(num(&r2, "computed"), n);
    let _ = fs::remove_dir_all(cache);
}

#[test]
fn extension_map_flip_recomputes_only_affected_pages() {
    let (vfs, entries) = mixed_app();
    let cache = temp_cache("ext-flip");
    let n = entries.len() as f64;

    let first = boot(&vfs, Config::default(), &cache);
    let r1 = analyze_entries(&first, &entries);
    assert_eq!(num(&r1, "computed"), n);
    drop(first);

    // Reroute `.tpl` to the PHP frontend. Verdict keys use the
    // frontend-free replay fingerprint, so stored artifacts are still
    // *found* — but the per-dependency evidence check fails for every
    // page that touches a template file, and only for those.
    let mut flipped = Config::default();
    flipped
        .extension_overrides
        .insert("tpl".to_owned(), "php".to_owned());
    let second = boot(&vfs, flipped, &cache);
    let r2 = analyze_entries(&second, &entries);
    assert_eq!(
        num(&r2, "replayed"),
        1.0,
        "the pure-PHP page (about.php) keeps replaying"
    );
    assert_eq!(
        num(&r2, "computed"),
        n - 1.0,
        "pages with template dependencies recompute under the new map"
    );
    let _ = fs::remove_dir_all(cache);
}
