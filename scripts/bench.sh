#!/usr/bin/env sh
# Runs the cold-vs-warm summary-cache benchmark and the cold-vs-prepared
# intersection-engine benchmark (including the warm-daemon replay row),
# and records the medians as JSON, so cache- and engine-effectiveness
# regressions show up in review:
#
#   sh scripts/bench.sh            # writes BENCH_analyze.json
#   sh scripts/bench.sh --pages 1024
#                                  # fleet-scale sweep: overrides the
#                                  # corpus page count via
#                                  # STRTAINT_BENCH_PAGES and writes
#                                  # BENCH_analyze.<N>p.json (the
#                                  # committed baseline is untouched
#                                  # and the stale-name check is
#                                  # skipped, since the name set is
#                                  # expected to differ)
#
# Fails loudly (exit 1) when the bench-name set produced by the bench
# sources disagrees with the set recorded in the committed
# BENCH_analyze.json — that means someone added/renamed a bench without
# regenerating the results file. The file is still rewritten, so
# committing the regenerated output clears the failure.
#
# Fully offline: the criterion harness is the in-tree shim under
# vendor/criterion (median wall-clock over a fixed sample count).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_analyze.json
pages=""
while [ $# -gt 0 ]; do
    case "$1" in
        --pages)
            shift
            pages="${1:?--pages needs a value}"
            ;;
        *)
            echo "usage: sh scripts/bench.sh [--pages N]" >&2
            exit 2
            ;;
    esac
    shift
done
if [ -n "$pages" ]; then
    STRTAINT_BENCH_PAGES="$pages"
    export STRTAINT_BENCH_PAGES
    out="BENCH_analyze.${pages}p.json"
fi

old_names=""
if [ -z "$pages" ] && [ -f "$out" ]; then
    old_names=$(sed -n 's/.*"name": "\([^"]*\)".*/\1/p' "$out" | sort)
fi

raw=$(
    cargo bench -p strtaint-bench --bench analyze 2>/dev/null | grep '^bench '
    cargo bench -p strtaint-bench --bench check 2>/dev/null | grep '^bench '
    # Per-phase time breakdown from the structured tracing layer
    # (strtaint-obs): one row per pipeline phase, measured over a
    # corpus run, plus a Chrome-trace artifact in target/.
    cargo bench -p strtaint-bench --bench trace_phases 2>/dev/null | grep '^bench '
)
echo "$raw"

new_names=$(echo "$raw" | awk '{print $2}' | sort)

{
    printf '{\n  "bench": "analyze+check",\n  "results": [\n'
    first=1
    echo "$raw" | while IFS= read -r line; do
        # shellcheck disable=SC2086  # intentional word splitting
        set -- $line
        name=$2
        median=$4
        if [ "$first" -eq 1 ]; then
            first=0
        else
            printf ',\n'
        fi
        printf '    {"name": "%s", "median": "%s"}' "$name" "$median"
    done
    printf '\n  ]\n}\n'
} > "$out"

echo "wrote $out"

if [ -n "$old_names" ] && [ "$old_names" != "$new_names" ]; then
    echo "error: bench-name set changed — the committed $out was stale." >&2
    echo "       previously recorded:" >&2
    echo "$old_names" | sed 's/^/         /' >&2
    echo "       produced by the bench sources now:" >&2
    echo "$new_names" | sed 's/^/         /' >&2
    echo "       $out has been regenerated; commit the update." >&2
    exit 1
fi
