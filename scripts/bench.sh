#!/usr/bin/env sh
# Runs the cold-vs-warm summary-cache benchmark and the cold-vs-prepared
# intersection-engine benchmark, and records the medians as JSON, so
# cache- and engine-effectiveness regressions show up in review:
#
#   sh scripts/bench.sh            # writes BENCH_analyze.json
#
# Fully offline: the criterion harness is the in-tree shim under
# vendor/criterion (median wall-clock over a fixed sample count).
set -eu

cd "$(dirname "$0")/.."

out=BENCH_analyze.json
raw=$(
    cargo bench -p strtaint-bench --bench analyze 2>/dev/null | grep '^bench '
    cargo bench -p strtaint-bench --bench check 2>/dev/null | grep '^bench '
)
echo "$raw"

{
    printf '{\n  "bench": "analyze+check",\n  "results": [\n'
    first=1
    echo "$raw" | while IFS= read -r line; do
        # shellcheck disable=SC2086  # intentional word splitting
        set -- $line
        name=$2
        median=$4
        if [ "$first" -eq 1 ]; then
            first=0
        else
            printf ',\n'
        fi
        printf '    {"name": "%s", "median": "%s"}' "$name" "$median"
    done
    printf '\n  ]\n}\n'
} > "$out"

echo "wrote $out"
