#!/usr/bin/env sh
# Tier-1 gate: the checks every change must keep green, runnable fully
# offline (all dev-dependencies are vendored in-tree under vendor/).
#
#   sh scripts/tier1.sh
#
# Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> module size lint (analysis + grammar + daemon + obs + policy + checker + remedy + tpl src <= 900 lines/file)"
# The analysis crate is split into pipeline stages on purpose
# (ir/lower/summary/emit); the grammar crate likewise separates the
# naive reference engine (intersect) from the prepared engine
# (prepared); the daemon separates json/store/verdict/state/protocol/
# server; the obs crate separates span collection from the metrics
# registry and the trace writer; the policy crate separates the kind
# namespace from the registry; the checker separates the check
# cascade from the engine facade and the optimized-path caches
# (qcache/pmemo/prefilter); the remedy crate separates fix planning
# from plan application and profile export; the template frontend
# separates lexer/parser/ast. A file regrowing past 900 lines means a
# stage is reabsorbing its neighbours.
for f in $(find crates/analysis/src crates/grammar/src crates/daemon/src crates/obs/src crates/policy/src crates/checker/src crates/remedy/src crates/tpl/src -name '*.rs'); do
    lines=$(wc -l < "$f")
    if [ "$lines" -gt 900 ]; then
        echo "FAIL: $f has $lines lines (limit 900)" >&2
        exit 1
    fi
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> daemon round-trip (restart replay + corrupt-cache recovery)"
cargo test -q -p strtaint-daemon
cargo test -q --test daemon

echo "tier-1 OK"
