#!/usr/bin/env sh
# Tier-1 gate: the checks every change must keep green, runnable fully
# offline (all dev-dependencies are vendored in-tree under vendor/).
#
#   sh scripts/tier1.sh
#
# Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "tier-1 OK"
