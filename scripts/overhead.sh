#!/usr/bin/env sh
# Tracing-overhead smoke check: a warm corpus run with aggregate
# tracing (the --stats configuration) must stay within 5% of the same
# run with tracing fully off.
#
#   sh scripts/overhead.sh
#
# The measurement itself lives in tests/obs_invariance.rs
# (`aggregate_tracing_overhead_is_within_5_percent`), marked
# `#[ignore]` so the ordinary test run — often on a noisy laptop —
# never flakes on it. This script runs it in release mode, where the
# 5% margin is meaningful; CI gives it a dedicated quiet job.
set -eu

cd "$(dirname "$0")/.."

# Name the test explicitly: the binary also carries an `--ignored`
# diagnostic (overhead_null_experiment) that must not run concurrently
# with the measurement on a small machine.
cargo test --release --test obs_invariance aggregate_tracing_overhead -- --ignored --nocapture

echo "overhead OK (aggregate tracing within 5% of disabled)"
