//! A hermetic, deterministic stand-in for the `proptest` crate.
//!
//! The workspace's tier-1 gate (`cargo build --release && cargo test -q`)
//! must pass with **no network access**, so registry dependencies are
//! replaced by in-tree shims. This crate implements the subset of the
//! proptest API that the workspace's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter`;
//! - [`Just`], tuple strategies, [`collection::vec`], `bool::ANY`,
//!   integer ranges, and `&str` regex-subset string patterns
//!   (`"[a-z]{1,8}"`-style: concatenations of character classes with
//!   bounded repetition);
//! - the [`proptest!`], [`prop_oneof!`], and `prop_assert*` macros;
//! - [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design: generation is fully
//! deterministic (seeded from the test name and case index, so CI
//! failures reproduce exactly), and there is **no shrinking** — a
//! failing case panics with the assertion's own message.

use std::ops::Range;

pub mod strategy;

pub use strategy::{Just, Strategy, Union};

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 generator; quality is ample for test-case
/// diversity and the determinism makes failures reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a hash of the test name, mixed into per-case seeds so distinct
/// properties explore distinct sequences.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h.wrapping_add(0x51_7cc1_b727_220a_95u64.wrapping_mul(case as u64 + 1))
}

/// Generators for `bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Arbitrary booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }
}

/// Generators for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `elem` with length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length drawn from `size` (half-open, like the
    /// `Range` it is written as).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// String generation from the regex subset used as proptest patterns.
pub mod string {
    use super::TestRng;

    enum Piece {
        /// Allowed bytes, repetition min..=max.
        Class(Vec<u8>, usize, usize),
    }

    /// Compiles a pattern like `"[a-z_][a-z0-9_]{0,8}"` into pieces.
    ///
    /// Supported: character classes (ranges, `^` negation over printable
    /// ASCII + `\n`, `\\`/`\n`/`\t`/`\r` escapes, literal `-` at the
    /// edges), bare literal characters, and `{n}` / `{m,n}` repetition.
    fn compile(pattern: &str) -> Vec<Piece> {
        let bytes = pattern.as_bytes();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < bytes.len() {
            let set: Vec<u8> = match bytes[i] {
                b'[' => {
                    i += 1;
                    let mut negate = false;
                    if i < bytes.len() && bytes[i] == b'^' {
                        negate = true;
                        i += 1;
                    }
                    let mut members: Vec<u8> = Vec::new();
                    while i < bytes.len() && bytes[i] != b']' {
                        let c = match bytes[i] {
                            b'\\' => {
                                i += 1;
                                match bytes.get(i) {
                                    Some(b'n') => b'\n',
                                    Some(b't') => b'\t',
                                    Some(b'r') => b'\r',
                                    Some(&c) => c,
                                    None => panic!("dangling escape in {pattern:?}"),
                                }
                            }
                            c => c,
                        };
                        i += 1;
                        // Range `c-d` when `-` is not the class terminator.
                        if i + 1 < bytes.len() && bytes[i] == b'-' && bytes[i + 1] != b']' {
                            i += 1;
                            let hi = match bytes[i] {
                                b'\\' => {
                                    i += 1;
                                    bytes[i]
                                }
                                c => c,
                            };
                            i += 1;
                            members.extend(c..=hi);
                        } else {
                            members.push(c);
                        }
                    }
                    assert!(
                        i < bytes.len(),
                        "unterminated character class in {pattern:?}"
                    );
                    i += 1; // ']'
                    if negate {
                        (0x20u8..=0x7e)
                            .chain(std::iter::once(b'\n'))
                            .filter(|b| !members.contains(b))
                            .collect()
                    } else {
                        members
                    }
                }
                b'\\' => {
                    i += 1;
                    let c = match bytes[i] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        c => c,
                    };
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            // Optional repetition.
            let (min, max) = if i < bytes.len() && bytes[i] == b'{' {
                let close = bytes[i..]
                    .iter()
                    .position(|&b| b == b'}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
                let body = std::str::from_utf8(&bytes[i + 1..close])
                    .expect("repetition bounds are ASCII");
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound is a number"),
                        hi.trim().parse().expect("repetition upper bound is a number"),
                    ),
                    None => {
                        let n: usize =
                            body.trim().parse().expect("repetition count is a number");
                        (n, n)
                    }
                }
            } else if i < bytes.len() && bytes[i] == b'*' {
                i += 1;
                (0, 8)
            } else if i < bytes.len() && bytes[i] == b'+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            pieces.push(Piece::Class(set, min, max));
        }
        pieces
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = Vec::new();
        for Piece::Class(set, min, max) in compile(pattern) {
            let len = min + rng.below(max - min + 1);
            for _ in 0..len {
                out.push(set[rng.below(set.len())]);
            }
        }
        String::from_utf8(out).expect("patterns generate ASCII")
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as usize) as u32
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption fails.
///
/// The shim has no case-rejection bookkeeping; an unmet assumption just
/// returns from the case body early via `return`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Picks uniformly among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::arm($arm)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Strategies are built once; generation draws fresh values
            // per case from a per-case deterministic seed.
            for __case in 0..config.cases {
                let mut __rng =
                    $crate::TestRng::new($crate::seed_for(stringify!($name), __case));
                (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                })();
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_shape() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = crate::string::generate("[a-z_][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s}");
            let first = s.as_bytes()[0];
            assert!(first == b'_' || first.is_ascii_lowercase());
        }
        for _ in 0..200 {
            let s = crate::string::generate("[ -~]{0,32}", &mut rng);
            assert!(s.len() <= 32);
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(crate::seed_for("x", 3));
        let mut b = crate::TestRng::new(crate::seed_for("x", 3));
        let s = "[a-zA-Z0-9 _.,:!-]{0,20}";
        assert_eq!(
            crate::string::generate(s, &mut a),
            crate::string::generate(s, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro front end: tuples, oneof, filters, flat_map.
        #[test]
        fn macro_round_trip(
            (n, w) in (1usize..5, "[ab]{1,4}"),
            pick in prop_oneof![Just(1u32), Just(2), Just(3)],
            v in prop::collection::vec(0usize..10, 1..4),
            f in "[0-9]{1,3}".prop_filter("nonempty", |s| !s.is_empty()),
            d in (0usize..3).prop_flat_map(|k| prop::collection::vec(Just(k), 1..3)),
            b in prop::bool::ANY,
        ) {
            prop_assert!(n >= 1 && n < 5);
            prop_assert!(!w.is_empty() && w.len() <= 4);
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(!v.is_empty() && v.len() <= 3);
            prop_assert!(f.bytes().all(|c| c.is_ascii_digit()));
            prop_assert!(!d.is_empty());
            prop_assert_eq!(b || !b, true);
            prop_assert_ne!(d.len(), 0);
        }
    }
}
