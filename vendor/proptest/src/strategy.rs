//! The [`Strategy`] trait and its combinators.

use crate::TestRng;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `keep`, retrying (bounded) generation.
    fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            keep,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 10000 candidates", self.whence);
    }
}

/// Uniform choice among boxed strategies of one value type
/// (the expansion of [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be nonempty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Boxes one arm (helper for the macro).
    pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
