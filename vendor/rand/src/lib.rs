//! A hermetic, deterministic stand-in for the `rand` crate.
//!
//! The workspace's tier-1 gate must pass offline, so registry
//! dependencies are replaced by in-tree shims. Only the API surface the
//! workspace uses is provided: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_bool`]. The generator is splitmix64 — statistically fine
//! for corpus synthesis, and deterministic across platforms.

use std::ops::Range;

/// Types that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling methods the workspace uses.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `usize` in the half-open `range`.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + (self.next_u64() % (range.end - range.start) as u64) as usize
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(3..17);
            assert_eq!(x, b.gen_range(3..17));
            assert!((3..17).contains(&x));
        }
    }
}
