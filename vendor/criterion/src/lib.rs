//! A hermetic, minimal stand-in for the `criterion` crate.
//!
//! The workspace's tier-1 gate must pass offline, so registry
//! dependencies are replaced by in-tree shims. This harness covers only
//! the API surface the `strtaint-bench` crate uses: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `bench_with_input` / `bench_function` / `finish`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros. It runs each benchmark a few times and prints the median
//! wall-clock time — enough to compare runs by hand, with no stats,
//! plotting, or CLI parsing.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, 10, &mut f);
        self
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness times a fixed
    /// number of samples rather than a target duration.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark that closes over `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; `iter` times the hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// A benchmark label, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

fn run_bench<F>(label: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // `STRTAINT_BENCH_ONLY=<substring>` runs just the matching rows —
    // for measuring one new/changed row without paying for the whole
    // suite. `scripts/bench.sh` never sets it, so full regeneration
    // (and its stale-name check) is unaffected.
    if let Ok(only) = std::env::var("STRTAINT_BENCH_ONLY") {
        if !label.contains(&only) {
            return;
        }
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort();
    let median = times[times.len() / 2];
    println!("bench {label:<60} median {median:>12.3?} ({samples} samples)");
}

/// Prevents the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench-harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(1));
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("add", 2), &2u32, |b, n| {
            b.iter(|| {
                ran += 1;
                n + 1
            })
        });
        group.bench_function("plain", |b| b.iter(|| 41 + 1));
        group.finish();
        drop(group);
        c.bench_function("top", |b| b.iter(|| black_box(7) * 6));
        assert_eq!(ran, 3);
    }
}
