//! Umbrella crate for the **strtaint** workspace: hosts the
//! cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). The library API lives in the [`strtaint`] crate;
//! see the workspace README for the tour.

pub use strtaint;
