//! The on-disk artifact store (`.strtaint-cache/`).
//!
//! The store persists what the daemon would otherwise lose on exit:
//! per-page **check verdicts** (so a cold start over an unchanged tree
//! replays results instead of re-running Bar-Hillel queries) and the
//! **file manifest** (the `path → content hash` index of the tree the
//! verdicts were computed against, which doubles as the persisted view
//! of the summary-cache key set — the IR summaries themselves are
//! re-derived in milliseconds and are deliberately *not* serialized;
//! see DESIGN.md §5d).
//!
//! Three invariants, in order of importance:
//!
//! 1. **Advisory, never authoritative.** Every load re-validates:
//!    format version, engine version, config fingerprint, and content
//!    hashes must all match the live state or the entry is dropped and
//!    the analysis re-runs. A corrupt or stale cache can cost time,
//!    never change a verdict.
//! 2. **Atomic writes.** Artifacts are written to a unique temp file
//!    in the same directory and `rename`d into place, so a crash
//!    mid-write leaves either the old artifact or none — never a torn
//!    one (and a torn one would fail validation anyway).
//! 3. **Versioned.** [`FORMAT_VERSION`] gates the file syntax; the
//!    engine version string gates everything semantic (grammar
//!    construction, checker logic, hasher identity). Either mismatch
//!    invalidates silently.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use crate::json::{self, Json};

/// Artifact file-format version. Bump on any change to the JSON shape.
pub const FORMAT_VERSION: f64 = 1.0;

/// The engine version stamped into artifacts: grammar construction,
/// checking logic, and the (release-dependent) hasher all live in this
/// workspace, so the package version is the right granularity. The
/// string is owned by the checker crate (see
/// [`strtaint_checker::engine_version`]) because every marker so far
/// records a checking-semantics change: `+qc1` for canonical
/// (length, lexicographic)-minimal witnesses, `.rm1` for the skeleton
/// evidence that `fix`/`profile` consume. Artifacts rendered by older
/// engines must be recomputed rather than replayed.
pub fn engine_version() -> &'static str {
    strtaint_checker::engine_version()
}

/// Counters describing the store's behavior this process lifetime,
/// surfaced by the daemon's `status` request.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Verdict artifacts successfully loaded and validated.
    pub loaded: AtomicU64,
    /// Verdict artifacts written.
    pub stored: AtomicU64,
    /// Artifacts dropped: unreadable, unparsable, version-mismatched,
    /// or failing any validation check.
    pub dropped: AtomicU64,
    /// Stale `*.tmp.*` files garbage-collected at open (litter from
    /// daemons that crashed mid-write).
    pub temp_collected: AtomicU64,
}

impl StoreStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fault-injection hooks for the soak/fault suite: simulates torn
/// artifact reads without touching the disk format. Inert (all zero)
/// in production.
#[derive(Debug, Default)]
pub struct StoreFault {
    corrupt_reads: AtomicU64,
}

impl StoreFault {
    /// Arms the next `n` verdict reads to behave as if the artifact on
    /// disk were torn: the read is treated as corrupt, the file is
    /// dropped, and the caller sees a miss (forcing a clean recompute —
    /// exactly the contract a real torn artifact must hit).
    pub fn arm_corrupt_reads(&self, n: u64) {
        self.corrupt_reads.store(n, Ordering::SeqCst);
    }

    /// Consumes one armed corruption; `true` when this read must fail.
    fn take_corrupt(&self) -> bool {
        let mut current = self.corrupt_reads.load(Ordering::SeqCst);
        while current > 0 {
            match self.corrupt_reads.compare_exchange(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
        false
    }
}

/// How long a temp file must sit untouched before open-time GC removes
/// it: long enough that a concurrent daemon mid-write is never raced,
/// short enough that crash litter does not accumulate across runs.
const TEMP_GRACE: Duration = Duration::from_secs(60);

/// A directory of validated, atomically-written JSON artifacts.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    /// Load/store/drop counters (see [`StoreStats`]).
    pub stats: StoreStats,
    /// Fault-injection hooks (inert in production).
    pub fault: StoreFault,
    /// Distinguishes temp files written by concurrent daemons on the
    /// same cache directory.
    salt: u64,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created — the daemon then runs without persistence rather than
    /// failing.
    pub fn open(root: &Path) -> io::Result<ArtifactStore> {
        fs::create_dir_all(root.join("verdicts"))?;
        let salt = std::process::id() as u64;
        let store = ArtifactStore {
            root: root.to_path_buf(),
            stats: StoreStats::default(),
            fault: StoreFault::default(),
            salt,
        };
        // Crashed daemons leave `*.tmp.*` files behind forever (the
        // rename never happened). Collect anything old enough that no
        // live writer can still own it.
        let cutoff = SystemTime::now()
            .checked_sub(TEMP_GRACE)
            .unwrap_or(SystemTime::UNIX_EPOCH);
        store.gc_stale_temp_files(cutoff);
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Removes temp files (`*.tmp.<salt>` names from [`write_atomic`])
    /// last modified before `cutoff`, in the store root and the
    /// verdicts directory. Returns how many were collected. Called from
    /// [`ArtifactStore::open`] with a grace window; public so tests can
    /// drive it with an explicit cutoff.
    ///
    /// [`write_atomic`]: ArtifactStore::write_atomic
    pub fn gc_stale_temp_files(&self, cutoff: SystemTime) -> usize {
        let mut collected = 0;
        for dir in [self.root.clone(), self.root.join("verdicts")] {
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let name = entry.file_name();
                let is_temp = name
                    .to_str()
                    .is_some_and(|n| n.contains(".tmp."));
                if !is_temp {
                    continue;
                }
                let stale = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .map(|mtime| mtime < cutoff)
                    .unwrap_or(false);
                if stale && fs::remove_file(entry.path()).is_ok() {
                    collected += 1;
                    StoreStats::bump(&self.stats.temp_collected);
                }
            }
        }
        collected
    }

    fn verdict_path(&self, key: u64) -> PathBuf {
        self.root.join("verdicts").join(format!("{}.json", json::hex64(key)))
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// Atomically writes `value` to `path` (same-directory temp +
    /// rename). Failures are reported, not fatal: the store is a cache.
    fn write_atomic(&self, path: &Path, value: &Json) -> io::Result<()> {
        let mut body = String::new();
        value.write(&mut body);
        body.push('\n');
        let tmp = path.with_extension(format!("tmp.{}", self.salt));
        fs::write(&tmp, body.as_bytes())?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Never leave temp litter behind a failed rename.
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Reads and parses an artifact file, enforcing the format-version
    /// and engine-version headers. Any failure drops the artifact file
    /// (best-effort) and returns `None` — a miss, never an error.
    fn load_validated(&self, path: &Path) -> Option<Json> {
        let bytes = fs::read(path).ok()?;
        let parsed = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|text| json::parse(text.trim_end()).ok());
        let value = match parsed {
            Some(v) => v,
            None => {
                self.drop_artifact(path);
                return None;
            }
        };
        let format_ok = value.get("format").and_then(Json::as_num) == Some(FORMAT_VERSION);
        let engine_ok =
            value.get("engine").and_then(Json::as_str) == Some(engine_version());
        if !format_ok || !engine_ok {
            self.drop_artifact(path);
            return None;
        }
        Some(value)
    }

    /// Removes an invalid artifact so it is never re-examined.
    fn drop_artifact(&self, path: &Path) {
        StoreStats::bump(&self.stats.dropped);
        let _ = fs::remove_file(path);
    }

    /// Wraps an artifact body with the version headers common to every
    /// artifact kind.
    fn with_headers(kind: &str, body: Vec<(String, Json)>) -> Json {
        let mut members = vec![
            ("format".to_owned(), Json::Num(FORMAT_VERSION)),
            ("engine".to_owned(), Json::Str(engine_version().to_owned())),
            ("kind".to_owned(), Json::Str(kind.to_owned())),
        ];
        members.extend(body);
        Json::Obj(members)
    }

    /// Persists a verdict artifact under `key` (the verdict cache key
    /// hash). `body` holds the kind-specific members.
    pub fn put_verdict(&self, key: u64, body: Vec<(String, Json)>) {
        let value = Self::with_headers("verdict", body);
        if self.write_atomic(&self.verdict_path(key), &value).is_ok() {
            StoreStats::bump(&self.stats.stored);
        }
    }

    /// Loads the verdict artifact stored under `key`, if present and
    /// well-formed (headers validated; semantic validation — hashes,
    /// fingerprints — is the caller's job since it needs live state).
    pub fn get_verdict(&self, key: u64) -> Option<Json> {
        let path = self.verdict_path(key);
        if !path.exists() {
            return None;
        }
        if self.fault.take_corrupt() {
            // Injected torn read: same path a real corrupt artifact
            // takes — drop it and report a miss.
            self.drop_artifact(&path);
            return None;
        }
        let v = self.load_validated(&path)?;
        if v.get("kind").and_then(Json::as_str) != Some("verdict") {
            self.drop_artifact(&path);
            return None;
        }
        StoreStats::bump(&self.stats.loaded);
        Some(v)
    }

    /// Drops a stored verdict (used when semantic validation fails: the
    /// artifact is well-formed but describes a tree or config we no
    /// longer have).
    pub fn invalidate_verdict(&self, key: u64) {
        let path = self.verdict_path(key);
        if path.exists() {
            self.drop_artifact(&path);
        }
    }

    /// Persists the file manifest: the `(path, content hash)` index of
    /// the tree, i.e. the summary-cache key set at save time.
    pub fn put_manifest(&self, files: &[(String, u64)], config_fp: u64) {
        let entries: Vec<Json> = files
            .iter()
            .map(|(path, hash)| {
                Json::obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("hash", Json::Str(json::hex64(*hash))),
                ])
            })
            .collect();
        let value = Self::with_headers(
            "manifest",
            vec![
                ("config_fp".to_owned(), Json::Str(json::hex64(config_fp))),
                ("files".to_owned(), Json::Arr(entries)),
            ],
        );
        let _ = self.write_atomic(&self.manifest_path(), &value);
    }

    /// Loads the file manifest, if present and well-formed: the
    /// `(path, hash)` list plus the config fingerprint it was saved
    /// under.
    pub fn get_manifest(&self) -> Option<(Vec<(String, u64)>, u64)> {
        let path = self.manifest_path();
        if !path.exists() {
            return None;
        }
        let v = self.load_validated(&path)?;
        let valid = (|| {
            if v.get("kind")?.as_str()? != "manifest" {
                return None;
            }
            let config_fp = json::parse_hex64(v.get("config_fp")?.as_str()?)?;
            let mut files = Vec::new();
            for entry in v.get("files")?.as_arr()? {
                let path = entry.get("path")?.as_str()?.to_owned();
                let hash = json::parse_hex64(entry.get("hash")?.as_str()?)?;
                files.push((path, hash));
            }
            Some((files, config_fp))
        })();
        if valid.is_none() {
            self.drop_artifact(&path);
        }
        valid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, ArtifactStore) {
        let dir = std::env::temp_dir().join(format!(
            "strtaint-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).expect("temp store opens");
        (dir, store)
    }

    #[test]
    fn verdict_roundtrip() {
        let (dir, store) = temp_store("roundtrip");
        store.put_verdict(
            7,
            vec![("entry".to_owned(), Json::Str("a.php".to_owned()))],
        );
        let v = store.get_verdict(7).expect("stored verdict loads");
        assert_eq!(v.get("entry").and_then(Json::as_str), Some("a.php"));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("verdict"));
        assert!(store.get_verdict(8).is_none(), "missing key is a miss");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_artifact_is_dropped_not_trusted() {
        let (dir, store) = temp_store("corrupt");
        store.put_verdict(1, vec![]);
        let path = dir.join("verdicts").join(format!("{}.json", json::hex64(1)));
        fs::write(&path, b"{\"format\": 1, truncated garba").expect("write garbage");
        assert!(store.get_verdict(1).is_none());
        assert!(!path.exists(), "corrupt artifact removed");
        assert_eq!(store.stats.dropped.load(Ordering::Relaxed), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn version_mismatch_invalidates() {
        let (dir, store) = temp_store("version");
        store.put_verdict(2, vec![]);
        let path = dir.join("verdicts").join(format!("{}.json", json::hex64(2)));
        // Rewrite with a future format version: must be dropped.
        fs::write(
            &path,
            format!(
                "{{\"format\":99,\"engine\":\"{}\",\"kind\":\"verdict\"}}",
                engine_version()
            ),
        )
        .expect("write");
        assert!(store.get_verdict(2).is_none());
        // And with a foreign engine version.
        store.put_verdict(3, vec![]);
        let path3 = dir.join("verdicts").join(format!("{}.json", json::hex64(3)));
        fs::write(
            &path3,
            "{\"format\":1,\"engine\":\"strtaint-99.0.0\",\"kind\":\"verdict\"}",
        )
        .expect("write");
        assert!(store.get_verdict(3).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stale_temp_files_are_collected_fresh_ones_kept() {
        let (dir, store) = temp_store("tempgc");
        // Litter from a "crashed" writer, in both store directories.
        let stale_root = dir.join("manifest.tmp.99999");
        let stale_verdict = dir.join("verdicts").join("abcd.tmp.99999");
        fs::write(&stale_root, b"torn").expect("write");
        fs::write(&stale_verdict, b"torn").expect("write");
        // A real artifact and a non-temp file must survive any cutoff.
        store.put_verdict(5, vec![]);
        let keep = dir.join("verdicts").join(format!("{}.json", json::hex64(5)));

        // Future cutoff: everything .tmp.* is "stale".
        let cutoff = SystemTime::now() + Duration::from_secs(3600);
        let collected = store.gc_stale_temp_files(cutoff);
        assert_eq!(collected, 2);
        assert!(!stale_root.exists() && !stale_verdict.exists());
        assert!(keep.exists(), "real artifacts untouched");
        assert_eq!(store.stats.temp_collected.load(Ordering::Relaxed), 2);

        // Freshly written temp files survive the open-time grace
        // window (a concurrent writer may still own them).
        fs::write(&stale_root, b"in-flight").expect("write");
        let reopened = ArtifactStore::open(&dir).expect("reopen");
        assert!(stale_root.exists(), "fresh temp file kept at open");
        assert_eq!(reopened.stats.temp_collected.load(Ordering::Relaxed), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn injected_corrupt_read_degrades_to_a_miss() {
        let (dir, store) = temp_store("fault");
        store.put_verdict(9, vec![]);
        store.fault.arm_corrupt_reads(1);
        assert!(
            store.get_verdict(9).is_none(),
            "injected torn read is a miss, never a bad verdict"
        );
        assert_eq!(store.stats.dropped.load(Ordering::Relaxed), 1);
        // The poisoned artifact is gone; the store keeps working.
        store.put_verdict(9, vec![]);
        assert!(store.get_verdict(9).is_some(), "recovers after recompute");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn manifest_roundtrip() {
        let (dir, store) = temp_store("manifest");
        assert!(store.get_manifest().is_none());
        store.put_manifest(&[("a.php".to_owned(), 42), ("b.php".to_owned(), 7)], 99);
        let (files, fp) = store.get_manifest().expect("manifest loads");
        assert_eq!(fp, 99);
        assert_eq!(files, vec![("a.php".to_owned(), 42), ("b.php".to_owned(), 7)]);
        let _ = fs::remove_dir_all(dir);
    }
}
