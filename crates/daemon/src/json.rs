//! A minimal JSON value type with a parser and a deterministic writer.
//!
//! The daemon speaks newline-delimited JSON and persists its verdict
//! artifacts as JSON files; nothing else in the workspace needs a JSON
//! *reader*, and the tier-1 gate forbids new external dependencies, so
//! this module carries its own ~RFC 8259 implementation.
//!
//! Two properties matter more than speed here:
//!
//! - **Determinism** — [`Json::write`] is a pure function of the value:
//!   object member order is preserved (members are a `Vec`, not a map)
//!   and numbers print via `f64`'s shortest-round-trip `Display`. That
//!   makes `write ∘ parse ∘ write = write`, which is what lets a
//!   replayed verdict (parsed from disk, re-serialized) be
//!   byte-identical to the freshly computed response it was saved from.
//! - **Total parsing** — [`parse`] never panics on malformed input; a
//!   corrupt artifact or a garbage request line becomes an `Err`, which
//!   the store treats as a cache miss and the server as a protocol
//!   error reply.

use std::fmt;

/// A JSON value. Object members keep insertion order so serialization
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Integers beyond 2^53 lose precision — encode
    /// hashes as hex *strings*, never as numbers.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Member lookup (first match) on an object; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // JSON has no NaN/Infinity; degrade to null rather
                // than emit an unparsable token.
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable cause.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input
/// (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns [`JsonError`] on any syntax error, non-UTF-8 escape, or
/// trailing garbage. Nesting is capped (defense against a hostile
/// request recursing the parser off the stack).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX\uXXXX.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos after the last digit;
                            // the outer increment below is skipped.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    match s.chars().next() {
                        Some(c) if (c as u32) < 0x20 => {
                            return Err(self.err("unescaped control character"))
                        }
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = &self.bytes[self.pos..self.pos + 4];
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// Formats a `u64` (content hashes, fingerprints) as the fixed-width
/// hex string the artifact format uses — never a JSON number, which
/// would silently round above 2^53.
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Inverse of [`hex64`].
pub fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> String {
        parse(src).expect("parses").to_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip(" false "), "false");
        assert_eq!(roundtrip("3"), "3");
        assert_eq!(roundtrip("-2.5"), "-2.5");
        assert_eq!(roundtrip("\"a\\nb\""), "\"a\\nb\"");
    }

    #[test]
    fn containers_preserve_order() {
        let src = r#"{"b":1,"a":[true,null,{"x":"y"}]}"#;
        assert_eq!(roundtrip(src), src);
    }

    #[test]
    fn writer_is_a_fixpoint_of_parse() {
        // write ∘ parse ∘ write = write, including float formatting.
        let v = Json::obj(vec![
            ("ms", Json::Num(23.498)),
            ("count", Json::Num(30.0)),
            ("tiny", Json::Num(0.1 + 0.2)),
            ("s", Json::Str("π \"quote\" \u{1}".into())),
        ]);
        let once = v.to_string();
        let twice = parse(&once).expect("own output parses").to_string();
        assert_eq!(once, twice);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(roundtrip(r#""\u00e9""#), "\"é\"");
        // Surrogate pair → astral char.
        assert_eq!(roundtrip(r#""\ud83d\ude00""#), "\"😀\"");
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "nul", "01x", "\"\u{1}\"", "1 2",
            "{\"a\":}", "[1,]", "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_is_capped() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn hex64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_0123_4567] {
            assert_eq!(parse_hex64(&hex64(v)), Some(v));
        }
        assert_eq!(parse_hex64("xyz"), None);
        assert_eq!(parse_hex64("123"), None);
    }
}
