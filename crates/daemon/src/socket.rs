//! The Unix-domain-socket transport for `strtaint serve`: many
//! concurrent clients over one [`ServerState`].
//!
//! Connections are thread-per-connection *readers*; request execution
//! is bounded by the server's worker pool, so a thousand connections
//! contend for `--workers` execution slots, never a thousand threads
//! of engine work. Lines are framed manually over a timed-out reader
//! so each connection thread can observe the drain deadline even while
//! idle, a partial (unterminated) final line still gets a response,
//! and a line exceeding the protocol cap closes the connection with a
//! structured error instead of buffering without bound.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::pool::{ExpireReason, SubmitError};
use crate::server::{
    deadline_response, elapsed_us, error_response, overloaded_response,
    shutting_down_response, Routed, ServerState,
};

/// How often a connection wakes from a blocking read to check the
/// drain deadline.
const CONN_POLL: Duration = Duration::from_millis(100);

/// Serves connections on a Unix-domain socket until any client sends
/// `shutdown`. Connections are thread-per-connection *readers*; request
/// execution is bounded by the server's worker pool, so a thousand
/// connections contend for `--workers` execution slots, never a
/// thousand threads of engine work.
///
/// Shutdown drains within the server's drain budget: queued requests
/// run if they can, and everything still pending past the deadline is
/// answered with a structured `shutting_down` error.
pub fn serve_socket(server: &ServerState, socket_path: &Path) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)?;
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match conn {
                Ok(c) => c,
                Err(_) => continue,
            };
            let shutdown = &shutdown;
            scope.spawn(move || {
                if serve_conn(server, conn) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so the scope can close.
                    let _ = UnixStream::connect(socket_path);
                }
            });
        }
        // Stop executing queued work past the drain budget; pending
        // requests are flushed with `shutting_down` errors (their
        // connection threads forward those and then exit).
        server.drain_pool();
    });

    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

/// Serves one socket connection; returns `true` when this client
/// requested shutdown.
///
/// Lines are framed manually over a timed-out reader so the thread can
/// observe the drain deadline even while idle, a partial (unterminated)
/// final line still gets a response, and a line exceeding the protocol
/// cap closes the connection with a structured error instead of
/// buffering without bound.
fn serve_conn(server: &ServerState, conn: std::os::unix::net::UnixStream) -> bool {
    use crate::protocol::MAX_LINE_BYTES;
    use std::io::Read;

    let _ = conn.set_read_timeout(Some(CONN_POLL));
    let mut conn = conn;
    let mut buf: Vec<u8> = Vec::new();
    let mut scanned = 0usize;
    let mut chunk = [0u8; 16 * 1024];
    let mut eof = false;

    loop {
        // Drain every complete line currently buffered.
        while let Some(nl) = buf[scanned..].iter().position(|&b| b == b'\n') {
            let line_end = scanned + nl;
            let line: Vec<u8> = buf.drain(..=line_end).collect();
            scanned = 0;
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            match answer_line(server, &line, &mut conn) {
                LineOutcome::Continue => {}
                LineOutcome::Shutdown => return true,
                LineOutcome::Close => return false,
            }
        }
        scanned = buf.len();

        if eof {
            // Unterminated trailing line: answer it, then close.
            if !buf.is_empty() {
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                return matches!(
                    answer_line(server, &line, &mut conn),
                    LineOutcome::Shutdown
                );
            }
            return false;
        }

        // A hostile client streaming one endless line: reject and
        // close rather than buffer it.
        if buf.len() > MAX_LINE_BYTES {
            let mut out = String::new();
            error_response("request too large").response.write(&mut out);
            out.push('\n');
            let _ = conn.write_all(out.as_bytes());
            return false;
        }

        match conn.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll: enforce the drain deadline.
                if let Some(deadline) = server.drain_deadline() {
                    if Instant::now() > deadline {
                        return false;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

enum LineOutcome {
    Continue,
    Shutdown,
    Close,
}

/// Routes and answers one request line on a socket connection.
fn answer_line(
    server: &ServerState,
    line: &str,
    conn: &mut std::os::unix::net::UnixStream,
) -> LineOutcome {
    use std::sync::mpsc;

    if line.trim().is_empty() {
        return LineOutcome::Continue;
    }
    let t0 = Instant::now();
    let (response, shutdown) = if server.is_shutting_down() {
        (shutting_down_response(), false)
    } else {
        match server.route(line) {
            Routed::Ready(handled) => (handled.response, handled.shutdown),
            Routed::Work(work) => {
                let (tx, rx) = mpsc::channel::<Json>();
                let cancel_tx = tx.clone();
                let deadline = work.deadline.map(|d| Instant::now() + d);
                let submitted = server.pool().try_submit(
                    work.priority,
                    deadline,
                    move || {
                        let _ = tx.send(work.run().response);
                    },
                    move |reason| {
                        let _ = cancel_tx.send(match reason {
                            ExpireReason::Deadline => deadline_response(),
                            ExpireReason::Shutdown => shutting_down_response(),
                        });
                    },
                );
                let response = match submitted {
                    Ok(()) => rx.recv().unwrap_or_else(|_| {
                        // Sender dropped without a response: the worker
                        // panicked mid-request. The worker survived
                        // (catch_unwind); the client gets a structured
                        // error, not a hang.
                        error_response("internal: worker panicked mid-request")
                            .response
                    }),
                    Err(SubmitError::Overloaded { retry_after_ms }) => {
                        overloaded_response(retry_after_ms)
                    }
                    Err(SubmitError::ShuttingDown) => shutting_down_response(),
                };
                (response, false)
            }
        }
    };
    server.request_us.observe(elapsed_us(t0));
    let mut out = String::new();
    response.write(&mut out);
    out.push('\n');
    if conn.write_all(out.as_bytes()).is_err() || conn.flush().is_err() {
        // Client dropped mid-write: close this connection quietly; the
        // server and every other client are unaffected.
        return LineOutcome::Close;
    }
    if shutdown {
        LineOutcome::Shutdown
    } else {
        LineOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};
    use crate::state::DaemonState;
    use strtaint::{Config, Vfs};

    fn state() -> DaemonState {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "<?php $r = $DB->query(\"SELECT 1\");");
        DaemonState::new(vfs, Config::default(), None)
    }

    #[test]
    fn socket_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let server = ServerState::single("ws0", state());
        let socket = std::env::temp_dir().join(format!(
            "strtaint-daemon-test-{}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket);
        std::thread::scope(|scope| {
            let sock = socket.clone();
            let server = &server;
            let listener = scope.spawn(move || serve_socket(server, &sock));
            // Wait for the listener to come up.
            let mut conn = None;
            for _ in 0..100 {
                match UnixStream::connect(&socket) {
                    Ok(c) => {
                        conn = Some(c);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            let mut conn = conn.expect("socket comes up");
            let mut conn2 = UnixStream::connect(&socket).expect("second client connects");

            conn.write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}\n")
                .expect("write");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let r = json::parse(line.trim()).expect("valid response");
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

            conn2
                .write_all(b"{\"cmd\":\"status\"}\n")
                .expect("write 2");
            let mut reader2 = BufReader::new(conn2.try_clone().expect("clone 2"));
            let mut line2 = String::new();
            reader2.read_line(&mut line2).expect("read 2");
            let st = json::parse(line2.trim()).expect("valid status");
            assert_eq!(st.get("pages_computed").and_then(Json::as_num), Some(1.0));

            // Close the first client before shutdown: the server drains
            // open connections before exiting.
            drop(reader);
            drop(conn);
            conn2
                .write_all(b"{\"cmd\":\"shutdown\"}\n")
                .expect("shutdown write");
            line2.clear();
            reader2.read_line(&mut line2).expect("shutdown ack");
            drop(reader2);
            drop(conn2);
            listener.join().expect("no panic").expect("clean exit");
        });
        assert!(!socket.exists(), "socket file cleaned up");
    }

    #[test]
    fn unterminated_final_line_still_gets_a_response() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::Shutdown;
        use std::os::unix::net::UnixStream;

        let server = ServerState::single("ws0", state());
        let socket = std::env::temp_dir().join(format!(
            "strtaint-daemon-test-{}-trunc.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket);
        std::thread::scope(|scope| {
            let sock = socket.clone();
            let server_ref = &server;
            let listener = scope.spawn(move || serve_socket(server_ref, &sock));
            let mut conn = None;
            for _ in 0..100 {
                match UnixStream::connect(&socket) {
                    Ok(c) => {
                        conn = Some(c);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            let conn = conn.expect("socket comes up");
            // No trailing newline, then half-close the write side.
            (&conn).write_all(b"{\"cmd\":\"status\"}").expect("write");
            conn.shutdown(Shutdown::Write).expect("half-close");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let r = json::parse(line.trim()).expect("valid response to partial line");
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            drop(reader);
            drop(conn);

            let shut = UnixStream::connect(&socket).expect("connect for shutdown");
            (&shut).write_all(b"{\"cmd\":\"shutdown\"}\n").expect("write");
            let mut reader = BufReader::new(shut);
            let mut ack = String::new();
            reader.read_line(&mut ack).expect("ack");
            listener.join().expect("no panic").expect("clean exit");
        });
        let _ = std::fs::remove_file(&socket);
    }
}
