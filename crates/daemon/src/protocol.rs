//! The daemon's wire protocol: newline-delimited JSON requests and
//! responses, transport-agnostic.
//!
//! One request per line, one response line per request, in order.
//! Commands:
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"analyze","entries":[…],"xss"?,"timeout_ms"?,"fuel"?}` | `{"ok":true,"pages":[…],"computed":n,"replayed":n}` |
//! | `{"cmd":"invalidate","path":…,"contents"?}` | `{"ok":true,"changed":bool}` (`contents` absent = remove) |
//! | `{"cmd":"status"}` | `{"ok":true,"engine":{…},"summary_cache":{…},"store":{…},…}` |
//! | `{"cmd":"metrics"}` | `{"ok":true,"metrics":{…}}` — the full instance registry: daemon counters, replay/compute latency histograms, engine and summary-cache counters |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"shutdown":true}`, then the server exits |
//!
//! Malformed input never kills the daemon: every failure is an
//! `{"ok":false,"error":…}` response on the same line slot.

use std::sync::atomic::Ordering;

use crate::json::{self, Json};
use crate::state::{DaemonState, PageOutcome};

/// The result of handling one request line.
#[derive(Debug)]
pub struct Handled {
    /// The response to write back (always exactly one line).
    pub response: Json,
    /// `true` when the request asked the server to stop.
    pub shutdown: bool,
}

fn error(message: impl Into<String>) -> Handled {
    Handled {
        response: Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(message.into())),
        ]),
        shutdown: false,
    }
}

fn ok(mut members: Vec<(&str, Json)>) -> Json {
    members.insert(0, ("ok", Json::Bool(true)));
    Json::obj(members)
}

/// Handles one request line against the resident state, returning the
/// response line. Never panics on malformed input.
pub fn handle_line(state: &DaemonState, line: &str) -> Handled {
    state.counters.requests.inc();
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error(format!("invalid JSON: {e}")),
    };
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(c) => c.to_owned(),
        None => return error("missing \"cmd\""),
    };
    match cmd.as_str() {
        "analyze" => handle_analyze(state, &request),
        "invalidate" => handle_invalidate(state, &request),
        "status" => handle_status(state),
        "metrics" => Handled {
            response: ok(vec![("metrics", state.metrics_json())]),
            shutdown: false,
        },
        "shutdown" => Handled {
            response: ok(vec![("shutdown", Json::Bool(true))]),
            shutdown: true,
        },
        other => error(format!("unknown cmd {other:?}")),
    }
}

fn handle_analyze(state: &DaemonState, request: &Json) -> Handled {
    let entries: Vec<String> = match request.get("entries").and_then(Json::as_arr) {
        Some(arr) => {
            let mut out = Vec::with_capacity(arr.len());
            for e in arr {
                match e.as_str() {
                    Some(s) => out.push(s.to_owned()),
                    None => return error("\"entries\" must be an array of strings"),
                }
            }
            out
        }
        None => return error("\"analyze\" needs \"entries\": [paths]"),
    };
    let xss = request.get("xss").and_then(Json::as_bool).unwrap_or(false);
    let timeout_ms = request.get("timeout_ms").and_then(Json::as_num);
    let fuel = request.get("fuel").and_then(Json::as_num);
    let config = state.effective_config(timeout_ms, fuel);

    let mut pages = Vec::with_capacity(entries.len());
    let mut computed = 0u64;
    let mut replayed = 0u64;
    for entry in &entries {
        // Each page runs with a fresh `Budget` derived from `config`
        // inside the engine; hotspots within a page fan out onto the
        // parallel hotspot pool as in batch mode.
        let (page, outcome) = state.analyze_page(entry, xss, &config);
        match outcome {
            PageOutcome::Computed => computed += 1,
            PageOutcome::Replayed => replayed += 1,
        }
        pages.push(page);
    }
    Handled {
        response: ok(vec![
            ("pages", Json::Arr(pages)),
            ("computed", Json::Num(computed as f64)),
            ("replayed", Json::Num(replayed as f64)),
        ]),
        shutdown: false,
    }
}

fn handle_invalidate(state: &DaemonState, request: &Json) -> Handled {
    let path = match request.get("path").and_then(Json::as_str) {
        Some(p) => p.to_owned(),
        None => return error("\"invalidate\" needs \"path\""),
    };
    let contents = match request.get("contents") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone().into_bytes()),
        Some(_) => return error("\"contents\" must be a string (or absent to remove)"),
    };
    let changed = state.invalidate(&path, contents);
    Handled {
        response: ok(vec![("changed", Json::Bool(changed))]),
        shutdown: false,
    }
}

fn handle_status(state: &DaemonState) -> Handled {
    let engine = state.engine_stats();
    let summaries = state.summaries();
    let (files, lines) = state.tree_size();
    let mut members = vec![
        (
            "engine",
            Json::obj(vec![
                ("queries", Json::Num(engine.queries as f64)),
                ("normalizations", Json::Num(engine.normalizations as f64)),
                (
                    "normalizations_saved",
                    Json::Num(engine.normalizations_saved as f64),
                ),
                ("realized_triples", Json::Num(engine.realized_triples as f64)),
                ("early_exits", Json::Num(engine.early_exits as f64)),
            ]),
        ),
        (
            "summary_cache",
            Json::obj(vec![
                ("hits", Json::Num(summaries.hits() as f64)),
                ("misses", Json::Num(summaries.misses() as f64)),
                ("entries", Json::Num(summaries.len() as f64)),
            ]),
        ),
        (
            "pages_computed",
            Json::Num(state.counters.pages_computed.get() as f64),
        ),
        (
            "pages_replayed",
            Json::Num(state.counters.pages_replayed.get() as f64),
        ),
        (
            "requests",
            Json::Num(state.counters.requests.get() as f64),
        ),
        ("files", Json::Num(files as f64)),
        ("lines", Json::Num(lines as f64)),
    ];
    if let Some(store) = state.store() {
        members.push((
            "store",
            Json::obj(vec![
                (
                    "loaded",
                    Json::Num(store.stats.loaded.load(Ordering::Relaxed) as f64),
                ),
                (
                    "stored",
                    Json::Num(store.stats.stored.load(Ordering::Relaxed) as f64),
                ),
                (
                    "dropped",
                    Json::Num(store.stats.dropped.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ));
    }
    Handled {
        response: ok(members),
        shutdown: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint::{Config, Vfs};

    fn state() -> DaemonState {
        let mut vfs = Vfs::new();
        // Tainted: guarantees at least one intersection query runs.
        vfs.add(
            "a.php",
            "<?php $id = $_GET['id']; \
             $r = $DB->query(\"SELECT * FROM t WHERE id='$id'\");",
        );
        DaemonState::new(vfs, Config::default(), None)
    }

    fn roundtrip(state: &DaemonState, line: &str) -> Json {
        handle_line(state, line).response
    }

    #[test]
    fn malformed_lines_become_errors_not_panics() {
        let s = state();
        for bad in [
            "",
            "not json",
            "{}",
            "{\"cmd\":\"frobnicate\"}",
            "{\"cmd\":\"analyze\"}",
            "{\"cmd\":\"analyze\",\"entries\":[1]}",
            "{\"cmd\":\"invalidate\"}",
            "{\"cmd\":\"invalidate\",\"path\":\"a\",\"contents\":7}",
        ] {
            let r = roundtrip(&s, bad);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert!(r.get("error").and_then(Json::as_str).is_some(), "{bad}");
        }
    }

    #[test]
    fn analyze_then_status_reports_the_work() {
        let s = state();
        let r = roundtrip(&s, "{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("computed").and_then(Json::as_num), Some(1.0));
        assert_eq!(r.get("replayed").and_then(Json::as_num), Some(0.0));
        let pages = r.get("pages").and_then(Json::as_arr).expect("pages");
        assert_eq!(pages.len(), 1);
        assert_eq!(
            pages[0].get("entry").and_then(Json::as_str),
            Some("a.php")
        );

        let st = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(st.get("pages_computed").and_then(Json::as_num), Some(1.0));
        let engine = st.get("engine").expect("engine stats");
        assert!(engine.get("queries").and_then(Json::as_num).unwrap_or(0.0) >= 1.0);

        // Replay adds no engine work.
        let r2 = roundtrip(&s, "{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}");
        assert_eq!(r2.get("replayed").and_then(Json::as_num), Some(1.0));
        let st2 = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(
            st2.get("engine").and_then(|e| e.get("queries")).and_then(Json::as_num),
            st.get("engine").and_then(|e| e.get("queries")).and_then(Json::as_num),
            "replay performs zero intersection queries"
        );
    }

    #[test]
    fn invalidate_applies_deltas() {
        let s = state();
        let r = roundtrip(
            &s,
            "{\"cmd\":\"invalidate\",\"path\":\"b.php\",\"contents\":\"<?php ?>\"}",
        );
        assert_eq!(r.get("changed").and_then(Json::as_bool), Some(true));
        let st = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(st.get("files").and_then(Json::as_num), Some(2.0));
        // Removal via absent contents.
        let r2 = roundtrip(&s, "{\"cmd\":\"invalidate\",\"path\":\"b.php\"}");
        assert_eq!(r2.get("changed").and_then(Json::as_bool), Some(true));
        let st2 = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(st2.get("files").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn shutdown_flags_the_server() {
        let s = state();
        let h = handle_line(&s, "{\"cmd\":\"shutdown\"}");
        assert!(h.shutdown);
        assert_eq!(h.response.get("ok").and_then(Json::as_bool), Some(true));
    }
}
