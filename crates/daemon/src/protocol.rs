//! The daemon's wire protocol: newline-delimited JSON requests and
//! responses, transport-agnostic.
//!
//! One request per line, one response line per request, in order.
//! Commands:
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"analyze","entries":[…],"xss"?,"policies"?,"timeout_ms"?,"fuel"?}` | `{"ok":true,"pages":[…],"computed":n,"replayed":n}` (`policies`: array of registry ids, default `["sql"]`) |
//! | `{"cmd":"profile","entries":[…],"policies"?,"timeout_ms"?,"fuel"?}` | `{"ok":true,"profile":"…"}` — the versioned guard-profile artifact (hotspot skeleton allowlists); byte-identical whether pages were computed or replayed |
//! | `{"cmd":"invalidate","path":…,"contents"?}` | `{"ok":true,"changed":bool}` (`contents` absent = remove) |
//! | `{"cmd":"batch","ops":[{…},…]}` | `{"ok":true,"results":[…]}` — applies N `analyze`/`invalidate`/`status` ops in order, one round-trip |
//! | `{"cmd":"status"}` | `{"ok":true,"engine":{…},"summary_cache":{…},"store":{…},…}` |
//! | `{"cmd":"metrics"}` | `{"ok":true,"metrics":{…}}` — the full instance registry: daemon counters, replay/compute latency histograms, engine and summary-cache counters |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"shutdown":true}`, then the server exits |
//!
//! Every request additionally accepts three routing fields, read by
//! the multi-workspace server envelope (`server.rs`): `"workspace"`
//! selects the shard (default: the `--dir` workspace), `"priority"`
//! (0–9, higher first) orders the bounded queue, and `"deadline_ms"`
//! cancels the request if it is still queued when the budget elapses.
//!
//! Malformed input never kills the daemon: every failure is an
//! `{"ok":false,"error":…}` response on the same line slot. Requests
//! are size-capped ([`MAX_LINE_BYTES`], [`MAX_BATCH_OPS`],
//! [`MAX_ENTRIES`]) so an oversized field is a structured error, not
//! an allocation storm.

use std::sync::atomic::Ordering;

use crate::json::{self, Json};
use crate::state::{DaemonState, PageOutcome};

/// Hard cap on one request line. Invalidations carry whole file
/// contents, so the cap is generous; anything larger is hostile or a
/// framing bug, and either way a structured error beats an allocation
/// storm.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Hard cap on `batch` ops per request.
pub const MAX_BATCH_OPS: usize = 1_024;

/// Hard cap on `analyze` entries per request.
pub const MAX_ENTRIES: usize = 4_096;

/// The result of handling one request line.
#[derive(Debug)]
pub struct Handled {
    /// The response to write back (always exactly one line).
    pub response: Json,
    /// `true` when the request asked the server to stop.
    pub shutdown: bool,
}

fn error(message: impl Into<String>) -> Handled {
    Handled {
        response: Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(message.into())),
        ]),
        shutdown: false,
    }
}

fn ok(mut members: Vec<(&str, Json)>) -> Json {
    members.insert(0, ("ok", Json::Bool(true)));
    Json::obj(members)
}

/// Parses one request line into its JSON value and command name,
/// enforcing the size cap. Shared by the single-workspace loop and the
/// multi-workspace server envelope.
pub fn parse_request(line: &str) -> Result<(Json, String), Handled> {
    if line.len() > MAX_LINE_BYTES {
        return Err(error(format!(
            "request too large ({} bytes, limit {MAX_LINE_BYTES})",
            line.len()
        )));
    }
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return Err(error(format!("invalid JSON: {e}"))),
    };
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(c) => c.to_owned(),
        None => return Err(error("missing \"cmd\"")),
    };
    Ok((request, cmd))
}

/// The request's `priority` field, clamped to 0–9 (default 0). A
/// non-numeric value is a structured error.
pub fn request_priority(request: &Json) -> Result<u8, Handled> {
    match request.get("priority") {
        None | Some(Json::Null) => Ok(0),
        Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => Ok((*n as u64).min(9) as u8),
        Some(_) => Err(error("\"priority\" must be a number in 0..=9")),
    }
}

/// The request's `deadline_ms` field as a duration (default none). A
/// non-numeric or non-positive value is a structured error.
pub fn request_deadline(request: &Json) -> Result<Option<std::time::Duration>, Handled> {
    match request.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if n.is_finite() && *n > 0.0 => {
            Ok(Some(std::time::Duration::from_secs_f64(n / 1e3)))
        }
        Some(_) => Err(error("\"deadline_ms\" must be a positive number")),
    }
}

/// Handles one request line against the resident state, returning the
/// response line. Never panics on malformed input.
pub fn handle_line(state: &DaemonState, line: &str) -> Handled {
    state.counters.requests.inc();
    let (request, cmd) = match parse_request(line) {
        Ok(parsed) => parsed,
        Err(handled) => return handled,
    };
    // Routing fields are validated even where they are not acted on
    // (the stdio loop has no queue): a typo'd priority should fail
    // loudly, not be silently ignored.
    if let Err(h) = request_priority(&request) {
        return h;
    }
    if let Err(h) = request_deadline(&request) {
        return h;
    }
    dispatch_cmd(state, &cmd, &request)
}

/// Dispatches one parsed request against one workspace's state. This
/// is the workspace-verb core shared by [`handle_line`] and the
/// multi-workspace server (which resolves the shard first).
pub fn dispatch_cmd(state: &DaemonState, cmd: &str, request: &Json) -> Handled {
    match cmd {
        "analyze" => handle_analyze(state, request),
        "profile" => handle_profile(state, request),
        "invalidate" => handle_invalidate(state, request),
        "batch" => handle_batch(state, request),
        "status" => handle_status(state),
        "metrics" => Handled {
            response: ok(vec![("metrics", state.metrics_json())]),
            shutdown: false,
        },
        "shutdown" => Handled {
            response: ok(vec![("shutdown", Json::Bool(true))]),
            shutdown: true,
        },
        other => error(format!("unknown cmd {other:?}")),
    }
}

/// Applies a `batch` request: `ops` is an array of `analyze` /
/// `invalidate` / `status` objects executed in order against one
/// workspace, answered with one `results` array in the same order —
/// N deltas plus a re-analysis in a single round-trip. Per-op
/// failures occupy their result slot as `{"ok":false,…}` without
/// aborting the rest of the batch.
fn handle_batch(state: &DaemonState, request: &Json) -> Handled {
    let ops = match request.get("ops").and_then(Json::as_arr) {
        Some(arr) => arr,
        None => return error("\"batch\" needs \"ops\": [requests]"),
    };
    if ops.len() > MAX_BATCH_OPS {
        return error(format!(
            "batch too large ({} ops, limit {MAX_BATCH_OPS})",
            ops.len()
        ));
    }
    let mut results = Vec::with_capacity(ops.len());
    for op in ops {
        let result = match op.get("cmd").and_then(Json::as_str) {
            Some(cmd @ ("analyze" | "invalidate" | "status")) => {
                dispatch_cmd(state, cmd, op).response
            }
            Some(other) => {
                error(format!("op {other:?} not allowed in batch")).response
            }
            None => error("batch op missing \"cmd\"").response,
        };
        results.push(result);
    }
    Handled {
        response: ok(vec![("results", Json::Arr(results))]),
        shutdown: false,
    }
}

/// The request's validated `entries` array (size-capped, all strings).
fn request_entries(request: &Json, verb: &str) -> Result<Vec<String>, Handled> {
    match request.get("entries").and_then(Json::as_arr) {
        Some(arr) => {
            if arr.len() > MAX_ENTRIES {
                return Err(error(format!(
                    "too many entries ({}, limit {MAX_ENTRIES})",
                    arr.len()
                )));
            }
            let mut out = Vec::with_capacity(arr.len());
            for e in arr {
                match e.as_str() {
                    Some(s) => out.push(s.to_owned()),
                    None => return Err(error("\"entries\" must be an array of strings")),
                }
            }
            Ok(out)
        }
        None => Err(error(format!("{verb:?} needs \"entries\": [paths]"))),
    }
}

/// The request's validated `policies` array: every id must exist in
/// the registry; `None` means the workspace default.
fn request_policies(request: &Json) -> Result<Option<Vec<String>>, Handled> {
    match request.get("policies") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Arr(arr)) => {
            let mut ids = Vec::with_capacity(arr.len());
            for p in arr {
                match p.as_str() {
                    Some(id) if strtaint::policy::find(id).is_some() => {
                        ids.push(id.to_owned());
                    }
                    Some(id) => return Err(error(format!("unknown policy {id:?}"))),
                    None => return Err(error("\"policies\" must be an array of strings")),
                }
            }
            if ids.is_empty() {
                return Err(error("\"policies\" must name at least one policy"));
            }
            Ok(Some(ids))
        }
        Some(_) => Err(error("\"policies\" must be an array of strings")),
    }
}

fn handle_analyze(state: &DaemonState, request: &Json) -> Handled {
    let entries = match request_entries(request, "analyze") {
        Ok(e) => e,
        Err(h) => return h,
    };
    let xss = request.get("xss").and_then(Json::as_bool).unwrap_or(false);
    let timeout_ms = request.get("timeout_ms").and_then(Json::as_num);
    let fuel = request.get("fuel").and_then(Json::as_num);
    let policies = match request_policies(request) {
        Ok(p) => p,
        Err(h) => return h,
    };
    if xss && policies.is_some() {
        return error("\"xss\" and \"policies\" are mutually exclusive (use [\"xss\"])");
    }
    let config = state.effective_config(timeout_ms, fuel, policies);

    let mut pages = Vec::with_capacity(entries.len());
    let mut computed = 0u64;
    let mut replayed = 0u64;
    for entry in &entries {
        // Each page runs with a fresh `Budget` derived from `config`
        // inside the engine; hotspots within a page fan out onto the
        // parallel hotspot pool as in batch mode.
        let (page, outcome) = state.analyze_page(entry, xss, &config);
        match outcome {
            PageOutcome::Computed => computed += 1,
            PageOutcome::Replayed => replayed += 1,
        }
        pages.push(page);
    }
    Handled {
        response: ok(vec![
            ("pages", Json::Arr(pages)),
            ("computed", Json::Num(computed as f64)),
            ("replayed", Json::Num(replayed as f64)),
        ]),
        shutdown: false,
    }
}

/// Handles `profile`: analyzes (or replays) each entry and renders the
/// per-hotspot skeleton allowlists as the versioned guard-profile
/// artifact. The profile is rebuilt from the page JSON — the exact
/// rendering persisted verdict artifacts carry — and the
/// skeleton-string conversion happened once at render time, so a warm
/// daemon's profile is byte-identical to a cold run's.
fn handle_profile(state: &DaemonState, request: &Json) -> Handled {
    let entries = match request_entries(request, "profile") {
        Ok(e) => e,
        Err(h) => return h,
    };
    let timeout_ms = request.get("timeout_ms").and_then(Json::as_num);
    let fuel = request.get("fuel").and_then(Json::as_num);
    let policies = match request_policies(request) {
        Ok(p) => p,
        Err(h) => return h,
    };
    let config = state.effective_config(timeout_ms, fuel, policies);

    let mut pages = Vec::with_capacity(entries.len());
    for entry in &entries {
        let (page, _) = state.analyze_page(entry, false, &config);
        match profile_page_from_json(&page) {
            Some(p) => pages.push(p),
            // A skipped page (parse error, panic) has no trustworthy
            // hotspot evidence; an allowlist silently missing a page's
            // hotspots would be unsound to enforce.
            None => {
                return error(format!("cannot profile {entry:?}: page analysis skipped"))
            }
        }
    }
    Handled {
        response: ok(vec![(
            "profile",
            Json::Str(strtaint_remedy::render_profile(&pages)),
        )]),
        shutdown: false,
    }
}

/// Rebuilds one page's allowlist from its protocol page object. `None`
/// when the page was skipped or any hotspot lacks skeleton evidence
/// (impossible for pages this engine version computed or replayed).
fn profile_page_from_json(page: &Json) -> Option<strtaint_remedy::ProfilePage> {
    if page.get("skipped").and_then(Json::as_str).is_some() {
        return None;
    }
    let entry = page.get("entry")?.as_str()?.to_owned();
    let mut hotspots = Vec::new();
    for h in page.get("hotspots")?.as_arr()? {
        let mut skeletons = Vec::new();
        for s in h.get("skeletons")?.as_arr()? {
            skeletons.push(s.as_str()?.to_owned());
        }
        hotspots.push(strtaint_remedy::ProfileHotspot {
            file: h.get("file")?.as_str()?.to_owned(),
            line: h.get("line")?.as_num()? as u32,
            col: h.get("col")?.as_num()? as u32,
            label: h.get("label")?.as_str()?.to_owned(),
            policy: h.get("policy")?.as_str()?.to_owned(),
            complete: h.get("skeletons_complete")?.as_bool()?,
            skeletons,
        });
    }
    Some(strtaint_remedy::ProfilePage { entry, hotspots })
}

fn handle_invalidate(state: &DaemonState, request: &Json) -> Handled {
    let path = match request.get("path").and_then(Json::as_str) {
        Some(p) => p.to_owned(),
        None => return error("\"invalidate\" needs \"path\""),
    };
    let contents = match request.get("contents") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone().into_bytes()),
        Some(_) => return error("\"contents\" must be a string (or absent to remove)"),
    };
    let changed = state.invalidate(&path, contents);
    Handled {
        response: ok(vec![("changed", Json::Bool(changed))]),
        shutdown: false,
    }
}

fn handle_status(state: &DaemonState) -> Handled {
    let engine = state.engine_stats();
    let summaries = state.summaries();
    let (files, lines) = state.tree_size();
    let mut members = vec![
        (
            "engine",
            Json::obj(vec![
                ("queries", Json::Num(engine.queries as f64)),
                ("normalizations", Json::Num(engine.normalizations as f64)),
                (
                    "normalizations_saved",
                    Json::Num(engine.normalizations_saved as f64),
                ),
                ("realized_triples", Json::Num(engine.realized_triples as f64)),
                ("early_exits", Json::Num(engine.early_exits as f64)),
            ]),
        ),
        (
            "summary_cache",
            Json::obj(vec![
                ("hits", Json::Num(summaries.hits() as f64)),
                ("misses", Json::Num(summaries.misses() as f64)),
                ("entries", Json::Num(summaries.len() as f64)),
            ]),
        ),
        (
            "pages_computed",
            Json::Num(state.counters.pages_computed.get() as f64),
        ),
        (
            "pages_replayed",
            Json::Num(state.counters.pages_replayed.get() as f64),
        ),
        (
            "requests",
            Json::Num(state.counters.requests.get() as f64),
        ),
        ("files", Json::Num(files as f64)),
        ("lines", Json::Num(lines as f64)),
    ];
    if let Some(store) = state.store() {
        members.push((
            "store",
            Json::obj(vec![
                (
                    "loaded",
                    Json::Num(store.stats.loaded.load(Ordering::Relaxed) as f64),
                ),
                (
                    "stored",
                    Json::Num(store.stats.stored.load(Ordering::Relaxed) as f64),
                ),
                (
                    "dropped",
                    Json::Num(store.stats.dropped.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ));
    }
    Handled {
        response: ok(members),
        shutdown: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strtaint::{Config, Vfs};

    fn state() -> DaemonState {
        let mut vfs = Vfs::new();
        // Tainted: guarantees at least one intersection query runs.
        vfs.add(
            "a.php",
            "<?php $id = $_GET['id']; \
             $r = $DB->query(\"SELECT * FROM t WHERE id='$id'\");",
        );
        DaemonState::new(vfs, Config::default(), None)
    }

    fn roundtrip(state: &DaemonState, line: &str) -> Json {
        handle_line(state, line).response
    }

    #[test]
    fn malformed_lines_become_errors_not_panics() {
        let s = state();
        for bad in [
            "",
            "not json",
            "{}",
            "{\"cmd\":\"frobnicate\"}",
            "{\"cmd\":\"analyze\"}",
            "{\"cmd\":\"analyze\",\"entries\":[1]}",
            "{\"cmd\":\"invalidate\"}",
            "{\"cmd\":\"invalidate\",\"path\":\"a\",\"contents\":7}",
        ] {
            let r = roundtrip(&s, bad);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
            assert!(r.get("error").and_then(Json::as_str).is_some(), "{bad}");
        }
    }

    #[test]
    fn analyze_then_status_reports_the_work() {
        let s = state();
        let r = roundtrip(&s, "{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("computed").and_then(Json::as_num), Some(1.0));
        assert_eq!(r.get("replayed").and_then(Json::as_num), Some(0.0));
        let pages = r.get("pages").and_then(Json::as_arr).expect("pages");
        assert_eq!(pages.len(), 1);
        assert_eq!(
            pages[0].get("entry").and_then(Json::as_str),
            Some("a.php")
        );

        let st = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(st.get("pages_computed").and_then(Json::as_num), Some(1.0));
        let engine = st.get("engine").expect("engine stats");
        assert!(engine.get("queries").and_then(Json::as_num).unwrap_or(0.0) >= 1.0);

        // Replay adds no engine work.
        let r2 = roundtrip(&s, "{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}");
        assert_eq!(r2.get("replayed").and_then(Json::as_num), Some(1.0));
        let st2 = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(
            st2.get("engine").and_then(|e| e.get("queries")).and_then(Json::as_num),
            st.get("engine").and_then(|e| e.get("queries")).and_then(Json::as_num),
            "replay performs zero intersection queries"
        );
    }

    #[test]
    fn invalidate_applies_deltas() {
        let s = state();
        let r = roundtrip(
            &s,
            "{\"cmd\":\"invalidate\",\"path\":\"b.php\",\"contents\":\"<?php ?>\"}",
        );
        assert_eq!(r.get("changed").and_then(Json::as_bool), Some(true));
        let st = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(st.get("files").and_then(Json::as_num), Some(2.0));
        // Removal via absent contents.
        let r2 = roundtrip(&s, "{\"cmd\":\"invalidate\",\"path\":\"b.php\"}");
        assert_eq!(r2.get("changed").and_then(Json::as_bool), Some(true));
        let st2 = roundtrip(&s, "{\"cmd\":\"status\"}");
        assert_eq!(st2.get("files").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn batch_applies_ops_in_order_in_one_round_trip() {
        let s = state();
        let r = roundtrip(
            &s,
            "{\"cmd\":\"batch\",\"ops\":[\
             {\"cmd\":\"invalidate\",\"path\":\"b.php\",\"contents\":\"<?php ?>\"},\
             {\"cmd\":\"analyze\",\"entries\":[\"a.php\"]},\
             {\"cmd\":\"status\"},\
             {\"cmd\":\"shutdown\"},\
             {\"cmd\":\"invalidate\",\"path\":\"b.php\"}]}",
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let results = r.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].get("changed").and_then(Json::as_bool), Some(true));
        assert_eq!(results[1].get("computed").and_then(Json::as_num), Some(1.0));
        assert_eq!(results[2].get("files").and_then(Json::as_num), Some(2.0));
        // shutdown is not allowed inside a batch: its slot errors, the
        // rest of the batch still runs.
        assert_eq!(results[3].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(results[4].get("changed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn oversized_requests_get_structured_errors() {
        let s = state();
        // Line too long.
        let huge = format!(
            "{{\"cmd\":\"analyze\",\"entries\":[\"{}\"]}}",
            "x".repeat(MAX_LINE_BYTES)
        );
        let r = roundtrip(&s, &huge);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        // Too many batch ops.
        let ops: Vec<String> = (0..MAX_BATCH_OPS + 1)
            .map(|_| "{\"cmd\":\"status\"}".to_owned())
            .collect();
        let r = roundtrip(&s, &format!("{{\"cmd\":\"batch\",\"ops\":[{}]}}", ops.join(",")));
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .expect("error text")
            .contains("batch too large"));
    }

    #[test]
    fn routing_fields_are_validated() {
        let s = state();
        for bad in [
            "{\"cmd\":\"status\",\"priority\":\"high\"}",
            "{\"cmd\":\"status\",\"priority\":-1}",
            "{\"cmd\":\"status\",\"deadline_ms\":\"soon\"}",
            "{\"cmd\":\"status\",\"deadline_ms\":0}",
        ] {
            let r = roundtrip(&s, bad);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
        }
        // Valid values pass through.
        let r = roundtrip(&s, "{\"cmd\":\"status\",\"priority\":9,\"deadline_ms\":50}");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn analyze_accepts_and_validates_policies() {
        let s = state();
        // Shell page: vulnerable only when the shell policy is on.
        roundtrip(
            &s,
            "{\"cmd\":\"invalidate\",\"path\":\"sh.php\",\
             \"contents\":\"<?php system(\\\"ls \\\" . $_GET['d']);\"}",
        );
        let r = roundtrip(
            &s,
            "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"],\
             \"policies\":[\"sql\",\"shell\"]}",
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let pages = r.get("pages").and_then(Json::as_arr).expect("pages");
        assert_eq!(pages[0].get("verified").and_then(Json::as_bool), Some(false));
        // Default policy set does not see the shell sink.
        let r2 = roundtrip(&s, "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"]}");
        let pages2 = r2.get("pages").and_then(Json::as_arr).expect("pages");
        assert_eq!(pages2[0].get("verified").and_then(Json::as_bool), Some(true));
        // Validation: unknown ids, wrong types, empty sets, xss clash.
        for bad in [
            "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"],\"policies\":[\"bogus\"]}",
            "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"],\"policies\":[1]}",
            "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"],\"policies\":\"sql\"}",
            "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"],\"policies\":[]}",
            "{\"cmd\":\"analyze\",\"entries\":[\"sh.php\"],\"xss\":true,\"policies\":[\"sql\"]}",
        ] {
            let r = roundtrip(&s, bad);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
        }
    }

    #[test]
    fn shutdown_flags_the_server() {
        let s = state();
        let h = handle_line(&s, "{\"cmd\":\"shutdown\"}");
        assert!(h.shutdown);
        assert_eq!(h.response.get("ok").and_then(Json::as_bool), Some(true));
    }
}
