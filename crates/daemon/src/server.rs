//! Transports for the daemon: a line loop over any reader/writer pair
//! (used for stdin/stdout), and a Unix-socket listener that serves
//! concurrent connections against the same resident state.

use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use strtaint::{Config, Vfs};

use crate::protocol::handle_line;
use crate::state::DaemonState;
use crate::store::ArtifactStore;

/// Serves newline-delimited JSON requests from `input`, writing one
/// response line per request to `output`. Returns `Ok(true)` when the
/// client requested shutdown, `Ok(false)` on EOF.
pub fn serve_lines<R, W>(state: &DaemonState, input: R, mut output: W) -> io::Result<bool>
where
    R: BufRead,
    W: Write,
{
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let handled = handle_line(state, &line);
        let mut response = String::new();
        handled.response.write(&mut response);
        response.push('\n');
        output.write_all(response.as_bytes())?;
        output.flush()?;
        if handled.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves connections on a Unix-domain socket until any client sends
/// `shutdown`. Each connection gets its own thread; all of them share
/// `state`, so concurrent `analyze` requests batch onto the same
/// summary cache, prepared grammars, and hotspot worker pool.
///
/// Shutdown is graceful: in-flight connections drain (the listener
/// stops accepting, but existing clients are served until they close
/// their end), so no request is ever cut off mid-response.
#[cfg(unix)]
pub fn serve_socket(state: &DaemonState, socket_path: &Path) -> io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)?;
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match conn {
                Ok(c) => c,
                Err(_) => continue,
            };
            let shutdown = &shutdown;
            scope.spawn(move || {
                let reader = BufReader::new(match conn.try_clone() {
                    Ok(c) => c,
                    Err(_) => return,
                });
                if let Ok(true) = serve_lines(state, reader, &conn) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so the scope can close.
                    let _ = UnixStream::connect(socket_path);
                }
            });
        }
    });

    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

/// Options parsed from `strtaint serve` flags.
#[derive(Debug)]
pub struct ServeOptions {
    /// Project root to load into the resident [`Vfs`].
    pub dir: PathBuf,
    /// When set, serve a Unix socket at this path instead of stdio.
    pub socket: Option<PathBuf>,
    /// Artifact-store root; default `<dir>/.strtaint-cache`.
    pub cache_dir: PathBuf,
    /// Disable the on-disk store entirely (memory-only daemon).
    pub no_disk_cache: bool,
    /// Base per-page wall-clock budget in milliseconds.
    pub timeout_ms: Option<f64>,
    /// Base per-page fuel budget.
    pub fuel: Option<f64>,
}

impl ServeOptions {
    /// Parses the argument list after `serve`. Returns a usage message
    /// on any unrecognized or incomplete flag.
    pub fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let mut dir: Option<PathBuf> = None;
        let mut socket = None;
        let mut cache_dir: Option<PathBuf> = None;
        let mut no_disk_cache = false;
        let mut timeout_ms = None;
        let mut fuel = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
                "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
                "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
                "--no-disk-cache" => no_disk_cache = true,
                "--timeout-ms" => {
                    timeout_ms = Some(
                        value("--timeout-ms")?
                            .parse::<f64>()
                            .map_err(|e| format!("--timeout-ms: {e}"))?,
                    )
                }
                "--fuel" => {
                    fuel = Some(
                        value("--fuel")?
                            .parse::<f64>()
                            .map_err(|e| format!("--fuel: {e}"))?,
                    )
                }
                other => return Err(format!("unknown flag {other:?} (see `strtaint serve --help`)")),
            }
        }
        let dir = dir.ok_or("serve needs --dir <project-root>")?;
        let cache_dir = cache_dir.unwrap_or_else(|| dir.join(".strtaint-cache"));
        Ok(ServeOptions {
            dir,
            socket,
            cache_dir,
            no_disk_cache,
            timeout_ms,
            fuel,
        })
    }
}

/// Builds the resident state for `opts`: loads the tree, applies base
/// budget overrides, and opens the artifact store (falling back to a
/// memory-only daemon, with a warning on `stderr`, when the store
/// directory cannot be created).
pub fn build_state(opts: &ServeOptions) -> io::Result<Arc<DaemonState>> {
    let vfs = Vfs::from_dir(&opts.dir)?;
    let mut config = Config::default();
    if let Some(ms) = opts.timeout_ms {
        if ms.is_finite() && ms > 0.0 {
            config.timeout = Some(std::time::Duration::from_secs_f64(ms / 1e3));
        }
    }
    if let Some(fuel) = opts.fuel {
        if fuel.is_finite() && fuel >= 1.0 {
            config.fuel = Some(fuel as u64);
        }
    }
    let store = if opts.no_disk_cache {
        None
    } else {
        match ArtifactStore::open(&opts.cache_dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!(
                    "strtaint serve: cannot open cache dir {}: {e}; running without persistence",
                    opts.cache_dir.display()
                );
                None
            }
        }
    };
    Ok(Arc::new(DaemonState::new(vfs, config, store)))
}

/// Entry point for `strtaint serve <args>`. Returns the process exit
/// code.
pub fn cli_serve(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{}", SERVE_USAGE);
        return 0;
    }
    let opts = match ServeOptions::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("strtaint serve: {e}\n{SERVE_USAGE}");
            return 2;
        }
    };
    let state = match build_state(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("strtaint serve: cannot load {}: {e}", opts.dir.display());
            return 1;
        }
    };
    let (files, lines) = state.tree_size();
    eprintln!(
        "strtaint serve: {files} files / {lines} lines resident; cache {}",
        if state.store().is_some() {
            opts.cache_dir.display().to_string()
        } else {
            "disabled".to_owned()
        }
    );

    #[cfg(unix)]
    if let Some(socket) = &opts.socket {
        eprintln!("strtaint serve: listening on {}", socket.display());
        return match serve_socket(&state, socket) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("strtaint serve: socket error: {e}");
                1
            }
        };
    }
    #[cfg(not(unix))]
    if opts.socket.is_some() {
        eprintln!("strtaint serve: --socket is only supported on Unix");
        return 2;
    }

    let stdin = io::stdin();
    let stdout = io::stdout();
    match serve_lines(&state, stdin.lock(), stdout.lock()) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("strtaint serve: I/O error: {e}");
            1
        }
    }
}

const SERVE_USAGE: &str = "usage: strtaint serve --dir <project-root> [options]
  --dir <path>        project root to keep resident (required)
  --socket <path>     serve a Unix socket instead of stdin/stdout
  --cache-dir <path>  artifact store root (default <dir>/.strtaint-cache)
  --no-disk-cache     keep all state in memory only
  --timeout-ms <n>    base per-page wall-clock budget
  --fuel <n>          base per-page fuel budget

Protocol: one JSON request per input line, one JSON response per line.
  {\"cmd\":\"analyze\",\"entries\":[\"index.php\"],\"xss\":false}
  {\"cmd\":\"invalidate\",\"path\":\"lib.php\",\"contents\":\"<?php ...\"}
  {\"cmd\":\"status\"}
  {\"cmd\":\"metrics\"}
  {\"cmd\":\"shutdown\"}";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};

    fn state() -> DaemonState {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "<?php $r = $DB->query(\"SELECT 1\");");
        DaemonState::new(vfs, Config::default(), None)
    }

    #[test]
    fn line_loop_answers_each_request_and_stops_on_shutdown() {
        let s = state();
        let input = "{\"cmd\":\"status\"}\n\n{\"cmd\":\"shutdown\"}\n{\"cmd\":\"status\"}\n";
        let mut output = Vec::new();
        let shut = serve_lines(&s, input.as_bytes(), &mut output).expect("serves");
        assert!(shut, "shutdown honored");
        let lines: Vec<&str> = std::str::from_utf8(&output)
            .expect("utf8")
            .lines()
            .collect();
        assert_eq!(lines.len(), 2, "blank line skipped, post-shutdown line unread");
        let first = json::parse(lines[0]).expect("valid JSON response");
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        let second = json::parse(lines[1]).expect("valid JSON response");
        assert_eq!(second.get("shutdown").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn eof_ends_the_loop_cleanly() {
        let s = state();
        let mut output = Vec::new();
        let shut = serve_lines(&s, "{\"cmd\":\"status\"}\n".as_bytes(), &mut output)
            .expect("serves");
        assert!(!shut);
    }

    #[cfg(unix)]
    #[test]
    fn socket_serves_concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let s = state();
        let socket = std::env::temp_dir().join(format!(
            "strtaint-daemon-test-{}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket);
        std::thread::scope(|scope| {
            let sock = socket.clone();
            let s = &s;
            let server = scope.spawn(move || serve_socket(s, &sock));
            // Wait for the listener to come up.
            let mut conn = None;
            for _ in 0..100 {
                match UnixStream::connect(&socket) {
                    Ok(c) => {
                        conn = Some(c);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            let mut conn = conn.expect("socket comes up");
            let mut conn2 = UnixStream::connect(&socket).expect("second client connects");

            conn.write_all(b"{\"cmd\":\"analyze\",\"entries\":[\"a.php\"]}\n")
                .expect("write");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let r = json::parse(line.trim()).expect("valid response");
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));

            conn2
                .write_all(b"{\"cmd\":\"status\"}\n")
                .expect("write 2");
            let mut reader2 = BufReader::new(conn2.try_clone().expect("clone 2"));
            let mut line2 = String::new();
            reader2.read_line(&mut line2).expect("read 2");
            let st = json::parse(line2.trim()).expect("valid status");
            assert_eq!(st.get("pages_computed").and_then(Json::as_num), Some(1.0));

            // Close the first client before shutdown: the server drains
            // open connections (waits for their EOF) before exiting.
            drop(reader);
            drop(conn);
            conn2
                .write_all(b"{\"cmd\":\"shutdown\"}\n")
                .expect("shutdown write");
            line2.clear();
            reader2.read_line(&mut line2).expect("shutdown ack");
            drop(reader2);
            drop(conn2);
            server.join().expect("no panic").expect("clean exit");
        });
        assert!(!socket.exists(), "socket file cleaned up");
    }

    #[test]
    fn serve_options_parse_and_reject() {
        let opts = ServeOptions::parse(&[
            "--dir".into(),
            "/tmp/app".into(),
            "--no-disk-cache".into(),
            "--timeout-ms".into(),
            "500".into(),
        ])
        .expect("parses");
        assert_eq!(opts.dir, PathBuf::from("/tmp/app"));
        assert!(opts.no_disk_cache);
        assert_eq!(opts.timeout_ms, Some(500.0));
        assert_eq!(opts.cache_dir, PathBuf::from("/tmp/app/.strtaint-cache"));

        assert!(ServeOptions::parse(&[]).is_err(), "--dir required");
        assert!(ServeOptions::parse(&["--dir".into()]).is_err(), "value required");
        assert!(
            ServeOptions::parse(&["--dir".into(), "x".into(), "--bogus".into()]).is_err(),
            "unknown flags rejected"
        );
    }
}
