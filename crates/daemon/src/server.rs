//! The fleet-scale execution model: routing, workspace resolution, the
//! stdio transport, and the `strtaint serve` flag surface.
//!
//! Two serving paths share one protocol:
//!
//! - **stdio** ([`serve_lines`] / [`serve_server_lines`]): one serial
//!   client, requests executed inline.
//! - **Unix socket** ([`serve_socket`], in [`crate::socket`]): many
//!   concurrent clients. Each connection gets a cheap reader thread,
//!   but all real work (`analyze` / `profile` / `invalidate` /
//!   `batch`) funnels
//!   through the [`ServerState`]'s bounded [`WorkerPool`] —
//!   `--workers` threads, a priority-aware queue capped at
//!   `--queue-depth`. A full queue sheds load with
//!   `{"ok":false,"error":"overloaded","retry_after_ms":…}` instead of
//!   queueing without bound, and a request's `deadline_ms` cancels it
//!   if it cannot start in time.
//!
//! State is sharded per workspace ([`WorkspaceMap`]): requests carry
//! an optional `workspace` field; each shard has independent locks, so
//! traffic in one workspace cannot block or observe another.
//!
//! Shutdown is graceful *and bounded*: the listener stops accepting,
//! queued work gets `--drain-ms` to finish, and whatever is still
//! pending past the deadline is answered with a structured
//! `shutting_down` error — a wedged client cannot hold the process
//! open forever.

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use strtaint::{Config, Vfs};
use strtaint_obs::{Histogram, Registry, metrics::DURATION_US_BOUNDS};

use crate::json::Json;
use crate::pool::{default_workers, WorkerPool};
use crate::protocol::{
    dispatch_cmd, handle_line, parse_request, request_deadline, request_priority, Handled,
};
#[cfg(unix)]
pub use crate::socket::serve_socket;
use crate::state::{snapshot_to_json, DaemonState};
use crate::store::ArtifactStore;
use crate::workspace::{canonical_key, WorkspaceLoader, WorkspaceMap};

/// Serves newline-delimited JSON requests from `input`, writing one
/// response line per request to `output`, against a single workspace.
/// Returns `Ok(true)` when the client requested shutdown, `Ok(false)`
/// on EOF.
pub fn serve_lines<R, W>(state: &DaemonState, input: R, mut output: W) -> io::Result<bool>
where
    R: BufRead,
    W: Write,
{
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let handled = handle_line(state, &line);
        let mut response = String::new();
        handled.response.write(&mut response);
        response.push('\n');
        output.write_all(response.as_bytes())?;
        output.flush()?;
        if handled.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Pool and drain configuration for a [`ServerState`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests (default `min(cores, 8)`).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it shed load.
    pub queue_depth: usize,
    /// Graceful-shutdown drain budget.
    pub drain: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: default_workers(),
            queue_depth: 64,
            drain: Duration::from_millis(2_000),
        }
    }
}

/// The process-wide serving state: the workspace shard map, the
/// bounded worker pool, and server-level metrics.
pub struct ServerState {
    workspaces: WorkspaceMap,
    pool: WorkerPool,
    registry: Registry,
    pub(crate) request_us: Arc<Histogram>,
    drain: Duration,
    shutting_down: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("workspaces", &self.workspaces.keys())
            .field("pool", &self.pool)
            .finish()
    }
}

/// Where one routed request executes.
pub enum Routed {
    /// Answered inline (errors, status, metrics, shutdown).
    Ready(Handled),
    /// Workspace-bound work for the pool (or inline on stdio).
    Work(QueuedWork),
}

/// A workspace-bound request ready to execute on any thread.
pub struct QueuedWork {
    state: Arc<DaemonState>,
    cmd: String,
    request: Json,
    /// Queue priority (0–9, higher first).
    pub priority: u8,
    /// Remaining budget: if still queued when it elapses, the request
    /// is cancelled with a `deadline_exceeded` error.
    pub deadline: Option<Duration>,
}

impl QueuedWork {
    /// Executes the request against its workspace.
    pub fn run(self) -> Handled {
        dispatch_cmd(&self.state, &self.cmd, &self.request)
    }
}

pub(crate) fn error_response(message: impl Into<String>) -> Handled {
    Handled {
        response: Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("error", Json::Str(message.into())),
        ]),
        shutdown: false,
    }
}

/// The structured shed-load response for a saturated queue.
pub(crate) fn overloaded_response(retry_after_ms: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("overloaded".to_owned())),
        ("retry_after_ms", Json::Num(retry_after_ms as f64)),
    ])
}

/// The structured response for requests caught by shutdown.
pub(crate) fn shutting_down_response() -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("shutting_down".to_owned())),
    ])
}

/// The structured response for a queued request whose deadline passed.
pub(crate) fn deadline_response() -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("deadline_exceeded".to_owned())),
    ])
}

impl ServerState {
    /// Builds a server over `workspaces` with `config`.
    pub fn new(workspaces: WorkspaceMap, config: ServerConfig) -> ServerState {
        let registry = Registry::new();
        let pool = WorkerPool::new(config.workers, config.queue_depth, &registry);
        let request_us = registry.histogram("daemon.request_us", DURATION_US_BOUNDS);
        ServerState {
            workspaces,
            pool,
            registry,
            request_us,
            drain: config.drain,
            shutting_down: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
        }
    }

    /// Convenience: a single-workspace server with default pool
    /// settings (tests, embedding).
    pub fn single(key: &str, state: DaemonState) -> ServerState {
        ServerState::new(
            WorkspaceMap::new(key, Arc::new(state)),
            ServerConfig::default(),
        )
    }

    /// The workspace shard map.
    pub fn workspaces(&self) -> &WorkspaceMap {
        &self.workspaces
    }

    /// The bounded worker pool (fault hooks live here).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The server-level metrics registry (queue depth, shed count,
    /// request latency).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// `true` once any client has requested shutdown.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Flags shutdown and starts the drain clock. Idempotent.
    pub fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            let mut deadline = self
                .drain_deadline
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            *deadline = Some(Instant::now() + self.drain);
        }
    }

    /// The instant after which connections stop waiting for clients.
    pub fn drain_deadline(&self) -> Option<Instant> {
        *self
            .drain_deadline
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Flushes the pool within the drain budget (see
    /// [`WorkerPool::drain`]).
    pub fn drain_pool(&self) -> usize {
        self.pool.drain(self.drain)
    }

    /// Routes one request line: protocol errors, `status`, `metrics`,
    /// and `shutdown` are answered inline; workspace-bound work is
    /// returned for the caller to execute (pool on the socket path,
    /// inline on stdio).
    pub fn route(&self, line: &str) -> Routed {
        let (request, cmd) = match parse_request(line) {
            Ok(parsed) => parsed,
            Err(handled) => return Routed::Ready(handled),
        };
        let priority = match request_priority(&request) {
            Ok(p) => p,
            Err(handled) => return Routed::Ready(handled),
        };
        let deadline = match request_deadline(&request) {
            Ok(d) => d,
            Err(handled) => return Routed::Ready(handled),
        };
        let workspace = match request.get("workspace") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => {
                return Routed::Ready(error_response("\"workspace\" must be a string"))
            }
        };
        match cmd.as_str() {
            "shutdown" => {
                self.begin_shutdown();
                Routed::Ready(Handled {
                    response: Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("shutdown", Json::Bool(true)),
                    ]),
                    shutdown: true,
                })
            }
            "status" => Routed::Ready(self.server_status(workspace.as_deref(), &request)),
            "metrics" => Routed::Ready(self.server_metrics(workspace.as_deref())),
            "analyze" | "profile" | "invalidate" | "batch" => {
                match self.workspaces.resolve(workspace.as_deref()) {
                    Ok((_, state)) => {
                        state.counters.requests.inc();
                        Routed::Work(QueuedWork {
                            state,
                            cmd,
                            request,
                            priority,
                            deadline,
                        })
                    }
                    Err(e) => Routed::Ready(error_response(e)),
                }
            }
            other => Routed::Ready(error_response(format!("unknown cmd {other:?}"))),
        }
    }

    /// `status`, augmented with the serving layer: the resolved
    /// workspace key, the full workspace list, and queue health.
    fn server_status(&self, workspace: Option<&str>, request: &Json) -> Handled {
        let (key, state) = match self.workspaces.resolve(workspace) {
            Ok(resolved) => resolved,
            Err(e) => return error_response(e),
        };
        state.counters.requests.inc();
        let mut handled = dispatch_cmd(&state, "status", request);
        if let Json::Obj(members) = &mut handled.response {
            members.push(("workspace".to_owned(), Json::Str(key)));
            members.push((
                "workspaces".to_owned(),
                Json::Arr(
                    self.workspaces
                        .keys()
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            ));
            members.push((
                "queue_depth".to_owned(),
                Json::Num(self.registry.gauge("daemon.queue_depth").get() as f64),
            ));
            members.push((
                "shed".to_owned(),
                Json::Num(self.registry.counter("daemon.shed").get() as f64),
            ));
            members.push(("workers".to_owned(), Json::Num(self.pool.workers() as f64)));
        }
        handled
    }

    /// `metrics`: with a `workspace` field, that shard's registry;
    /// without one, the default shard's registry flat-merged with the
    /// server registry (queue depth, shed, request latency) plus every
    /// other workspace's metrics namespaced as `ws.<key>.<metric>`.
    fn server_metrics(&self, workspace: Option<&str>) -> Handled {
        if let Some(name) = workspace {
            return match self.workspaces.resolve(Some(name)) {
                Ok((key, state)) => {
                    state.counters.requests.inc();
                    Handled {
                        response: Json::obj(vec![
                            ("ok", Json::Bool(true)),
                            ("workspace", Json::Str(key)),
                            ("metrics", state.metrics_json()),
                        ]),
                        shutdown: false,
                    }
                }
                Err(e) => error_response(e),
            };
        }
        let default_key = self.workspaces.default_key().to_owned();
        let default_state = self.workspaces.default_state();
        default_state.counters.requests.inc();
        let mut members = match default_state.metrics_json() {
            Json::Obj(m) => m,
            other => vec![("default".to_owned(), other)],
        };
        for (name, snap) in self.registry.snapshot() {
            members.push((name, snapshot_to_json(snap)));
        }
        for (key, state) in self.workspaces.all() {
            if key == default_key {
                continue;
            }
            if let Json::Obj(ws_members) = state.metrics_json() {
                for (name, value) in ws_members {
                    members.push((format!("ws.{key}.{name}"), value));
                }
            }
        }
        Handled {
            response: Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("metrics", Json::Obj(members)),
            ]),
            shutdown: false,
        }
    }

    /// Handles one line fully inline (the stdio path): routing plus
    /// immediate execution of workspace work.
    pub fn handle_inline(&self, line: &str) -> Handled {
        let t0 = Instant::now();
        let handled = if self.is_shutting_down() {
            Handled {
                response: shutting_down_response(),
                shutdown: false,
            }
        } else {
            match self.route(line) {
                Routed::Ready(handled) => handled,
                Routed::Work(work) => work.run(),
            }
        };
        self.request_us.observe(elapsed_us(t0));
        handled
    }
}

/// Elapsed microseconds since `t0`, saturating.
pub(crate) fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Serves newline-delimited requests from `input` against a
/// multi-workspace server, inline (the stdio transport — one serial
/// client needs no queue). Returns `Ok(true)` on client-requested
/// shutdown, `Ok(false)` on EOF.
pub fn serve_server_lines<R, W>(
    server: &ServerState,
    input: R,
    mut output: W,
) -> io::Result<bool>
where
    R: BufRead,
    W: Write,
{
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let handled = server.handle_inline(&line);
        let mut response = String::new();
        handled.response.write(&mut response);
        response.push('\n');
        output.write_all(response.as_bytes())?;
        output.flush()?;
        if handled.shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Options parsed from `strtaint serve` flags.
#[derive(Debug)]
pub struct ServeOptions {
    /// Project root to load into the resident [`Vfs`] (the default
    /// workspace).
    pub dir: PathBuf,
    /// Additional workspace roots to preload.
    pub workspaces: Vec<PathBuf>,
    /// When set, serve a Unix socket at this path instead of stdio.
    pub socket: Option<PathBuf>,
    /// Artifact-store root; default `<dir>/.strtaint-cache`.
    pub cache_dir: PathBuf,
    /// Disable the on-disk store entirely (memory-only daemon).
    pub no_disk_cache: bool,
    /// Base per-page wall-clock budget in milliseconds.
    pub timeout_ms: Option<f64>,
    /// Base per-page fuel budget.
    pub fuel: Option<f64>,
    /// Worker threads (default `min(cores, 8)`).
    pub workers: usize,
    /// Bounded request-queue depth (default 64).
    pub queue_depth: usize,
    /// Graceful-shutdown drain budget in milliseconds (default 2000).
    pub drain_ms: u64,
}

impl ServeOptions {
    /// Parses the argument list after `serve`. Returns a usage message
    /// on any unrecognized or incomplete flag.
    pub fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let mut dir: Option<PathBuf> = None;
        let mut workspaces = Vec::new();
        let mut socket = None;
        let mut cache_dir: Option<PathBuf> = None;
        let mut no_disk_cache = false;
        let mut timeout_ms = None;
        let mut fuel = None;
        let mut workers = default_workers();
        let mut queue_depth = 64usize;
        let mut drain_ms = 2_000u64;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
                "--workspace" => workspaces.push(PathBuf::from(value("--workspace")?)),
                "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
                "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
                "--no-disk-cache" => no_disk_cache = true,
                "--timeout-ms" => {
                    timeout_ms = Some(
                        value("--timeout-ms")?
                            .parse::<f64>()
                            .map_err(|e| format!("--timeout-ms: {e}"))?,
                    )
                }
                "--fuel" => {
                    fuel = Some(
                        value("--fuel")?
                            .parse::<f64>()
                            .map_err(|e| format!("--fuel: {e}"))?,
                    )
                }
                "--workers" => {
                    workers = value("--workers")?
                        .parse::<usize>()
                        .map_err(|e| format!("--workers: {e}"))?
                        .max(1);
                }
                "--queue-depth" => {
                    queue_depth = value("--queue-depth")?
                        .parse::<usize>()
                        .map_err(|e| format!("--queue-depth: {e}"))?
                        .max(1);
                }
                "--drain-ms" => {
                    drain_ms = value("--drain-ms")?
                        .parse::<u64>()
                        .map_err(|e| format!("--drain-ms: {e}"))?;
                }
                other => return Err(format!("unknown flag {other:?} (see `strtaint serve --help`)")),
            }
        }
        let dir = dir.ok_or("serve needs --dir <project-root>")?;
        let cache_dir = cache_dir.unwrap_or_else(|| dir.join(".strtaint-cache"));
        Ok(ServeOptions {
            dir,
            workspaces,
            socket,
            cache_dir,
            no_disk_cache,
            timeout_ms,
            fuel,
            workers,
            queue_depth,
            drain_ms,
        })
    }

    /// The base config derived from the budget flags.
    fn base_config(&self) -> Config {
        let mut config = Config::default();
        if let Some(ms) = self.timeout_ms {
            if ms.is_finite() && ms > 0.0 {
                config.timeout = Some(Duration::from_secs_f64(ms / 1e3));
            }
        }
        if let Some(fuel) = self.fuel {
            if fuel.is_finite() && fuel >= 1.0 {
                config.fuel = Some(fuel as u64);
            }
        }
        config
    }
}

/// Builds the resident state for one workspace: loads the tree,
/// applies base budget overrides, and opens the artifact store
/// (falling back to a memory-only workspace, with a warning on
/// `stderr`, when the store directory cannot be created).
pub fn build_state(opts: &ServeOptions) -> io::Result<Arc<DaemonState>> {
    let vfs = Vfs::from_dir(&opts.dir)?;
    let config = opts.base_config();
    let store = if opts.no_disk_cache {
        None
    } else {
        match ArtifactStore::open(&opts.cache_dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!(
                    "strtaint serve: cannot open cache dir {}: {e}; running without persistence",
                    opts.cache_dir.display()
                );
                None
            }
        }
    };
    Ok(Arc::new(DaemonState::new(vfs, config, store)))
}

/// Builds the full multi-workspace server for `opts`: the default
/// workspace from `--dir`, each `--workspace` preloaded, lazy loading
/// enabled for further roots named in requests.
pub fn build_server(opts: &ServeOptions) -> io::Result<ServerState> {
    let default_state = build_state(opts)?;
    let default_key = canonical_key(&opts.dir.display().to_string());
    let loader = WorkspaceLoader {
        config: opts.base_config(),
        disk_cache: !opts.no_disk_cache,
    };
    let workspaces =
        WorkspaceMap::new(&default_key, default_state).with_loader(loader.clone());
    for root in &opts.workspaces {
        let key = canonical_key(&root.display().to_string());
        if key == default_key {
            continue;
        }
        match Vfs::from_dir(root) {
            Ok(vfs) => {
                let store = if opts.no_disk_cache {
                    None
                } else {
                    ArtifactStore::open(&root.join(".strtaint-cache")).ok()
                };
                workspaces.insert(
                    &key,
                    Arc::new(DaemonState::new(vfs, loader.config.clone(), store)),
                );
            }
            Err(e) => {
                eprintln!("strtaint serve: cannot load workspace {key}: {e}");
            }
        }
    }
    Ok(ServerState::new(
        workspaces,
        ServerConfig {
            workers: opts.workers,
            queue_depth: opts.queue_depth,
            drain: Duration::from_millis(opts.drain_ms),
        },
    ))
}

/// Entry point for `strtaint serve <args>`. Returns the process exit
/// code.
pub fn cli_serve(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{}", SERVE_USAGE);
        return 0;
    }
    let opts = match ServeOptions::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("strtaint serve: {e}\n{SERVE_USAGE}");
            return 2;
        }
    };
    let server = match build_server(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("strtaint serve: cannot load {}: {e}", opts.dir.display());
            return 1;
        }
    };
    let (files, lines) = server.workspaces().default_state().tree_size();
    eprintln!(
        "strtaint serve: {files} files / {lines} lines resident across {} workspace(s); \
         {} worker(s), queue depth {}",
        server.workspaces().keys().len(),
        server.pool().workers(),
        server.pool().queue_depth(),
    );

    #[cfg(unix)]
    if let Some(socket) = &opts.socket {
        eprintln!("strtaint serve: listening on {}", socket.display());
        return match serve_socket(&server, socket) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("strtaint serve: socket error: {e}");
                1
            }
        };
    }
    #[cfg(not(unix))]
    if opts.socket.is_some() {
        eprintln!("strtaint serve: --socket is only supported on Unix");
        return 2;
    }

    let stdin = io::stdin();
    let stdout = io::stdout();
    match serve_server_lines(&server, stdin.lock(), stdout.lock()) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("strtaint serve: I/O error: {e}");
            1
        }
    }
}

const SERVE_USAGE: &str = "usage: strtaint serve --dir <project-root> [options]
  --dir <path>        default workspace root to keep resident (required)
  --workspace <path>  preload an additional workspace root (repeatable)
  --socket <path>     serve a Unix socket instead of stdin/stdout
  --cache-dir <path>  artifact store root (default <dir>/.strtaint-cache)
  --no-disk-cache     keep all state in memory only
  --timeout-ms <n>    base per-page wall-clock budget
  --fuel <n>          base per-page fuel budget
  --workers <n>       worker threads (default min(cores, 8))
  --queue-depth <n>   bounded request queue; beyond it requests shed
                      with {\"error\":\"overloaded\",\"retry_after_ms\":n}
  --drain-ms <n>      graceful-shutdown drain budget (default 2000)

Protocol: one JSON request per input line, one JSON response per line.
Optional per-request routing fields: \"workspace\" (shard root),
\"priority\" (0-9, higher first), \"deadline_ms\" (cancel if still
queued when the budget elapses).
  {\"cmd\":\"analyze\",\"entries\":[\"index.php\"],\"xss\":false}
  {\"cmd\":\"invalidate\",\"path\":\"lib.php\",\"contents\":\"<?php ...\"}
  {\"cmd\":\"batch\",\"ops\":[{\"cmd\":\"invalidate\",...},{\"cmd\":\"analyze\",...}]}
  {\"cmd\":\"status\"}
  {\"cmd\":\"metrics\"}
  {\"cmd\":\"shutdown\"}";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Json};

    fn state() -> DaemonState {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "<?php $r = $DB->query(\"SELECT 1\");");
        DaemonState::new(vfs, Config::default(), None)
    }

    #[test]
    fn line_loop_answers_each_request_and_stops_on_shutdown() {
        let s = state();
        let input = "{\"cmd\":\"status\"}\n\n{\"cmd\":\"shutdown\"}\n{\"cmd\":\"status\"}\n";
        let mut output = Vec::new();
        let shut = serve_lines(&s, input.as_bytes(), &mut output).expect("serves");
        assert!(shut, "shutdown honored");
        let lines: Vec<&str> = std::str::from_utf8(&output)
            .expect("utf8")
            .lines()
            .collect();
        assert_eq!(lines.len(), 2, "blank line skipped, post-shutdown line unread");
        let first = json::parse(lines[0]).expect("valid JSON response");
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        let second = json::parse(lines[1]).expect("valid JSON response");
        assert_eq!(second.get("shutdown").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn eof_ends_the_loop_cleanly() {
        let s = state();
        let mut output = Vec::new();
        let shut = serve_lines(&s, "{\"cmd\":\"status\"}\n".as_bytes(), &mut output)
            .expect("serves");
        assert!(!shut);
    }

    #[test]
    fn server_lines_route_workspaces_and_batch() {
        let server = ServerState::single("ws0", state());
        let mut ws1 = Vfs::new();
        ws1.add("b.php", "<?php $r = $DB->query(\"SELECT 2\");");
        server.workspaces().insert(
            "ws1",
            Arc::new(DaemonState::new(ws1, Config::default(), None)),
        );
        let input = "{\"cmd\":\"analyze\",\"entries\":[\"b.php\"],\"workspace\":\"ws1\"}\n\
                     {\"cmd\":\"analyze\",\"entries\":[\"b.php\"]}\n\
                     {\"cmd\":\"batch\",\"workspace\":\"ws1\",\"ops\":[{\"cmd\":\"status\"}]}\n\
                     {\"cmd\":\"status\"}\n\
                     {\"cmd\":\"shutdown\"}\n";
        let mut output = Vec::new();
        let shut =
            serve_server_lines(&server, input.as_bytes(), &mut output).expect("serves");
        assert!(shut);
        let lines: Vec<Json> = std::str::from_utf8(&output)
            .expect("utf8")
            .lines()
            .map(|l| json::parse(l).expect("valid response"))
            .collect();
        assert_eq!(lines.len(), 5);
        // ws1 has b.php; the default workspace does not.
        assert_eq!(lines[0].get("ok").and_then(Json::as_bool), Some(true));
        let pages = lines[0].get("pages").and_then(Json::as_arr).expect("pages");
        assert_eq!(pages[0].get("skipped"), Some(&Json::Null));
        let default_pages = lines[1].get("pages").and_then(Json::as_arr).expect("pages");
        assert!(
            default_pages[0]
                .get("skipped")
                .and_then(Json::as_str)
                .is_some(),
            "b.php does not exist in the default workspace"
        );
        // Batch routed to ws1: status sees one file.
        let results = lines[2].get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results[0].get("files").and_then(Json::as_num), Some(1.0));
        // Server status lists both workspaces.
        let wss = lines[3]
            .get("workspaces")
            .and_then(Json::as_arr)
            .expect("workspaces");
        assert_eq!(wss.len(), 2);
        assert!(lines[3].get("workers").and_then(Json::as_num).is_some());
    }

    #[test]
    fn serve_options_parse_and_reject() {
        let opts = ServeOptions::parse(&[
            "--dir".into(),
            "/tmp/app".into(),
            "--no-disk-cache".into(),
            "--timeout-ms".into(),
            "500".into(),
            "--workers".into(),
            "3".into(),
            "--queue-depth".into(),
            "16".into(),
            "--drain-ms".into(),
            "750".into(),
            "--workspace".into(),
            "/tmp/other".into(),
        ])
        .expect("parses");
        assert_eq!(opts.dir, PathBuf::from("/tmp/app"));
        assert!(opts.no_disk_cache);
        assert_eq!(opts.timeout_ms, Some(500.0));
        assert_eq!(opts.cache_dir, PathBuf::from("/tmp/app/.strtaint-cache"));
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.queue_depth, 16);
        assert_eq!(opts.drain_ms, 750);
        assert_eq!(opts.workspaces, vec![PathBuf::from("/tmp/other")]);

        assert!(ServeOptions::parse(&[]).is_err(), "--dir required");
        assert!(ServeOptions::parse(&["--dir".into()]).is_err(), "value required");
        assert!(
            ServeOptions::parse(&["--dir".into(), "x".into(), "--bogus".into()]).is_err(),
            "unknown flags rejected"
        );
        assert!(
            ServeOptions::parse(&["--dir".into(), "x".into(), "--workers".into(), "q".into()])
                .is_err(),
            "non-numeric workers rejected"
        );
    }
}
