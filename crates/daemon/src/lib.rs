//! `strtaint serve`: a persistent incremental-analysis daemon for
//! **strtaint** with an on-disk artifact cache (DESIGN.md §5d).
//!
//! The batch CLI pays the full cost of every run: load the tree, lower
//! every file, build and prepare every grammar, answer every Bar-Hillel
//! intersection query. This crate keeps all of that *resident* in a
//! long-running process — the [`Vfs`](strtaint::Vfs), the AST→IR
//! [`SummaryCache`](strtaint::SummaryCache), the prepared reference
//! automata — and re-checks only pages whose transitive inputs changed.
//!
//! The moving parts:
//!
//! - [`state::DaemonState`] — the resident state and the incremental
//!   driver. Every verdict carries its freshness evidence (content hash
//!   of each input file, the project path-set digest, the full config
//!   fingerprint); replay happens only when all of it matches the live
//!   tree, so a replayed answer is byte-identical to what re-analysis
//!   would produce.
//! - [`store::ArtifactStore`] — the versioned on-disk cache under
//!   `.strtaint-cache/`. Advisory by construction: entries are written
//!   atomically, re-validated on every load, and dropped (never
//!   trusted) on any corruption or version mismatch. A cold daemon
//!   start over an unchanged tree replays stored verdicts with zero
//!   new intersection queries.
//! - [`protocol`] — newline-delimited JSON requests (`analyze`,
//!   `invalidate`, `status`, `shutdown`) and their responses.
//! - [`workspace`] — multi-tenant sharding: one daemon, many
//!   independent workspace roots, each with its own state and locks.
//! - [`pool`] — the bounded, priority-aware worker pool with
//!   shed-load backpressure, per-request deadlines, bounded drain,
//!   and fault-injection hooks for the soak suite.
//! - [`server`] — routing, the stdin/stdout line loop, and the
//!   `strtaint serve` flag parsing ([`server::cli_serve`]);
//!   [`socket`] — the concurrent Unix-socket transport whose request
//!   execution is bounded by the pool.
//! - [`json`] — a dependency-free JSON parser and deterministic writer
//!   whose output is a fixpoint of its parser (the property replay
//!   byte-identity rests on).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod json;
pub mod pool;
pub mod protocol;
pub mod server;
#[cfg(unix)]
pub mod socket;
pub mod state;
pub mod store;
pub mod verdict;
pub mod workspace;

pub use pool::{ExpireReason, PoolFault, StallGate, SubmitError, WorkerPool};
pub use server::{
    cli_serve, serve_lines, serve_server_lines, ServeOptions, ServerConfig, ServerState,
};
pub use state::{DaemonState, PageOutcome};
pub use store::ArtifactStore;
pub use workspace::{canonical_key, WorkspaceLoader, WorkspaceMap};
