//! `strtaint serve`: a persistent incremental-analysis daemon for
//! **strtaint** with an on-disk artifact cache (DESIGN.md §5d).
//!
//! The batch CLI pays the full cost of every run: load the tree, lower
//! every file, build and prepare every grammar, answer every Bar-Hillel
//! intersection query. This crate keeps all of that *resident* in a
//! long-running process — the [`Vfs`](strtaint::Vfs), the AST→IR
//! [`SummaryCache`](strtaint::SummaryCache), the prepared reference
//! automata — and re-checks only pages whose transitive inputs changed.
//!
//! The moving parts:
//!
//! - [`state::DaemonState`] — the resident state and the incremental
//!   driver. Every verdict carries its freshness evidence (content hash
//!   of each input file, the project path-set digest, the full config
//!   fingerprint); replay happens only when all of it matches the live
//!   tree, so a replayed answer is byte-identical to what re-analysis
//!   would produce.
//! - [`store::ArtifactStore`] — the versioned on-disk cache under
//!   `.strtaint-cache/`. Advisory by construction: entries are written
//!   atomically, re-validated on every load, and dropped (never
//!   trusted) on any corruption or version mismatch. A cold daemon
//!   start over an unchanged tree replays stored verdicts with zero
//!   new intersection queries.
//! - [`protocol`] — newline-delimited JSON requests (`analyze`,
//!   `invalidate`, `status`, `shutdown`) and their responses.
//! - [`server`] — the transports: stdin/stdout line loop and a
//!   concurrent Unix-socket listener, plus the `strtaint serve` flag
//!   parsing ([`server::cli_serve`]).
//! - [`json`] — a dependency-free JSON parser and deterministic writer
//!   whose output is a fixpoint of its parser (the property replay
//!   byte-identity rests on).

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod json;
pub mod protocol;
pub mod server;
pub mod state;
pub mod store;
pub mod verdict;

pub use server::{cli_serve, serve_lines, ServeOptions};
pub use state::{DaemonState, PageOutcome};
pub use store::ArtifactStore;
