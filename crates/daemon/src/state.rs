//! The daemon's resident state and the incremental analysis driver.
//!
//! One [`DaemonState`] lives for the whole process: the [`Vfs`], a
//! content-hash index over it, the shared [`SummaryCache`] (AST→IR
//! lowering), the prepared-grammar [`Checker`], the in-memory verdict
//! map, and the optional on-disk [`ArtifactStore`]. Requests from any
//! number of clients funnel into `&self` methods; interior locks are
//! held only around map/tree access, never across an analysis, so a
//! slow page computation cannot serialize other clients.
//!
//! Dirty-set invalidation is *pull-based*: verdicts are never eagerly
//! expired. Each carries its freshness evidence (dependency content
//! hashes + path-set digest + config fingerprint), and every `analyze`
//! request re-checks that evidence against the live tree — O(deps) hash
//! lookups per page. An edit via `invalidate` just updates the tree and
//! the hash index; the pages whose evidence no longer matches recompute
//! on their next request, everything else replays.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use strtaint::{
    analyze_page_cached, analyze_page_policies_cached, analyze_page_xss_cached, Config,
    EngineStats, PageReport, PolicyChecker, SummaryCache, Vfs,
};
use strtaint_analysis::frontend::FrontendSet;
use strtaint_analysis::summary::content_hash;
use strtaint_analysis::vfs::normalize;
use strtaint_obs::{Counter, Histogram, MetricSnapshot, Registry, metrics::DURATION_US_BOUNDS};

use crate::json::Json;
use crate::store::ArtifactStore;
use crate::verdict::{page_to_json, tree_digest, verdict_key, Verdict};

/// Whether a page's verdict came from the engine or from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOutcome {
    /// Bar-Hillel queries actually ran for this page.
    Computed,
    /// A stored verdict was replayed; zero engine work.
    Replayed,
}

/// Lifetime counters surfaced by `status` and the `metrics` verb.
///
/// Registry-backed: each counter is registered in the daemon's
/// instance [`Registry`], so the `metrics` verb reports them without a
/// second bookkeeping path, and a daemon restart (fresh `DaemonState`,
/// fresh registry) starts them from zero even when the artifact store
/// replays every verdict.
#[derive(Debug)]
pub struct DaemonCounters {
    /// Pages analyzed by running the engine.
    pub pages_computed: Arc<Counter>,
    /// Pages answered by verdict replay.
    pub pages_replayed: Arc<Counter>,
    /// Requests handled (all commands).
    pub requests: Arc<Counter>,
}

impl DaemonCounters {
    fn new(registry: &Registry) -> DaemonCounters {
        DaemonCounters {
            pages_computed: registry.counter("daemon.pages_computed"),
            pages_replayed: registry.counter("daemon.pages_replayed"),
            requests: registry.counter("daemon.requests"),
        }
    }
}

/// The resident state behind a `strtaint serve` process.
pub struct DaemonState {
    /// The project tree. Write-locked only by `invalidate`.
    vfs: RwLock<Vfs>,
    /// `path → content hash`, kept in lockstep with `vfs` — verdict
    /// freshness checks are map lookups, not re-hashes.
    hashes: RwLock<HashMap<String, u64>>,
    /// Digest of the current path set (see `verdict::tree_digest`).
    tree: AtomicU64,
    /// Base configuration; per-request budget overrides derive from it.
    config: Config,
    /// `config.replay_fingerprint()`, cached (frontend-free — see
    /// [`crate::verdict::verdict_key`]).
    config_fp: u64,
    /// The base config's frontend set: extension dispatch for verdict
    /// frontend evidence and freshness checks.
    frontends: FrontendSet,
    /// Prepared automata for every built-in policy, page-independent.
    checker: PolicyChecker,
    /// Shared AST→IR summary cache (content-hash keyed, so edits
    /// invalidate themselves).
    summaries: SummaryCache,
    /// Resident verdicts by cache key.
    verdicts: Mutex<HashMap<u64, Arc<Verdict>>>,
    /// Optional persistence; `None` = memory-only daemon.
    store: Option<ArtifactStore>,
    /// Engine work performed by *this process* (replays add nothing).
    engine: Mutex<EngineStats>,
    /// Instance metrics registry behind the `metrics` verb.
    registry: Registry,
    /// Request latency, replay path (microseconds).
    replay_us: Arc<Histogram>,
    /// Request latency, compute path (microseconds).
    compute_us: Arc<Histogram>,
    /// Request/page counters.
    pub counters: DaemonCounters,
}

impl std::fmt::Debug for DaemonState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonState")
            .field("files", &self.vfs.read().map(|v| v.len()).unwrap_or(0))
            .field("config_fp", &self.config_fp)
            .field("persistent", &self.store.is_some())
            .finish()
    }
}

impl DaemonState {
    /// Creates a daemon over `vfs` with `config`, persisting artifacts
    /// through `store` when given.
    pub fn new(vfs: Vfs, config: Config, store: Option<ArtifactStore>) -> DaemonState {
        let hashes: HashMap<String, u64> = vfs
            .paths()
            .map(|p| (p.to_owned(), content_hash(vfs.get(p).unwrap_or(b""))))
            .collect();
        let tree = tree_digest(vfs.paths());
        let config_fp = config.replay_fingerprint();
        let frontends = FrontendSet::from_config(&config);
        let registry = Registry::new();
        let counters = DaemonCounters::new(&registry);
        let replay_us = registry.histogram("daemon.replay_us", DURATION_US_BOUNDS);
        let compute_us = registry.histogram("daemon.compute_us", DURATION_US_BOUNDS);
        let state = DaemonState {
            vfs: RwLock::new(vfs),
            hashes: RwLock::new(hashes),
            tree: AtomicU64::new(tree),
            config,
            config_fp,
            frontends,
            checker: PolicyChecker::new(),
            summaries: SummaryCache::new(),
            verdicts: Mutex::new(HashMap::new()),
            store,
            engine: Mutex::new(EngineStats::default()),
            registry,
            replay_us,
            compute_us,
            counters,
        };
        state.persist_manifest();
        state
    }

    /// The store, if this daemon persists artifacts.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Engine work performed by this process so far.
    pub fn engine_stats(&self) -> EngineStats {
        *self.engine.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The shared summary cache (hit/miss counters feed `status`).
    pub fn summaries(&self) -> &SummaryCache {
        &self.summaries
    }

    /// Current `(files, lines)` of the resident tree.
    pub fn tree_size(&self) -> (usize, usize) {
        let vfs = self.vfs.read().unwrap_or_else(|p| p.into_inner());
        (vfs.len(), vfs.total_lines())
    }

    fn persist_manifest(&self) {
        if let Some(store) = &self.store {
            let hashes = self.hashes.read().unwrap_or_else(|p| p.into_inner());
            let mut files: Vec<(String, u64)> =
                hashes.iter().map(|(p, h)| (p.clone(), *h)).collect();
            files.sort();
            store.put_manifest(&files, self.config_fp);
        }
    }

    /// Applies one tree delta (`Some` = upsert, `None` = remove).
    /// Returns `true` when the tree actually changed. Stale verdicts
    /// are not expired here — their dependency evidence stops matching,
    /// which the next `analyze` detects.
    pub fn invalidate(&self, path: &str, contents: Option<Vec<u8>>) -> bool {
        let norm = normalize(path);
        let mut vfs = self.vfs.write().unwrap_or_else(|p| p.into_inner());
        let new_hash = contents.as_deref().map(content_hash);
        let changed = vfs.apply_delta(&norm, contents);
        if changed {
            let mut hashes = self.hashes.write().unwrap_or_else(|p| p.into_inner());
            match new_hash {
                Some(h) => {
                    if hashes.insert(norm, h).is_none() {
                        // Path set grew: recompute the layout digest.
                        self.tree.store(tree_digest(vfs.paths()), Ordering::Relaxed);
                    }
                }
                None => {
                    hashes.remove(&norm);
                    self.tree.store(tree_digest(vfs.paths()), Ordering::Relaxed);
                }
            }
        }
        drop(vfs);
        if changed {
            self.persist_manifest();
        }
        changed
    }

    /// `true` when `v`'s freshness evidence matches the live tree and
    /// configuration — the replay precondition. Frontend evidence is
    /// validated per-dependency against the live frontend set: a page
    /// stays replayable across an extension-map flip unless one of
    /// *its* files now dispatches to a different frontend (or a
    /// frontend's lowering fingerprint changed).
    fn is_fresh(&self, v: &Verdict, config_fp: u64, frontends: &FrontendSet) -> bool {
        if v.config_fp != config_fp {
            return false;
        }
        if v.tree != self.tree.load(Ordering::Relaxed) {
            return false;
        }
        {
            let hashes = self.hashes.read().unwrap_or_else(|p| p.into_inner());
            if !v
                .deps
                .iter()
                .all(|(path, hash)| hashes.get(path) == Some(hash))
            {
                return false;
            }
        }
        v.frontends.iter().all(|(path, id, fp)| {
            let live = frontends.for_path(path);
            live.id() == id && live.fingerprint() == *fp
        })
    }

    /// Analyzes (or replays) one page under the given effective config,
    /// returning the rendered page object and where it came from.
    ///
    /// The per-request budget lives inside `config` (`timeout`/`fuel`):
    /// each page gets a fresh `Budget` from it, so one slow request
    /// degrades soundly inside its own envelope instead of starving
    /// the process.
    pub fn analyze_page(
        &self,
        entry: &str,
        xss: bool,
        config: &Config,
    ) -> (Json, PageOutcome) {
        let t0 = Instant::now();
        let entry = normalize(entry);
        let request_frontends;
        let (config_fp, frontends) = if std::ptr::eq(config, &self.config) {
            (self.config_fp, &self.frontends)
        } else {
            request_frontends = FrontendSet::from_config(config);
            (config.replay_fingerprint(), &request_frontends)
        };
        let key = verdict_key(&entry, xss, config_fp);

        // 1. Resident verdict, still fresh → replay.
        {
            let verdicts = self.verdicts.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = verdicts.get(&key) {
                if self.is_fresh(v, config_fp, frontends) {
                    self.counters.pages_replayed.inc();
                    self.replay_us.observe(elapsed_us(t0));
                    return (v.page.clone(), PageOutcome::Replayed);
                }
            }
        }

        // 2. Stored artifact, validated → adopt and replay.
        if let Some(store) = &self.store {
            if let Some(artifact) = store.get_verdict(key) {
                match Verdict::from_artifact(&artifact) {
                    Some(v)
                        if v.entry == entry
                            && v.xss == xss
                            && self.is_fresh(&v, config_fp, frontends) =>
                    {
                        let v = Arc::new(v);
                        self.verdicts
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .insert(key, Arc::clone(&v));
                        self.counters.pages_replayed.inc();
                        self.replay_us.observe(elapsed_us(t0));
                        return (v.page.clone(), PageOutcome::Replayed);
                    }
                    // Parsable but stale or ill-formed: drop it; the
                    // recompute below overwrites the slot.
                    _ => store.invalidate_verdict(key),
                }
            }
        }

        // 3. Compute. The Vfs read lock is held for the duration of the
        // page analysis; `invalidate` (the only writer) queues behind
        // it, which is exactly the consistency we want — a page is
        // analyzed against one tree snapshot.
        let vfs = self.vfs.read().unwrap_or_else(|p| p.into_inner());
        let report = self.run_isolated(&vfs, &entry, xss, config);
        let page = page_to_json(&report);

        let mut engine = self.engine.lock().unwrap_or_else(|p| p.into_inner());
        engine.merge(&report.engine_stats());
        drop(engine);
        self.counters.pages_computed.inc();
        self.compute_us.observe(elapsed_us(t0));

        // Skipped pages (parse error, panic) are never cached: the
        // failure may be environmental, and replaying a panic verdict
        // would hide recovery.
        if report.skipped.is_none() {
            let deps = self.dep_hashes(&vfs, &report, config);
            let frontend_evidence = deps
                .iter()
                .map(|(path, _)| {
                    let f = frontends.for_path(path);
                    (path.clone(), f.id().to_owned(), f.fingerprint())
                })
                .collect();
            let verdict = Arc::new(Verdict {
                entry: entry.clone(),
                xss,
                policies: config.policies.clone(),
                config_fp,
                tree: self.tree.load(Ordering::Relaxed),
                deps,
                frontends: frontend_evidence,
                page: page.clone(),
            });
            if let Some(store) = &self.store {
                store.put_verdict(key, verdict.to_artifact_body());
            }
            self.verdicts
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(key, verdict);
        }
        (page, PageOutcome::Computed)
    }

    /// The dependency evidence for a fresh report: content hashes of
    /// every input file. Under `backward_slice` the relevance pre-pass
    /// reads the whole tree, so the dependency set is widened to every
    /// file (replay stays sound at the cost of incrementality).
    fn dep_hashes(&self, vfs: &Vfs, report: &PageReport, config: &Config) -> Vec<(String, u64)> {
        let hashes = self.hashes.read().unwrap_or_else(|p| p.into_inner());
        let lookup = |p: &str| {
            hashes
                .get(p)
                .copied()
                .unwrap_or_else(|| content_hash(vfs.get(p).unwrap_or(b"")))
        };
        if config.backward_slice {
            vfs.paths().map(|p| (p.to_owned(), lookup(p))).collect()
        } else {
            report
                .inputs
                .iter()
                .map(|p| (p.clone(), lookup(p)))
                .collect()
        }
    }

    /// Runs one page analysis with panic isolation (a panic becomes a
    /// skipped-page report, exactly like the batch driver).
    fn run_isolated(&self, vfs: &Vfs, entry: &str, xss: bool, config: &Config) -> PageReport {
        let run = || {
            if xss {
                analyze_page_xss_cached(vfs, entry, config, &self.summaries)
            } else if config.policies == [strtaint::policy::SQL_POLICY] {
                // Default policy set: the dedicated SQLCIV path, so
                // daemon responses stay byte-identical to the seed.
                analyze_page_cached(vfs, entry, config, self.checker.sql(), &self.summaries)
            } else {
                analyze_page_policies_cached(vfs, entry, config, &self.checker, &self.summaries)
            }
        };
        match std::panic::catch_unwind(AssertUnwindSafe(run)) {
            Ok(Ok(report)) => report,
            Ok(Err(err)) => PageReport::skipped_page(entry, format!("page skipped: {err}")),
            Err(_) => PageReport::skipped_page(
                entry,
                "page skipped: analyzer panicked".to_owned(),
            ),
        }
    }

    /// The effective config for a request: the base config with the
    /// request's budget overrides applied.
    pub fn effective_config(
        &self,
        timeout_ms: Option<f64>,
        fuel: Option<f64>,
        policies: Option<Vec<String>>,
    ) -> Config {
        let mut config = self.config.clone();
        if let Some(ms) = timeout_ms {
            if ms.is_finite() && ms > 0.0 {
                config.timeout = Some(std::time::Duration::from_secs_f64(ms / 1e3));
            }
        }
        if let Some(fuel) = fuel {
            if fuel.is_finite() && fuel >= 1.0 {
                config.fuel = Some(fuel as u64);
            }
        }
        if let Some(p) = policies {
            // A different policy set is a different config fingerprint,
            // so stored verdicts never cross-contaminate.
            config.policies = p;
        }
        config
    }

    /// The base config (no request overrides).
    pub fn base_config(&self) -> &Config {
        &self.config
    }

    /// Renders the instance metrics registry as one JSON object — the
    /// `metrics` verb's payload.
    ///
    /// The engine and summary-cache counters (everything the CLI's
    /// `--stats` table shows) are mirrored into gauges at snapshot
    /// time, so the verb covers both the daemon's own counters
    /// (requests, replay/compute latency histograms) and the full
    /// [`EngineStats`] without a second bookkeeping path.
    pub fn metrics_json(&self) -> Json {
        let e = self.engine_stats();
        let r = &self.registry;
        r.gauge("engine.queries").set(e.queries);
        r.gauge("engine.normalizations").set(e.normalizations);
        r.gauge("engine.normalizations_saved").set(e.normalizations_saved);
        r.gauge("engine.realized_triples").set(e.realized_triples);
        r.gauge("engine.early_exits").set(e.early_exits);
        r.gauge("engine.completions").set(e.completions);
        r.gauge("qcache.hits").set(e.qcache_hits);
        r.gauge("qcache.misses").set(e.qcache_misses);
        r.gauge("qcache.evictions").set(e.qcache_evictions);
        r.gauge("witness.skipped").set(e.witness_skipped);
        r.gauge("prefilter.skips").set(e.prefilter_skips);
        r.gauge("summary_cache.hits").set(self.summaries.hits());
        r.gauge("summary_cache.misses").set(self.summaries.misses());
        r.gauge("summary_cache.entries").set(self.summaries.len() as u64);
        let members = r
            .snapshot()
            .into_iter()
            .map(|(name, snap)| (name, snapshot_to_json(snap)))
            .collect();
        Json::Obj(members)
    }
}

/// Elapsed microseconds since `t0`, saturating.
fn elapsed_us(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// One metric snapshot as wire JSON: counters and gauges become bare
/// numbers; histograms become `{count, sum, buckets: [{le, n}]}` with
/// `le: null` for the +∞ overflow bucket.
pub(crate) fn snapshot_to_json(snap: MetricSnapshot) -> Json {
    match snap {
        MetricSnapshot::Counter(v) | MetricSnapshot::Gauge(v) => Json::Num(v as f64),
        MetricSnapshot::Histogram { count, sum, buckets } => Json::obj(vec![
            ("count", Json::Num(count as f64)),
            ("sum", Json::Num(sum as f64)),
            (
                "buckets",
                Json::Arr(
                    buckets
                        .into_iter()
                        .map(|(le, n)| {
                            Json::obj(vec![
                                (
                                    "le",
                                    le.map(|v| Json::Num(v as f64)).unwrap_or(Json::Null),
                                ),
                                ("n", Json::Num(n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs_with(pages: &[(&str, &str)]) -> Vfs {
        let mut vfs = Vfs::new();
        for (path, src) in pages {
            vfs.add(*path, *src);
        }
        vfs
    }

    const SAFE: &str = "<?php $r = $DB->query(\"SELECT 1\");";
    const VULN: &str =
        "<?php $id = $_GET['id']; $r = $DB->query(\"SELECT * FROM t WHERE id='$id'\");";

    #[test]
    fn second_analysis_replays_from_memory() {
        let state = DaemonState::new(
            vfs_with(&[("a.php", SAFE)]),
            Config::default(),
            None,
        );
        let cfg = state.base_config().clone();
        let (p1, o1) = state.analyze_page("a.php", false, &cfg);
        let (p2, o2) = state.analyze_page("a.php", false, &cfg);
        assert_eq!(o1, PageOutcome::Computed);
        assert_eq!(o2, PageOutcome::Replayed);
        assert_eq!(p1.to_string(), p2.to_string(), "replay is byte-identical");
    }

    #[test]
    fn edit_invalidates_only_dependents() {
        let state = DaemonState::new(
            vfs_with(&[("a.php", SAFE), ("b.php", SAFE)]),
            Config::default(),
            None,
        );
        let cfg = state.base_config().clone();
        state.analyze_page("a.php", false, &cfg);
        state.analyze_page("b.php", false, &cfg);

        // Editing b.php (no structural change to the path set):
        assert!(state.invalidate("b.php", Some(VULN.as_bytes().to_vec())));

        let (_, oa) = state.analyze_page("a.php", false, &cfg);
        let (pb, ob) = state.analyze_page("b.php", false, &cfg);
        assert_eq!(oa, PageOutcome::Replayed, "untouched page replays");
        assert_eq!(ob, PageOutcome::Computed, "edited page recomputes");
        assert_eq!(pb.get("verified").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn adding_a_file_invalidates_everything() {
        let state = DaemonState::new(
            vfs_with(&[("a.php", SAFE)]),
            Config::default(),
            None,
        );
        let cfg = state.base_config().clone();
        state.analyze_page("a.php", false, &cfg);
        assert!(state.invalidate("new.php", Some(SAFE.as_bytes().to_vec())));
        let (_, o) = state.analyze_page("a.php", false, &cfg);
        assert_eq!(
            o,
            PageOutcome::Computed,
            "layout change conservatively recomputes (dynamic includes read the path set)"
        );
    }

    #[test]
    fn budget_override_does_not_reuse_base_verdicts() {
        let state = DaemonState::new(
            vfs_with(&[("a.php", SAFE)]),
            Config::default(),
            None,
        );
        let base = state.base_config().clone();
        state.analyze_page("a.php", false, &base);
        let tight = state.effective_config(None, Some(5.0), None);
        let (_, o) = state.analyze_page("a.php", false, &tight);
        assert_eq!(
            o,
            PageOutcome::Computed,
            "a different budget is a different config fingerprint"
        );
    }

    #[test]
    fn policy_set_change_does_not_reuse_verdicts() {
        const SHELL: &str = "<?php system(\"ls \" . $_GET['d']);";
        let state = DaemonState::new(
            vfs_with(&[("a.php", SHELL)]),
            Config::default(),
            None,
        );
        let base = state.base_config().clone();
        let (p1, o1) = state.analyze_page("a.php", false, &base);
        assert_eq!(o1, PageOutcome::Computed);
        // Under the default ["sql"] set the system() call is no sink.
        assert_eq!(p1.get("verified").and_then(Json::as_bool), Some(true));

        let shell =
            state.effective_config(None, None, Some(vec!["sql".into(), "shell".into()]));
        let (p2, o2) = state.analyze_page("a.php", false, &shell);
        assert_eq!(
            o2,
            PageOutcome::Computed,
            "a different policy set is a different config fingerprint"
        );
        assert_eq!(p2.get("verified").and_then(Json::as_bool), Some(false));

        // Both verdicts stay resident under their own keys.
        let (_, o3) = state.analyze_page("a.php", false, &base);
        let (_, o4) = state.analyze_page("a.php", false, &shell);
        assert_eq!(o3, PageOutcome::Replayed);
        assert_eq!(o4, PageOutcome::Replayed);
    }

    #[test]
    fn noop_delta_changes_nothing() {
        let state = DaemonState::new(
            vfs_with(&[("a.php", SAFE)]),
            Config::default(),
            None,
        );
        let cfg = state.base_config().clone();
        state.analyze_page("a.php", false, &cfg);
        assert!(!state.invalidate("a.php", Some(SAFE.as_bytes().to_vec())));
        let (_, o) = state.analyze_page("a.php", false, &cfg);
        assert_eq!(o, PageOutcome::Replayed);
    }

    #[test]
    fn skipped_pages_are_never_cached() {
        let state = DaemonState::new(Vfs::new(), Config::default(), None);
        let cfg = state.base_config().clone();
        let (p, o) = state.analyze_page("missing.php", false, &cfg);
        assert_eq!(o, PageOutcome::Computed);
        assert!(p.get("skipped").and_then(Json::as_str).is_some());
        assert_eq!(p.get("verified").and_then(Json::as_bool), Some(false));
        let (_, o2) = state.analyze_page("missing.php", false, &cfg);
        assert_eq!(o2, PageOutcome::Computed, "failures are retried, not replayed");
    }
}
