//! Multi-workspace sharding: one daemon process, many independent
//! resident trees.
//!
//! A [`WorkspaceMap`] holds one [`DaemonState`] per workspace root —
//! each with its own `Vfs`, summary cache, prepared automata, verdict
//! map, metrics registry, and (optionally) on-disk artifact store.
//! Workspaces share *nothing* mutable: a request against workspace A
//! takes only A's locks, so a slow analysis in A can neither block nor
//! observe workspace B. That isolation is what the soak suite pins
//! (per-workspace verdicts identical to serial single-workspace runs).
//!
//! Keys are canonicalized roots: a workspace registered or requested
//! via any spelling of the same directory (`/repo/./x`, a symlink, a
//! relative path) resolves to one shard. Names that are not existing
//! directories are kept verbatim, which is how tests register
//! in-memory workspaces.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

use strtaint::{Config, Vfs};

use crate::state::DaemonState;
use crate::store::ArtifactStore;

/// How `resolve` materializes a workspace that is not yet resident.
#[derive(Debug, Clone)]
pub struct WorkspaceLoader {
    /// Base configuration for lazily loaded workspaces.
    pub config: Config,
    /// Open an [`ArtifactStore`] under `<root>/.strtaint-cache`.
    pub disk_cache: bool,
}

/// The shard map: canonicalized workspace key → resident state.
pub struct WorkspaceMap {
    default_key: String,
    shards: RwLock<BTreeMap<String, Arc<DaemonState>>>,
    loader: Option<WorkspaceLoader>,
}

impl std::fmt::Debug for WorkspaceMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspaceMap")
            .field("default", &self.default_key)
            .field("workspaces", &self.keys())
            .finish()
    }
}

/// Canonical shard key for `name`: the canonicalized path when `name`
/// is an existing directory, the string verbatim otherwise (in-memory
/// workspaces registered under symbolic names).
pub fn canonical_key(name: &str) -> String {
    let p = Path::new(name);
    if p.is_dir() {
        if let Ok(c) = std::fs::canonicalize(p) {
            return c.display().to_string();
        }
    }
    name.to_owned()
}

impl WorkspaceMap {
    /// Creates a map whose default workspace (requests without a
    /// `workspace` field) is `state` under `default_key`.
    pub fn new(default_key: &str, state: Arc<DaemonState>) -> WorkspaceMap {
        let default_key = canonical_key(default_key);
        let mut shards = BTreeMap::new();
        shards.insert(default_key.clone(), state);
        WorkspaceMap {
            default_key,
            shards: RwLock::new(shards),
            loader: None,
        }
    }

    /// Enables lazy loading: a `workspace` field naming an existing
    /// directory that is not yet resident is loaded on first use.
    pub fn with_loader(mut self, loader: WorkspaceLoader) -> WorkspaceMap {
        self.loader = Some(loader);
        self
    }

    /// The default workspace's key.
    pub fn default_key(&self) -> &str {
        &self.default_key
    }

    /// Registers (or replaces) a workspace under `key`.
    pub fn insert(&self, key: &str, state: Arc<DaemonState>) {
        self.shards
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(canonical_key(key), state);
    }

    /// All resident workspace keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.shards
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// The default workspace.
    pub fn default_state(&self) -> Arc<DaemonState> {
        self.shards
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&self.default_key)
            .cloned()
            .unwrap_or_else(|| unreachable!("default workspace is inserted at construction"))
    }

    /// Every `(key, state)` pair, sorted by key.
    pub fn all(&self) -> Vec<(String, Arc<DaemonState>)> {
        self.shards
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Resolves a request's `workspace` field to its shard: `None` is
    /// the default workspace; a known key returns its resident state; a
    /// loadable directory (when a loader is configured) is loaded once
    /// and cached. Returns `(key, state)` or a client-facing error.
    pub fn resolve(&self, name: Option<&str>) -> Result<(String, Arc<DaemonState>), String> {
        let key = match name {
            None => self.default_key.clone(),
            Some(n) => canonical_key(n),
        };
        if let Some(state) = self
            .shards
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
        {
            return Ok((key, Arc::clone(state)));
        }
        let Some(loader) = &self.loader else {
            return Err(format!("unknown workspace {key:?}"));
        };
        if !Path::new(&key).is_dir() {
            return Err(format!("unknown workspace {key:?}"));
        }
        // Load outside the lock: a slow tree load must not block
        // requests against other (resident) workspaces.
        let state = Arc::new(load_workspace(Path::new(&key), loader).map_err(|e| {
            format!("cannot load workspace {key:?}: {e}")
        })?);
        let mut shards = self.shards.write().unwrap_or_else(|p| p.into_inner());
        // Two clients may race the first load; first insert wins so
        // both see one shard (the loser's state is dropped).
        let entry = shards.entry(key.clone()).or_insert(state);
        Ok((key, Arc::clone(entry)))
    }
}

/// Loads one workspace from disk: its tree, and (per the loader
/// policy) its artifact store.
fn load_workspace(root: &Path, loader: &WorkspaceLoader) -> io::Result<DaemonState> {
    let vfs = Vfs::from_dir(root)?;
    let store = if loader.disk_cache {
        ArtifactStore::open(&root.join(".strtaint-cache")).ok()
    } else {
        None
    };
    Ok(DaemonState::new(vfs, loader.config.clone(), store))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_state(src: &str) -> Arc<DaemonState> {
        let mut vfs = Vfs::new();
        vfs.add("a.php", src);
        Arc::new(DaemonState::new(vfs, Config::default(), None))
    }

    #[test]
    fn default_and_named_workspaces_resolve_independently() {
        let map = WorkspaceMap::new("ws0", mem_state("<?php $a = 1;"));
        map.insert("ws1", mem_state("<?php $b = 2;"));
        let (k0, s0) = map.resolve(None).expect("default resolves");
        assert_eq!(k0, "ws0");
        let (k1, s1) = map.resolve(Some("ws1")).expect("named resolves");
        assert_eq!(k1, "ws1");
        // Independent shards: different states, different trees.
        assert!(!std::ptr::eq(&*s0, &*s1));
        assert_eq!(map.keys(), vec!["ws0".to_owned(), "ws1".to_owned()]);
        assert!(map.resolve(Some("nope")).is_err(), "unknown key rejected");
    }

    #[test]
    fn invalidate_in_one_workspace_does_not_leak_into_another() {
        let map = WorkspaceMap::new("ws0", mem_state("<?php $a = 1;"));
        map.insert("ws1", mem_state("<?php $a = 1;"));
        let (_, s0) = map.resolve(Some("ws0")).expect("ws0");
        let (_, s1) = map.resolve(Some("ws1")).expect("ws1");
        assert!(s0.invalidate("new.php", Some(b"<?php ?>".to_vec())));
        assert_eq!(s0.tree_size().0, 2, "ws0 grew");
        assert_eq!(s1.tree_size().0, 1, "ws1 untouched");
    }

    #[test]
    fn lazy_loading_canonicalizes_and_caches() {
        let dir = std::env::temp_dir().join(format!(
            "strtaint-ws-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("p.php"), "<?php $x = 1;").expect("write");

        let map = WorkspaceMap::new("mem", mem_state("<?php ?>")).with_loader(
            WorkspaceLoader {
                config: Config::default(),
                disk_cache: false,
            },
        );
        // Two spellings of the same directory: one shard.
        let spelled = format!("{}/.", dir.display());
        let (k1, s1) = map.resolve(Some(dir.to_str().expect("utf8 path")))
            .expect("loads from disk");
        let (k2, s2) = map.resolve(Some(&spelled)).expect("second spelling");
        assert_eq!(k1, k2, "canonicalized to one key");
        assert!(std::ptr::eq(&*s1, &*s2), "loaded once, cached");
        assert_eq!(s1.tree_size().0, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_loader_directories_are_not_auto_loaded() {
        let map = WorkspaceMap::new("mem", mem_state("<?php ?>"));
        let tmp = std::env::temp_dir();
        assert!(
            map.resolve(Some(tmp.to_str().expect("utf8"))).is_err(),
            "no loader: only registered workspaces resolve"
        );
    }
}
