//! The bounded worker pool behind the socket transport.
//!
//! Thread-per-connection execution (PR 4) let one slow or hostile
//! client spawn unbounded concurrent analyses. This module replaces the
//! *execution* half of that model: connections still get a cheap
//! reader thread each, but every request that can do real work
//! (`analyze`, `invalidate`, `batch`) is submitted to one process-wide
//! [`WorkerPool`] — `--workers` threads fed by a priority-aware bounded
//! queue (`--queue-depth`).
//!
//! The contract, in order of importance:
//!
//! 1. **Bounded latency over unbounded queueing.** A full queue rejects
//!    the submission immediately ([`SubmitError::Overloaded`] with a
//!    `retry_after_ms` hint) instead of growing without limit; the
//!    server turns that into a structured shed-load response.
//! 2. **Deadlines cancel queued work.** A job carrying a deadline that
//!    expires while queued is *not* run: its [`ExpireReason::Deadline`]
//!    callback fires instead, so a client that has already given up
//!    never costs engine time.
//! 3. **Worker panics are survivable.** Each job runs under
//!    `catch_unwind`; a panicking job (or an armed [`PoolFault`]) kills
//!    neither the worker nor the queue. The submitter observes the
//!    dropped response channel and synthesizes a structured error.
//! 4. **Drain is bounded.** [`WorkerPool::drain`] stops intake, gives
//!    in-flight and queued work a deadline, and flushes whatever is
//!    still queued past it through [`ExpireReason::Shutdown`] callbacks
//!    — shutdown can be slow, never unbounded.
//!
//! Priorities are `0..=9`, higher first; ties execute in submission
//! order (FIFO), so equal-priority traffic cannot starve.

use std::collections::BinaryHeap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use strtaint_obs::{Counter, Gauge, Registry};

/// Highest request priority the protocol accepts (`0..=MAX_PRIORITY`).
pub const MAX_PRIORITY: u8 = 9;

/// Why a job was flushed without running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpireReason {
    /// The job's own deadline passed while it sat in the queue.
    Deadline,
    /// The pool drained past its shutdown deadline with the job still
    /// queued.
    Shutdown,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after the hinted backoff.
    Overloaded {
        /// Suggested client backoff, derived from queue depth.
        retry_after_ms: u64,
    },
    /// The pool is draining; no new work is accepted.
    ShuttingDown,
}

type Work = Box<dyn FnOnce() + Send + 'static>;
type ExpireFn = Box<dyn FnOnce(ExpireReason) + Send + 'static>;

struct QueuedJob {
    priority: u8,
    seq: u64,
    deadline: Option<Instant>,
    run: Work,
    expired: ExpireFn,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first; within a priority, lower
        // sequence number (earlier submission) first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Fault-injection hooks for robustness tests (`tests/daemon_faults.rs`
/// and the soak suite). Inert unless armed; production code never arms
/// them.
#[derive(Debug, Default)]
pub struct PoolFault {
    /// Countdown: when it hits 1, the worker panics *instead of*
    /// running its job (simulating a worker dying mid-request).
    panic_after: AtomicU64,
    /// When set, the next job holds its worker until released
    /// (deterministically saturates the queue in tests).
    stall: Mutex<Option<Arc<StallGate>>>,
}

/// A gate a stalled worker waits on; see [`PoolFault::arm_stall_next`].
#[derive(Debug, Default)]
pub struct StallGate {
    released: Mutex<bool>,
    cv: Condvar,
}

impl StallGate {
    /// Creates an unreleased gate.
    pub fn new() -> Arc<StallGate> {
        Arc::new(StallGate::default())
    }

    /// Releases every worker waiting on the gate.
    pub fn release(&self) {
        *self.released.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut released = self.released.lock().unwrap_or_else(|p| p.into_inner());
        while !*released {
            // Time-boxed so a test that forgets to release cannot hang
            // the suite forever.
            let (guard, timeout) = self
                .cv
                .wait_timeout(released, Duration::from_secs(30))
                .unwrap_or_else(|p| p.into_inner());
            released = guard;
            if timeout.timed_out() {
                break;
            }
        }
    }
}

impl PoolFault {
    /// Arms a panic on the `n`-th job executed from now (1 = next).
    pub fn arm_panic_after(&self, n: u64) {
        self.panic_after.store(n, Ordering::SeqCst);
    }

    /// Stalls the next executed job on `gate` until released.
    pub fn arm_stall_next(&self, gate: Arc<StallGate>) {
        *self.stall.lock().unwrap_or_else(|p| p.into_inner()) = Some(gate);
    }

    /// Applied by workers at job start. Panics when armed to.
    fn on_job_start(&self) {
        if let Some(gate) = self
            .stall
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
        {
            gate.wait();
        }
        // Countdown without underflow: only decrement while armed.
        let mut v = self.panic_after.load(Ordering::SeqCst);
        while v > 0 {
            match self.panic_after.compare_exchange(
                v,
                v - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    if v == 1 {
                        panic!("PoolFault: injected worker panic");
                    }
                    return;
                }
                Err(cur) => v = cur,
            }
        }
    }
}

/// Pool metrics, registered in the server's [`Registry`].
#[derive(Debug)]
struct PoolMetrics {
    queue_depth: Arc<Gauge>,
    shed: Arc<Counter>,
    executed: Arc<Counter>,
    cancelled: Arc<Counter>,
    worker_panics: Arc<Counter>,
}

struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    seq: u64,
    /// Accepting new submissions.
    open: bool,
    /// Workers should exit once the heap is empty.
    terminate: bool,
    /// Jobs currently executing.
    active: usize,
}

struct Shared {
    q: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
    metrics: PoolMetrics,
    fault: PoolFault,
}

/// A fixed set of worker threads over one bounded priority queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("cap", &self.shared.cap)
            .finish()
    }
}

/// The default worker count: `min(cores, 8)`.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

impl WorkerPool {
    /// Spawns `workers` threads (min 1) over a queue bounded at
    /// `queue_depth` (min 1), registering `daemon.queue_depth`,
    /// `daemon.shed`, `daemon.jobs_executed`, `daemon.jobs_cancelled`,
    /// and `daemon.worker_panics` in `registry`.
    pub fn new(workers: usize, queue_depth: usize, registry: &Registry) -> WorkerPool {
        let workers = workers.max(1);
        let metrics = PoolMetrics {
            queue_depth: registry.gauge("daemon.queue_depth"),
            shed: registry.counter("daemon.shed"),
            executed: registry.counter("daemon.jobs_executed"),
            cancelled: registry.counter("daemon.jobs_cancelled"),
            worker_panics: registry.counter("daemon.worker_panics"),
        };
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                seq: 0,
                open: true,
                terminate: false,
                active: 0,
            }),
            cv: Condvar::new(),
            cap: queue_depth.max(1),
            metrics,
            fault: PoolFault::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("strtaint-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("cannot spawn worker thread: {e}"))
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The queue capacity.
    pub fn queue_depth(&self) -> usize {
        self.shared.cap
    }

    /// The fault-injection hooks (inert unless armed by tests).
    pub fn fault(&self) -> &PoolFault {
        &self.shared.fault
    }

    /// Submits a job, or rejects it when the queue is full or the pool
    /// is draining. `run` executes on a worker; `expired` fires instead
    /// when the job is cancelled (deadline passed while queued, or
    /// drain flushed it).
    pub fn try_submit(
        &self,
        priority: u8,
        deadline: Option<Instant>,
        run: impl FnOnce() + Send + 'static,
        expired: impl FnOnce(ExpireReason) + Send + 'static,
    ) -> Result<(), SubmitError> {
        let mut q = self.shared.q.lock().unwrap_or_else(|p| p.into_inner());
        if !q.open {
            return Err(SubmitError::ShuttingDown);
        }
        if q.heap.len() >= self.shared.cap {
            self.shared.metrics.shed.inc();
            // Backoff hint: proportional to the backlog each worker
            // would have to clear, floor 10ms, cap 1s. Coarse on
            // purpose — it spreads a thundering herd, nothing more.
            let per_worker = (q.heap.len() + q.active) / self.workers.max(1);
            let retry_after_ms = (per_worker as u64 * 20).clamp(10, 1_000);
            return Err(SubmitError::Overloaded { retry_after_ms });
        }
        q.seq += 1;
        let job = QueuedJob {
            priority: priority.min(MAX_PRIORITY),
            seq: q.seq,
            deadline,
            run: Box::new(run),
            expired: Box::new(expired),
        };
        q.heap.push(job);
        self.shared.metrics.queue_depth.set(q.heap.len() as u64);
        drop(q);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Stops intake and waits up to `deadline` for queued and active
    /// work to finish. Whatever is still *queued* past the deadline is
    /// flushed through its `expired` callback with
    /// [`ExpireReason::Shutdown`]; active jobs are allowed to finish
    /// (they already hold a worker). Returns the number of flushed
    /// jobs.
    pub fn drain(&self, deadline: Duration) -> usize {
        let end = Instant::now() + deadline;
        {
            let mut q = self.shared.q.lock().unwrap_or_else(|p| p.into_inner());
            q.open = false;
        }
        self.shared.cv.notify_all();
        // Phase 1: bounded wait for the backlog to clear naturally.
        {
            let mut q = self.shared.q.lock().unwrap_or_else(|p| p.into_inner());
            while (!q.heap.is_empty() || q.active > 0) && Instant::now() < end {
                let wait = end.saturating_duration_since(Instant::now());
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, wait.min(Duration::from_millis(50)))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }
        // Phase 2: flush whatever is still queued.
        let mut flushed = Vec::new();
        {
            let mut q = self.shared.q.lock().unwrap_or_else(|p| p.into_inner());
            while let Some(job) = q.heap.pop() {
                flushed.push(job);
            }
            q.terminate = true;
            self.shared.metrics.queue_depth.set(0);
        }
        self.shared.cv.notify_all();
        let n = flushed.len();
        for job in flushed {
            self.shared.metrics.cancelled.inc();
            run_quiet(|| (job.expired)(ExpireReason::Shutdown));
        }
        n
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Idempotent with an explicit drain() — the queue is already
        // closed and flushed, so this only signals termination.
        self.drain(Duration::from_millis(0));
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Runs `f`, swallowing panics (used for cancellation callbacks — a
/// panicking callback must not poison the drain loop).
fn run_quiet(f: impl FnOnce()) {
    let _ = std::panic::catch_unwind(AssertUnwindSafe(f));
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.q.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = q.heap.pop() {
                    q.active += 1;
                    shared.metrics.queue_depth.set(q.heap.len() as u64);
                    break Some(job);
                }
                if q.terminate {
                    break None;
                }
                q = shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        let Some(job) = job else { return };

        if job.deadline.is_some_and(|d| Instant::now() > d) {
            shared.metrics.cancelled.inc();
            run_quiet(|| (job.expired)(ExpireReason::Deadline));
        } else {
            let run = job.run;
            let fault = &shared.fault;
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                fault.on_job_start();
                run();
            }));
            match outcome {
                Ok(()) => shared.metrics.executed.inc(),
                Err(_) => shared.metrics.worker_panics.inc(),
            }
        }

        let mut q = shared.q.lock().unwrap_or_else(|p| p.into_inner());
        q.active -= 1;
        drop(q);
        // Wake drain waiters (and idle peers, harmlessly).
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn pool(workers: usize, depth: usize) -> WorkerPool {
        WorkerPool::new(workers, depth, &Registry::new())
    }

    #[test]
    fn executes_submitted_jobs() {
        let p = pool(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..5 {
            let tx = tx.clone();
            p.try_submit(0, None, move || tx.send(i).expect("send"), |_| {})
                .expect("fits");
        }
        let mut got: Vec<i32> = (0..5).map(|_| rx.recv().expect("recv")).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn priority_orders_queued_work() {
        // One worker, held at a gate while we queue behind it: the
        // queued jobs must then run highest-priority first, FIFO
        // within a priority.
        let p = pool(1, 16);
        let gate = StallGate::new();
        p.fault().arm_stall_next(Arc::clone(&gate));
        let (tx, rx) = mpsc::channel();
        {
            let tx = tx.clone();
            p.try_submit(0, None, move || tx.send("hold").expect("send"), |_| {})
                .expect("fits");
        }
        // Give the worker a moment to pick up the holding job, so the
        // rest all queue.
        std::thread::sleep(Duration::from_millis(50));
        for (prio, tag) in [(1u8, "low-a"), (5, "mid"), (9, "high"), (1, "low-b")] {
            let tx = tx.clone();
            p.try_submit(prio, None, move || tx.send(tag).expect("send"), |_| {})
                .expect("fits");
        }
        gate.release();
        let order: Vec<&str> = (0..5).map(|_| rx.recv().expect("recv")).collect();
        assert_eq!(order, vec!["hold", "high", "mid", "low-a", "low-b"]);
    }

    #[test]
    fn full_queue_sheds_with_backoff_hint() {
        let p = pool(1, 2);
        let gate = StallGate::new();
        p.fault().arm_stall_next(Arc::clone(&gate));
        let (tx, rx) = mpsc::channel();
        // 1 running (stalled) + 2 queued = full.
        for _ in 0..3 {
            let tx = tx.clone();
            p.try_submit(0, None, move || tx.send(()).expect("send"), |_| {})
                .expect("accepted");
            // Ensure the first job is picked up before the queue fills.
            std::thread::sleep(Duration::from_millis(20));
        }
        match p.try_submit(0, None, || {}, |_| {}) {
            Err(SubmitError::Overloaded { retry_after_ms }) => {
                assert!((10..=1_000).contains(&retry_after_ms));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        gate.release();
        for _ in 0..3 {
            rx.recv().expect("queued jobs still run");
        }
    }

    #[test]
    fn expired_deadline_cancels_queued_job() {
        let p = pool(1, 8);
        let gate = StallGate::new();
        p.fault().arm_stall_next(Arc::clone(&gate));
        let (tx, rx) = mpsc::channel();
        {
            let tx = tx.clone();
            p.try_submit(0, None, move || tx.send("ran").expect("send"), |_| {})
                .expect("fits");
        }
        std::thread::sleep(Duration::from_millis(30));
        // Queued behind the stalled worker with an already-tiny budget:
        // by the time the gate opens, the deadline has passed.
        let deadline = Instant::now() + Duration::from_millis(1);
        {
            let run_tx = tx.clone();
            let expire_tx = tx.clone();
            p.try_submit(
                0,
                Some(deadline),
                move || run_tx.send("must not run").expect("send"),
                move |reason| {
                    assert_eq!(reason, ExpireReason::Deadline);
                    expire_tx.send("expired").expect("send");
                },
            )
            .expect("fits");
        }
        std::thread::sleep(Duration::from_millis(30));
        gate.release();
        assert_eq!(rx.recv().expect("first"), "ran");
        assert_eq!(rx.recv().expect("second"), "expired");
    }

    #[test]
    fn worker_panic_does_not_kill_the_pool() {
        let p = pool(1, 8);
        let (tx, rx) = mpsc::channel();
        p.fault().arm_panic_after(1);
        {
            let tx = tx.clone();
            // The panic fires before run(); the sender is dropped, so
            // the receiver sees disconnection — exactly what the
            // server's response synthesis keys on.
            p.try_submit(0, None, move || tx.send("a").expect("send"), |_| {})
                .expect("fits");
        }
        // The job's sender clone must be dropped by the panic.
        drop(tx);
        assert!(rx.recv().is_err(), "panicked job never responds");
        // The pool is still alive: a fresh job runs on the same worker.
        let (tx2, rx2) = mpsc::channel();
        p.try_submit(0, None, move || tx2.send("b").expect("send"), |_| {})
            .expect("pool still accepts");
        assert_eq!(rx2.recv().expect("pool still runs"), "b");
    }

    #[test]
    fn drain_flushes_queued_jobs_past_deadline() {
        let p = pool(1, 8);
        let gate = StallGate::new();
        p.fault().arm_stall_next(Arc::clone(&gate));
        let (tx, rx) = mpsc::channel();
        {
            let tx = tx.clone();
            p.try_submit(0, None, move || tx.send("held").expect("send"), |_| {})
                .expect("fits");
        }
        std::thread::sleep(Duration::from_millis(30));
        for _ in 0..3 {
            let tx = tx.clone();
            p.try_submit(
                0,
                None,
                || panic!("flushed jobs must not run"),
                move |reason| {
                    assert_eq!(reason, ExpireReason::Shutdown);
                    tx.send("flushed").expect("send");
                },
            )
            .expect("fits");
        }
        // Worker is stalled: the 0ms drain flushes all queued jobs.
        let draining = std::thread::spawn({
            let gate = Arc::clone(&gate);
            move || {
                std::thread::sleep(Duration::from_millis(100));
                gate.release();
            }
        });
        let flushed = p.drain(Duration::from_millis(10));
        assert_eq!(flushed, 3);
        for _ in 0..3 {
            assert_eq!(rx.recv().expect("recv"), "flushed");
        }
        draining.join().expect("releaser");
        assert_eq!(rx.recv().expect("held job finishes"), "held");
        assert!(matches!(
            p.try_submit(0, None, || {}, |_| {}),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let p = pool(4, 8);
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            p.try_submit(0, None, move || tx.send(()).expect("send"), |_| {})
                .expect("fits");
        }
        drop(tx);
        // Drop without explicit drain: queued jobs either ran or were
        // flushed; either way drop returns (no deadlock, no leak).
        drop(p);
        // All 8 ran or their senders were dropped — drain to EOF.
        while rx.recv().is_ok() {}
    }
}
