//! Verdict serialization: [`PageReport`] → JSON, and the artifact
//! envelope the store persists around it.
//!
//! The page JSON produced by [`page_to_json`] is the *single* rendering
//! used both for fresh responses and for replayed ones — a replay
//! re-serializes the parsed artifact, and the JSON writer is a fixpoint
//! of `parse` (see [`crate::json`]), so a warm daemon's response is
//! byte-identical to the cold response the artifact was saved from.
//!
//! Replay soundness (DESIGN.md §5d): a stored verdict may substitute
//! for a fresh analysis only when *all* of the following match the
//! live state — the engine version and artifact format (checked by the
//! store), the full config fingerprint, the content hash of every file
//! the original analysis read, and the project path-set digest (dynamic
//! include resolution reads the layout, so adding or removing *any*
//! file conservatively invalidates every verdict). Under those
//! equalities the original run and a hypothetical re-run are the same
//! deterministic function of the same inputs, so replay returns exactly
//! what re-analysis would.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use strtaint::{PageReport, Taint};

use crate::json::{hex64, parse_hex64, Json};

/// Computes the verdict cache key for one page analysis: entry path +
/// checker mode + replay config fingerprint
/// ([`Config::replay_fingerprint`](strtaint::Config::replay_fingerprint)
/// — every analysis-observable knob *except* frontend selection). Tree
/// state is deliberately *not* part of the key — a re-analysis after
/// an edit overwrites the stale verdict in place. Frontend selection
/// is deliberately not part of the key either: flipping the extension
/// map re-keys nothing, and the per-dependency frontend evidence on
/// each [`Verdict`] lets freshness validation recompute exactly the
/// pages whose dependencies now dispatch to a different frontend.
pub fn verdict_key(entry: &str, xss: bool, config_fp: u64) -> u64 {
    let mut h = DefaultHasher::new();
    entry.hash(&mut h);
    xss.hash(&mut h);
    config_fp.hash(&mut h);
    h.finish()
}

/// Digest of the project's *path set* (names only, sorted — contents
/// are covered per-dependency). Any file addition, removal, or rename
/// changes this digest and conservatively invalidates every verdict,
/// because dynamic include resolution intersects the layout.
pub fn tree_digest<'a>(paths: impl Iterator<Item = &'a str>) -> u64 {
    let mut h = DefaultHasher::new();
    for p in paths {
        p.hash(&mut h);
    }
    h.finish()
}

fn taint_str(t: Taint) -> &'static str {
    match (t.is_direct(), t.is_indirect()) {
        (true, true) => "direct+indirect",
        (true, false) => "direct",
        (false, true) => "indirect",
        (false, false) => "none",
    }
}

fn opt_str(v: Option<String>) -> Json {
    v.map(Json::Str).unwrap_or(Json::Null)
}

/// Renders one [`PageReport`] as the protocol's page object. Everything
/// the CLI's JSON renderer exposes is here, plus the engine counters
/// and the transitive input list the daemon keys replay on.
pub fn page_to_json(report: &PageReport) -> Json {
    let hotspots: Vec<Json> = report
        .hotspots
        .iter()
        .map(|(h, r)| {
            let findings: Vec<Json> = r
                .findings
                .iter()
                .map(|f| {
                    Json::obj(vec![
                        ("rule", Json::Str(f.kind.rule_id().to_owned())),
                        ("source", Json::Str(f.name.clone())),
                        ("taint", Json::Str(taint_str(f.taint).to_owned())),
                        (
                            "witness",
                            opt_str(f.witness.as_deref().map(|w| {
                                String::from_utf8_lossy(w).into_owned()
                            })),
                        ),
                        ("witness_truncated", Json::Bool(f.witness_truncated)),
                        (
                            "example_query",
                            opt_str(f.example_query.as_deref().map(|q| {
                                String::from_utf8_lossy(q).into_owned()
                            })),
                        ),
                        ("detail", Json::Str(f.detail.clone())),
                        (
                            "at",
                            f.at.map(|(line, col)| {
                                Json::Arr(vec![
                                    Json::Num(f64::from(line)),
                                    Json::Num(f64::from(col)),
                                ])
                            })
                            .unwrap_or(Json::Null),
                        ),
                    ])
                })
                .collect();
            let degradations: Vec<Json> = r
                .degradations
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("site", Json::Str(d.site.clone())),
                        ("resource", Json::Str(d.resource.tag().to_owned())),
                        ("action", Json::Str(d.action.tag().to_owned())),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("label", Json::Str(h.label.clone())),
                ("file", Json::Str(h.file.clone())),
                ("line", Json::Num(f64::from(h.span.line))),
                ("col", Json::Num(f64::from(h.span.col))),
                ("policy", Json::Str(h.policy.clone())),
                (
                    "skeletons",
                    Json::Arr(r.skeleton_strings().into_iter().map(Json::Str).collect()),
                ),
                ("skeletons_complete", Json::Bool(r.skeletons_complete)),
                ("checked", Json::Num(r.checked as f64)),
                ("verified", Json::Num(r.verified as f64)),
                ("findings", Json::Arr(findings)),
                ("degradations", Json::Arr(degradations)),
                (
                    "engine",
                    Json::obj(vec![
                        ("queries", Json::Num(r.engine.queries as f64)),
                        ("normalizations", Json::Num(r.engine.normalizations as f64)),
                        (
                            "normalizations_saved",
                            Json::Num(r.engine.normalizations_saved as f64),
                        ),
                        (
                            "realized_triples",
                            Json::Num(r.engine.realized_triples as f64),
                        ),
                        ("early_exits", Json::Num(r.engine.early_exits as f64)),
                        ("completions", Json::Num(r.engine.completions as f64)),
                        ("qcache_hits", Json::Num(r.engine.qcache_hits as f64)),
                        ("qcache_misses", Json::Num(r.engine.qcache_misses as f64)),
                        (
                            "qcache_evictions",
                            Json::Num(r.engine.qcache_evictions as f64),
                        ),
                        (
                            "witness_skipped",
                            Json::Num(r.engine.witness_skipped as f64),
                        ),
                        (
                            "prefilter_skips",
                            Json::Num(r.engine.prefilter_skips as f64),
                        ),
                    ]),
                ),
            ])
        })
        .collect();

    let page_degradations: Vec<Json> = report
        .degradations
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("site", Json::Str(d.site.clone())),
                ("resource", Json::Str(d.resource.tag().to_owned())),
                ("action", Json::Str(d.action.tag().to_owned())),
            ])
        })
        .collect();

    Json::obj(vec![
        ("entry", Json::Str(report.entry.clone())),
        ("verified", Json::Bool(report.is_verified())),
        ("degraded", Json::Bool(report.is_degraded())),
        ("skipped", opt_str(report.skipped.clone())),
        (
            "grammar_nonterminals",
            Json::Num(report.grammar_nonterminals as f64),
        ),
        (
            "grammar_productions",
            Json::Num(report.grammar_productions as f64),
        ),
        (
            "analysis_ms",
            Json::Num(report.analysis_time.as_secs_f64() * 1e3),
        ),
        ("check_ms", Json::Num(report.check_time.as_secs_f64() * 1e3)),
        ("files_analyzed", Json::Num(report.files_analyzed as f64)),
        (
            "inputs",
            Json::Arr(report.inputs.iter().cloned().map(Json::Str).collect()),
        ),
        ("hotspots", Json::Arr(hotspots)),
        ("degradations", Json::Arr(page_degradations)),
        (
            "warnings",
            Json::Arr(report.warnings.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "unmodeled",
            Json::Arr(report.unmodeled.iter().cloned().map(Json::Str).collect()),
        ),
    ])
}

/// A verdict held resident (and persisted): the rendered page object
/// plus the freshness evidence replay is conditioned on.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Page entry path (normalized).
    pub entry: String,
    /// Checker mode the verdict was computed under.
    pub xss: bool,
    /// The enabled policy set the verdict was computed under. Already
    /// covered by `config_fp` (policies are fingerprinted), but stored
    /// explicitly as replay evidence so an artifact is self-describing
    /// — and so pre-policy artifacts (missing this member) are dropped
    /// rather than replayed under the wrong semantics.
    pub policies: Vec<String>,
    /// Replay config fingerprint at computation time (frontend-free —
    /// see [`verdict_key`]).
    pub config_fp: u64,
    /// Path-set digest at computation time.
    pub tree: u64,
    /// `(path, content hash)` of every file the analysis read.
    pub deps: Vec<(String, u64)>,
    /// `(path, frontend id, frontend fingerprint)` for every
    /// dependency: which frontend lowered each file. Freshness checks
    /// this against the live frontend set, so an extension-map or
    /// frontend-set flip invalidates exactly the pages whose
    /// dependencies dispatch differently. Pre-frontend artifacts lack
    /// this member and are dropped rather than replayed.
    pub frontends: Vec<(String, String, u64)>,
    /// The rendered page object (the protocol's `pages[i]`).
    pub page: Json,
}

impl Verdict {
    /// The artifact body members (the store adds version headers).
    pub fn to_artifact_body(&self) -> Vec<(String, Json)> {
        let deps: Vec<Json> = self
            .deps
            .iter()
            .map(|(path, hash)| {
                Json::obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("hash", Json::Str(hex64(*hash))),
                ])
            })
            .collect();
        let frontends: Vec<Json> = self
            .frontends
            .iter()
            .map(|(path, id, fp)| {
                Json::obj(vec![
                    ("path", Json::Str(path.clone())),
                    ("id", Json::Str(id.clone())),
                    ("fp", Json::Str(hex64(*fp))),
                ])
            })
            .collect();
        vec![
            ("entry".to_owned(), Json::Str(self.entry.clone())),
            ("xss".to_owned(), Json::Bool(self.xss)),
            (
                "policies".to_owned(),
                Json::Arr(self.policies.iter().cloned().map(Json::Str).collect()),
            ),
            ("config_fp".to_owned(), Json::Str(hex64(self.config_fp))),
            ("tree".to_owned(), Json::Str(hex64(self.tree))),
            ("deps".to_owned(), Json::Arr(deps)),
            ("frontends".to_owned(), Json::Arr(frontends)),
            ("page".to_owned(), self.page.clone()),
        ]
    }

    /// Reconstructs a verdict from a loaded artifact. `None` on any
    /// missing or ill-typed member (a corrupt-but-parsable artifact —
    /// the caller drops it).
    pub fn from_artifact(v: &Json) -> Option<Verdict> {
        let entry = v.get("entry")?.as_str()?.to_owned();
        let xss = v.get("xss")?.as_bool()?;
        let mut policies = Vec::new();
        for p in v.get("policies")?.as_arr()? {
            policies.push(p.as_str()?.to_owned());
        }
        let config_fp = parse_hex64(v.get("config_fp")?.as_str()?)?;
        let tree = parse_hex64(v.get("tree")?.as_str()?)?;
        let mut deps = Vec::new();
        for d in v.get("deps")?.as_arr()? {
            let path = d.get("path")?.as_str()?.to_owned();
            let hash = parse_hex64(d.get("hash")?.as_str()?)?;
            deps.push((path, hash));
        }
        // Pre-frontend artifacts lack the per-dependency frontend
        // evidence; they must be dropped (recomputed), never replayed —
        // the file could now dispatch to a different language.
        let mut frontends = Vec::new();
        for fe in v.get("frontends")?.as_arr()? {
            let path = fe.get("path")?.as_str()?.to_owned();
            let id = fe.get("id")?.as_str()?.to_owned();
            let fp = parse_hex64(fe.get("fp")?.as_str()?)?;
            frontends.push((path, id, fp));
        }
        let page = v.get("page")?.clone();
        // The page object must at least identify the same entry — a
        // artifact whose body disagrees with its own header is invalid.
        if page.get("entry")?.as_str()? != entry {
            return None;
        }
        // Every hotspot must carry remediation evidence (policy id and
        // skeleton allowlist). Pre-remedy artifacts lack these members;
        // they must be dropped (recomputed), never replayed, or `fix`
        // and `profile` would see evidence-free hotspots.
        for hotspot in page.get("hotspots")?.as_arr()? {
            hotspot.get("policy")?.as_str()?;
            hotspot.get("skeletons")?.as_arr()?;
            hotspot.get("skeletons_complete")?.as_bool()?;
        }
        Some(Verdict {
            entry,
            xss,
            policies,
            config_fp,
            tree,
            deps,
            frontends,
            page,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_key_separates_modes_and_configs() {
        assert_ne!(verdict_key("a.php", false, 1), verdict_key("a.php", true, 1));
        assert_ne!(verdict_key("a.php", false, 1), verdict_key("a.php", false, 2));
        assert_ne!(verdict_key("a.php", false, 1), verdict_key("b.php", false, 1));
        assert_eq!(verdict_key("a.php", false, 1), verdict_key("a.php", false, 1));
    }

    #[test]
    fn tree_digest_tracks_the_path_set() {
        let d1 = tree_digest(["a.php", "b.php"].into_iter());
        let d2 = tree_digest(["a.php"].into_iter());
        let d3 = tree_digest(["a.php", "b.php"].into_iter());
        assert_ne!(d1, d2);
        assert_eq!(d1, d3);
    }

    /// A minimal valid page object: one hotspot carrying the full
    /// remediation evidence the replay validator requires.
    fn page_with_evidence(entry: &str) -> Json {
        Json::obj(vec![
            ("entry", Json::Str(entry.into())),
            (
                "hotspots",
                Json::Arr(vec![Json::obj(vec![
                    ("policy", Json::Str("sql".into())),
                    ("skeletons", Json::Arr(vec![Json::Str("SELECT ?".into())])),
                    ("skeletons_complete", Json::Bool(true)),
                ])]),
            ),
        ])
    }

    #[test]
    fn artifact_roundtrip() {
        let v = Verdict {
            entry: "a.php".into(),
            xss: false,
            policies: vec!["sql".into(), "shell".into()],
            config_fp: 11,
            tree: 22,
            deps: vec![("a.php".into(), 1), ("lib.php".into(), 2)],
            frontends: vec![
                ("a.php".into(), "php".into(), 7),
                ("lib.tpl".into(), "tpl".into(), 9),
            ],
            page: page_with_evidence("a.php"),
        };
        let body = v.to_artifact_body();
        let artifact = Json::Obj(body);
        let back = Verdict::from_artifact(&artifact).expect("roundtrips");
        assert_eq!(back.entry, "a.php");
        assert_eq!(back.policies, v.policies);
        assert_eq!(back.config_fp, 11);
        assert_eq!(back.tree, 22);
        assert_eq!(back.deps, v.deps);
        assert_eq!(back.frontends, v.frontends);
    }

    #[test]
    fn artifact_without_frontend_evidence_is_rejected() {
        // Pre-frontend artifacts lack the `frontends` member; they must
        // be dropped (recomputed), never replayed — the files could now
        // dispatch to a different language.
        let v = Verdict {
            entry: "a.php".into(),
            xss: false,
            policies: vec!["sql".into()],
            config_fp: 0,
            tree: 0,
            deps: vec![],
            frontends: vec![("a.php".into(), "php".into(), 7)],
            page: page_with_evidence("a.php"),
        };
        let body: Vec<(String, Json)> = v
            .to_artifact_body()
            .into_iter()
            .filter(|(k, _)| k != "frontends")
            .collect();
        assert!(Verdict::from_artifact(&Json::Obj(body)).is_none());
    }

    #[test]
    fn artifact_without_policy_evidence_is_rejected() {
        // Pre-policy artifacts lack the `policies` member; they must be
        // dropped (recomputed), never replayed.
        let v = Verdict {
            entry: "a.php".into(),
            xss: false,
            policies: vec!["sql".into()],
            config_fp: 0,
            tree: 0,
            deps: vec![],
            frontends: vec![],
            page: page_with_evidence("a.php"),
        };
        let body: Vec<(String, Json)> = v
            .to_artifact_body()
            .into_iter()
            .filter(|(k, _)| k != "policies")
            .collect();
        assert!(Verdict::from_artifact(&Json::Obj(body)).is_none());
    }

    #[test]
    fn artifact_without_skeleton_evidence_is_rejected() {
        // Pre-remedy artifacts carry hotspots without the skeleton
        // allowlist (or the policy id); they must be dropped
        // (recomputed), never replayed.
        for missing in ["policy", "skeletons", "skeletons_complete"] {
            let page = page_with_evidence("a.php");
            let stripped = match page {
                Json::Obj(members) => Json::Obj(
                    members
                        .into_iter()
                        .map(|(k, v)| {
                            if k != "hotspots" {
                                return (k, v);
                            }
                            let Json::Arr(hotspots) = v else { unreachable!() };
                            let hotspots = hotspots
                                .into_iter()
                                .map(|h| {
                                    let Json::Obj(hm) = h else { unreachable!() };
                                    Json::Obj(
                                        hm.into_iter().filter(|(k, _)| k != missing).collect(),
                                    )
                                })
                                .collect();
                            (k, Json::Arr(hotspots))
                        })
                        .collect(),
                ),
                _ => unreachable!(),
            };
            let v = Verdict {
                entry: "a.php".into(),
                xss: false,
                policies: vec!["sql".into()],
                config_fp: 0,
                tree: 0,
                deps: vec![],
                frontends: vec![],
                page: stripped,
            };
            let artifact = Json::Obj(v.to_artifact_body());
            assert!(
                Verdict::from_artifact(&artifact).is_none(),
                "hotspot missing {missing:?} must be rejected"
            );
        }
    }

    #[test]
    fn mismatched_page_entry_is_rejected() {
        let v = Verdict {
            entry: "a.php".into(),
            xss: false,
            policies: vec!["sql".into()],
            config_fp: 0,
            tree: 0,
            deps: vec![],
            frontends: vec![],
            page: page_with_evidence("OTHER.php"),
        };
        let artifact = Json::Obj(v.to_artifact_body());
        assert!(Verdict::from_artifact(&artifact).is_none());
    }
}
