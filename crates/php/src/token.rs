//! PHP tokens.

use std::fmt;

use crate::span::Span;

/// A fragment of an interpolated (double-quoted) string.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPart {
    /// Literal bytes.
    Lit(Vec<u8>),
    /// `$name` interpolation.
    Var(String),
    /// `$name[key]` or `{$name['key']}` interpolation.
    Index(String, Vec<u8>),
    /// `{$obj->prop}` or `$obj->prop` interpolation.
    Prop(String, String),
}

/// A PHP token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Raw HTML outside `<?php ... ?>`.
    InlineHtml(Vec<u8>),
    /// `$name`.
    Variable(String),
    /// Identifier (function name, constant, keyword — keywords are
    /// recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string (escapes resolved).
    Str(Vec<u8>),
    /// Double-quoted string with interpolation parts.
    InterpStr(Vec<StrPart>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `.=`
    DotEq,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `===`
    EqEqEq,
    /// `!=` or `<>`
    NotEq,
    /// `!==`
    NotEqEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `+=`
    PlusEq,
    /// `-`
    Minus,
    /// `-=`
    MinusEq,
    /// `*`
    Star,
    /// `*=`
    StarEq,
    /// `/`
    Slash,
    /// `/=`
    SlashEq,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=>`
    FatArrow,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// `@`
    At,
    /// End of file.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::InlineHtml(_) => write!(f, "<html>"),
            Tok::Variable(v) => write!(f, "${v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(_) | Tok::InterpStr(_) => write!(f, "<string>"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::DotEq => write!(f, ".="),
            Tok::Eq => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::EqEqEq => write!(f, "==="),
            Tok::NotEq => write!(f, "!="),
            Tok::NotEqEq => write!(f, "!=="),
            Tok::Lt => write!(f, "<"),
            Tok::Gt => write!(f, ">"),
            Tok::Le => write!(f, "<="),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::PlusEq => write!(f, "+="),
            Tok::Minus => write!(f, "-"),
            Tok::MinusEq => write!(f, "-="),
            Tok::Star => write!(f, "*"),
            Tok::StarEq => write!(f, "*="),
            Tok::Slash => write!(f, "/"),
            Tok::SlashEq => write!(f, "/="),
            Tok::Percent => write!(f, "%"),
            Tok::Bang => write!(f, "!"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Amp => write!(f, "&"),
            Tok::Question => write!(f, "?"),
            Tok::Colon => write!(f, ":"),
            Tok::Arrow => write!(f, "->"),
            Tok::FatArrow => write!(f, "=>"),
            Tok::Inc => write!(f, "++"),
            Tok::Dec => write!(f, "--"),
            Tok::At => write!(f, "@"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}
