//! Source positions for diagnostics.

use std::fmt;

/// A source location: 1-based line and column.
///
/// The paper lists "track line numbers from PHP source files through to
/// the grammar's nonterminals" as planned work; we carry spans from the
/// lexer through the grammar builder so every bug report can point at
/// the originating statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_line_col() {
        assert_eq!(Span::new(14, 5).to_string(), "14:5");
    }
}
