//! PHP frontend for **strtaint**: lexer, parser, and AST for the PHP
//! subset the analysis consumes.
//!
//! The paper's implementation reused Minamide's PHP string analyzer; we
//! build the frontend from scratch. The subset covers what
//! database-backed PHP applications of the era use for query
//! construction: assignments and concatenation, interpolated strings,
//! `if`/`while`/`for`/`foreach`/`switch`, function declarations and
//! calls, method calls (`$DB->query(...)`), superglobal array access,
//! and `include`/`require` with dynamically computed paths.
//!
//! # Examples
//!
//! ```
//! use strtaint_php::parse;
//!
//! let file = parse(br#"<?php
//! $id = $_GET['id'];
//! $q = "SELECT * FROM users WHERE id='$id'";
//! $res = $DB->query($q);
//! "#).unwrap();
//! assert_eq!(file.stmts.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;

pub use ast::{BinOp, CastKind, Expr, ExprKind, File, FuncDecl, IncludeKind, Param, Stmt, StmtKind, UnaryOp};
pub use lexer::{lex, LexPhpError};
pub use parser::{parse, ParsePhpError};
pub use span::Span;
pub use token::{SpannedTok, StrPart, Tok};
