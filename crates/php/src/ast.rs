//! Abstract syntax for the analyzed PHP subset.

use std::fmt;

use crate::span::Span;
use crate::token::StrPart;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `!`
    Not,
    /// Unary `-`
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `.` string concatenation — the central operator of the analysis.
    Concat,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `===`
    Identical,
    /// `!=`
    Neq,
    /// `!==`
    NotIdentical,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&` / `and`
    And,
    /// `||` / `or`
    Or,
}

/// Cast kinds (PHP `(int)$x` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastKind {
    /// `(int)` / `(integer)`
    Int,
    /// `(float)` / `(double)`
    Float,
    /// `(string)`
    Str,
    /// `(bool)` / `(boolean)`
    Bool,
    /// `(array)`
    Array,
}

/// Include flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncludeKind {
    /// `include`
    Include,
    /// `include_once`
    IncludeOnce,
    /// `require`
    Require,
    /// `require_once`
    RequireOnce,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression kind.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Resolved string literal (single-quoted or escape-free).
    Str(Vec<u8>),
    /// Interpolated double-quoted string.
    Interp(Vec<StrPart>),
    /// `$name`
    Var(String),
    /// Bare constant (e.g. `PHP_EOL`, `MY_TABLE_PREFIX`).
    ConstFetch(String),
    /// `base[index]`; `index` may be absent (`$a[] = ...` push form).
    Index(Box<Expr>, Option<Box<Expr>>),
    /// `$obj->prop`
    Prop(Box<Expr>, String),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Assignment; the operator is `Some` for compound assignment
    /// (`.=`, `+=`, …).
    Assign(Box<Expr>, Option<BinOp>, Box<Expr>),
    /// `cond ? then : else`; `then` is `None` for the `?:` shorthand.
    Ternary(Box<Expr>, Option<Box<Expr>>, Box<Expr>),
    /// Function call by name.
    Call(String, Vec<Expr>),
    /// Method call `$obj->m(args)`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// Object construction `new C(args)`.
    New(String, Vec<Expr>),
    /// `isset(...)`
    Isset(Vec<Expr>),
    /// `empty(...)`
    Empty(Box<Expr>),
    /// `array(k => v, ...)` / `[...]`
    Array(Vec<(Option<Expr>, Expr)>),
    /// Cast.
    Cast(CastKind, Box<Expr>),
    /// `@expr`
    Suppress(Box<Expr>),
    /// `++$x` / `$x++` / `--$x` / `$x--`; `pre` and `inc` flags.
    IncDec {
        /// The modified lvalue.
        target: Box<Expr>,
        /// Prefix (`++$x`) vs postfix (`$x++`).
        pre: bool,
        /// Increment vs decrement.
        inc: bool,
    },
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// The statement kind.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement.
    Expr(Expr),
    /// `echo e1, e2, ...;`
    Echo(Vec<Expr>),
    /// `if` with `elseif` chain and optional `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// `elseif` branches.
        elifs: Vec<(Expr, Vec<Stmt>)>,
        /// `else` branch.
        els: Option<Vec<Stmt>>,
    },
    /// `while`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `do { } while (cond);`
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step)`
    For {
        /// Initializers.
        init: Vec<Expr>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Step expressions.
        step: Vec<Expr>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `foreach ($subject as $key => $value)`
    Foreach {
        /// Iterated expression.
        subject: Expr,
        /// Key variable, if destructured.
        key: Option<String>,
        /// Value variable.
        value: String,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `switch`
    Switch {
        /// Scrutinee.
        subject: Expr,
        /// `(case-expr, body)`; `None` = `default`.
        cases: Vec<(Option<Expr>, Vec<Stmt>)>,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `exit;` / `die(...)`.
    Exit(Option<Expr>),
    /// Function declaration.
    FuncDecl(FuncDecl),
    /// Class declaration (methods only; properties are ignored by the
    /// analysis, which dispatches method calls by name).
    ClassDecl(ClassDecl),
    /// `global $a, $b;`
    Global(Vec<String>),
    /// `include`/`require` with an argument expression — the dynamic
    /// include construct the paper resolves via the filesystem layout.
    Include {
        /// Which include flavor.
        kind: IncludeKind,
        /// The path expression.
        arg: Expr,
    },
    /// Raw HTML between PHP regions.
    InlineHtml(Vec<u8>),
    /// `unset(...)`.
    Unset(Vec<Expr>),
    /// `{ ... }`
    Block(Vec<Stmt>),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (without `$`).
    pub name: String,
    /// Default value.
    pub default: Option<Expr>,
    /// Declared by-reference (`&$x`).
    pub by_ref: bool,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name (stored lowercased).
    pub name: String,
    /// Parent class, if any (`extends`).
    pub parent: Option<String>,
    /// Method declarations.
    pub methods: Vec<FuncDecl>,
    /// Declaration site.
    pub span: Span,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name (PHP function names are case-insensitive; stored
    /// lowercased).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Declaration site.
    pub span: Span,
}

/// A parsed PHP source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct File {
    /// Top-level statements (function declarations included in order).
    pub stmts: Vec<Stmt>,
}

impl fmt::Display for File {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<php file: {} top-level statements>", self.stmts.len())
    }
}
