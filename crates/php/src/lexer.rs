//! PHP lexer for the analyzed subset.
//!
//! Handles `<?php ... ?>` regions, line and block comments, variables,
//! numbers, and both string flavors — including the double-quoted
//! interpolation forms (`"WHERE userid='$userid'"`,
//! `"... {$row['name']} ..."`) that dominate query construction in real
//! web applications.

use std::fmt;

use crate::span::Span;
use crate::token::{SpannedTok, StrPart, Tok};

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexPhpError {
    /// Human-readable message.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl fmt::Display for LexPhpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexPhpError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    in_php: bool,
}

/// Tokenizes a PHP source file.
///
/// # Errors
///
/// Returns a [`LexPhpError`] on unterminated strings/comments or
/// unsupported bytes inside PHP code.
pub fn lex(src: &[u8]) -> Result<Vec<SpannedTok>, LexPhpError> {
    let mut lx = Lexer {
        src,
        pos: 0,
        line: 1,
        col: 1,
        in_php: false,
    };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let eof = t.tok == Tok::Eof;
        out.push(t);
        if eof {
            break;
        }
    }
    Ok(out)
}

impl<'a> Lexer<'a> {
    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn err(&self, message: impl Into<String>) -> LexPhpError {
        LexPhpError {
            message: message.into(),
            span: self.span(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_token(&mut self) -> Result<SpannedTok, LexPhpError> {
        if !self.in_php {
            // Collect inline HTML until <?php or EOF.
            let span = self.span();
            let mut html = Vec::new();
            loop {
                if self.pos >= self.src.len() {
                    break;
                }
                if self.starts_with(b"<?php") {
                    self.bump_n(5);
                    self.in_php = true;
                    break;
                }
                if self.starts_with(b"<?=") {
                    // echo shorthand: treat as entering PHP with an echo —
                    // approximate by entering PHP mode.
                    self.bump_n(3);
                    self.in_php = true;
                    break;
                }
                html.push(self.bump().expect("not at EOF"));
            }
            if !html.is_empty() {
                return Ok(SpannedTok {
                    tok: Tok::InlineHtml(html),
                    span,
                });
            }
            if self.pos >= self.src.len() {
                return Ok(SpannedTok {
                    tok: Tok::Eof,
                    span: self.span(),
                });
            }
            // Fall through into PHP mode.
        }

        // Skip whitespace and comments.
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        // `?>` ends the comment and PHP mode.
                        if b == b'?' && self.peek2() == Some(b'>') {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump_n(2);
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(self.err("unterminated block comment"));
                        }
                        if self.starts_with(b"*/") {
                            self.bump_n(2);
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }

        let span = self.span();
        if self.starts_with(b"?>") {
            self.bump_n(2);
            self.in_php = false;
            // Statement separator semantics of ?> in PHP.
            return Ok(SpannedTok {
                tok: Tok::Semi,
                span,
            });
        }
        let Some(b) = self.peek() else {
            return Ok(SpannedTok {
                tok: Tok::Eof,
                span,
            });
        };

        let tok = match b {
            b'$' => {
                self.bump();
                let name = self.ident_text()?;
                Tok::Variable(name)
            }
            b'\'' => {
                self.bump();
                let mut s = Vec::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated single-quoted string")),
                        Some(b'\\') => match self.bump() {
                            Some(b'\'') => s.push(b'\''),
                            Some(b'\\') => s.push(b'\\'),
                            Some(other) => {
                                s.push(b'\\');
                                s.push(other);
                            }
                            None => return Err(self.err("unterminated string escape")),
                        },
                        Some(b'\'') => break,
                        Some(other) => s.push(other),
                    }
                }
                Tok::Str(s)
            }
            b'"' => {
                self.bump();
                Tok::InterpStr(self.interp_string()?)
            }
            b'0'..=b'9' => {
                let mut text = String::new();
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c as char);
                        self.bump();
                    } else if c == b'.'
                        && self.peek2().is_some_and(|d| d.is_ascii_digit())
                        && !is_float
                    {
                        is_float = true;
                        text.push('.');
                        self.bump();
                    } else {
                        break;
                    }
                }
                if is_float {
                    Tok::Float(text.parse().map_err(|_| self.err("bad float literal"))?)
                } else {
                    Tok::Int(text.parse().map_err(|_| self.err("bad int literal"))?)
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => Tok::Ident(self.ident_text()?),
            _ => {
                self.bump();
                match b {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b';' => Tok::Semi,
                    b',' => Tok::Comma,
                    b'@' => Tok::At,
                    b'.' => {
                        if self.peek() == Some(b'=') {
                            self.bump();
                            Tok::DotEq
                        } else {
                            Tok::Dot
                        }
                    }
                    b'=' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            if self.peek() == Some(b'=') {
                                self.bump();
                                Tok::EqEqEq
                            } else {
                                Tok::EqEq
                            }
                        }
                        Some(b'>') => {
                            self.bump();
                            Tok::FatArrow
                        }
                        _ => Tok::Eq,
                    },
                    b'!' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            if self.peek() == Some(b'=') {
                                self.bump();
                                Tok::NotEqEq
                            } else {
                                Tok::NotEq
                            }
                        }
                        _ => Tok::Bang,
                    },
                    b'<' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::Le
                        }
                        Some(b'>') => {
                            self.bump();
                            Tok::NotEq
                        }
                        Some(b'<') if self.peek2() == Some(b'<') => {
                            self.bump_n(2);
                            self.heredoc()?
                        }
                        _ => Tok::Lt,
                    },
                    b'>' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::Ge
                        }
                        _ => Tok::Gt,
                    },
                    b'+' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::PlusEq
                        }
                        Some(b'+') => {
                            self.bump();
                            Tok::Inc
                        }
                        _ => Tok::Plus,
                    },
                    b'-' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::MinusEq
                        }
                        Some(b'-') => {
                            self.bump();
                            Tok::Dec
                        }
                        Some(b'>') => {
                            self.bump();
                            Tok::Arrow
                        }
                        _ => Tok::Minus,
                    },
                    b'*' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::StarEq
                        }
                        _ => Tok::Star,
                    },
                    b'/' => match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::SlashEq
                        }
                        _ => Tok::Slash,
                    },
                    b'%' => Tok::Percent,
                    b'&' => match self.peek() {
                        Some(b'&') => {
                            self.bump();
                            Tok::AndAnd
                        }
                        _ => Tok::Amp,
                    },
                    b'|' => match self.peek() {
                        Some(b'|') => {
                            self.bump();
                            Tok::OrOr
                        }
                        other => {
                            return Err(
                                self.err(format!("unsupported byte after '|': {other:?}"))
                            )
                        }
                    },
                    b'?' => Tok::Question,
                    b':' => Tok::Colon,
                    other => {
                        return Err(self.err(format!(
                            "unsupported byte 0x{other:02x} ({:?}) in PHP code",
                            other as char
                        )))
                    }
                }
            }
        };
        Ok(SpannedTok { tok, span })
    }

    /// Lexes a heredoc (`<<<EOT … EOT;`) or nowdoc (`<<<'EOT' …`) body;
    /// the `<<<` has already been consumed. Heredoc bodies interpolate
    /// like double-quoted strings; nowdoc bodies are literal.
    fn heredoc(&mut self) -> Result<Tok, LexPhpError> {
        // Optional quoting of the marker.
        let (nowdoc, quote) = match self.peek() {
            Some(b'\'') => (true, true),
            Some(b'"') => (false, true),
            _ => (false, false),
        };
        if quote {
            self.bump();
        }
        let marker = self.ident_text()?;
        if quote {
            let close = self.bump();
            let expected = if nowdoc { Some(b'\'') } else { Some(b'"') };
            if close != expected {
                return Err(self.err("malformed heredoc marker"));
            }
        }
        // Consume to end of line.
        while let Some(c) = self.peek() {
            self.bump();
            if c == b'\n' {
                break;
            }
        }
        // Collect lines until one whose (whitespace-trimmed) content is
        // the marker, optionally followed by ';' or ','.
        let mut body: Vec<u8> = Vec::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err(format!("unterminated heredoc <<<{marker}")));
            }
            let line_start = self.pos;
            let mut line_end = line_start;
            while line_end < self.src.len() && self.src[line_end] != b'\n' {
                line_end += 1;
            }
            let line = &self.src[line_start..line_end];
            let trimmed = line
                .iter()
                .position(|b| !b.is_ascii_whitespace())
                .map(|i| &line[i..])
                .unwrap_or(&[]);
            let is_terminator = trimmed.starts_with(marker.as_bytes())
                && matches!(
                    trimmed.get(marker.len()),
                    None | Some(b';') | Some(b',') | Some(b'\r')
                );
            if is_terminator {
                // Consume up to and including the marker text, leaving
                // any ';' for the ordinary lexer.
                let indent = line.len() - trimmed.len();
                self.bump_n(indent + marker.len());
                // Drop the newline that precedes the terminator line.
                if body.last() == Some(&b'\n') {
                    body.pop();
                }
                break;
            }
            self.bump_n(line_end - line_start);
            body.extend_from_slice(line);
            if self.peek() == Some(b'\n') {
                self.bump();
                body.push(b'\n');
            }
        }
        if nowdoc {
            Ok(Tok::Str(body))
        } else {
            Ok(Tok::InterpStr(interp_slice(&body, self.line, self.col)?))
        }
    }

    fn ident_text(&mut self) -> Result<String, LexPhpError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// Parses the body of a double-quoted string (opening quote already
    /// consumed), resolving escapes and interpolation.
    fn interp_string(&mut self) -> Result<Vec<StrPart>, LexPhpError> {
        let mut parts: Vec<StrPart> = Vec::new();
        let mut lit: Vec<u8> = Vec::new();
        macro_rules! flush {
            () => {
                if !lit.is_empty() {
                    parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                }
            };
        }
        loop {
            let Some(b) = self.bump() else {
                return Err(self.err("unterminated double-quoted string"));
            };
            match b {
                b'"' => break,
                b'\\' => match self.bump() {
                    Some(b'n') => lit.push(b'\n'),
                    Some(b't') => lit.push(b'\t'),
                    Some(b'r') => lit.push(b'\r'),
                    Some(b'0') => lit.push(0),
                    Some(b'"') => lit.push(b'"'),
                    Some(b'\\') => lit.push(b'\\'),
                    Some(b'$') => lit.push(b'$'),
                    Some(b'\'') => {
                        lit.push(b'\\');
                        lit.push(b'\'');
                    }
                    Some(other) => {
                        lit.push(b'\\');
                        lit.push(other);
                    }
                    None => return Err(self.err("unterminated string escape")),
                },
                b'$' => {
                    if self
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                    {
                        flush!();
                        let name = self.ident_text()?;
                        // `$name[key]` (unquoted or quoted key, no nesting).
                        if self.peek() == Some(b'[') {
                            self.bump();
                            let mut key = Vec::new();
                            let quoted = matches!(self.peek(), Some(b'\'') | Some(b'"'));
                            if quoted {
                                self.bump();
                            }
                            loop {
                                match self.peek() {
                                    Some(b']') => break,
                                    Some(b'\'') | Some(b'"') if quoted => {
                                        self.bump();
                                    }
                                    Some(c) => {
                                        key.push(c);
                                        self.bump();
                                    }
                                    None => {
                                        return Err(
                                            self.err("unterminated interpolated index")
                                        )
                                    }
                                }
                            }
                            self.bump(); // ]
                            parts.push(StrPart::Index(name, key));
                        } else if self.peek() == Some(b'-') && self.peek2() == Some(b'>') {
                            self.bump_n(2);
                            let prop = self.ident_text()?;
                            parts.push(StrPart::Prop(name, prop));
                        } else {
                            parts.push(StrPart::Var(name));
                        }
                    } else {
                        lit.push(b'$');
                    }
                }
                b'{' => {
                    if self.peek() == Some(b'$') {
                        flush!();
                        self.bump(); // $
                        let name = self.ident_text()?;
                        match self.peek() {
                            Some(b'[') => {
                                self.bump();
                                let quoted = matches!(self.peek(), Some(b'\'') | Some(b'"'));
                                if quoted {
                                    self.bump();
                                }
                                let mut key = Vec::new();
                                loop {
                                    match self.peek() {
                                        Some(b']') => break,
                                        Some(b'\'') | Some(b'"') if quoted => {
                                            self.bump();
                                        }
                                        Some(c) => {
                                            key.push(c);
                                            self.bump();
                                        }
                                        None => {
                                            return Err(self
                                                .err("unterminated interpolated index"))
                                        }
                                    }
                                }
                                self.bump(); // ]
                                if self.bump() != Some(b'}') {
                                    return Err(self.err("expected '}' after interpolation"));
                                }
                                parts.push(StrPart::Index(name, key));
                            }
                            Some(b'-') if self.peek2() == Some(b'>') => {
                                self.bump_n(2);
                                let prop = self.ident_text()?;
                                if self.bump() != Some(b'}') {
                                    return Err(self.err("expected '}' after interpolation"));
                                }
                                parts.push(StrPart::Prop(name, prop));
                            }
                            Some(b'}') => {
                                self.bump();
                                parts.push(StrPart::Var(name));
                            }
                            _ => return Err(self.err("unsupported {$...} interpolation")),
                        }
                    } else {
                        lit.push(b'{');
                    }
                }
                other => lit.push(other),
            }
        }
        if !lit.is_empty() {
            parts.push(StrPart::Lit(lit));
        }
        Ok(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src.as_bytes())
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn basic_assignment() {
        let t = toks("<?php $x = 'hi'; ?>");
        assert_eq!(
            t,
            vec![
                Tok::Variable("x".into()),
                Tok::Eq,
                Tok::Str(b"hi".to_vec()),
                Tok::Semi,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn inline_html_then_php() {
        let t = toks("<html><?php echo 1;");
        assert!(matches!(&t[0], Tok::InlineHtml(h) if h == b"<html>"));
        assert_eq!(t[1], Tok::Ident("echo".into()));
    }

    #[test]
    fn interpolation_variants() {
        let t = toks(r#"<?php $q = "WHERE userid='$userid' AND x={$row['name']} p=$obj->id";"#);
        let Tok::InterpStr(parts) = &t[2] else {
            panic!("expected interp string, got {:?}", t[2])
        };
        assert_eq!(
            parts,
            &vec![
                StrPart::Lit(b"WHERE userid='".to_vec()),
                StrPart::Var("userid".into()),
                StrPart::Lit(b"' AND x=".to_vec()),
                StrPart::Index("row".into(), b"name".to_vec()),
                StrPart::Lit(b" p=".to_vec()),
                StrPart::Prop("obj".into(), "id".into()),
            ]
        );
    }

    #[test]
    fn dollar_index_without_braces() {
        let t = toks(r#"<?php $q = "id=$_GET[userid]";"#);
        let Tok::InterpStr(parts) = &t[2] else { panic!() };
        assert_eq!(
            parts,
            &vec![
                StrPart::Lit(b"id=".to_vec()),
                StrPart::Index("_GET".into(), b"userid".to_vec()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("<?php // line\n# hash\n/* block */ $x;");
        assert_eq!(t[0], Tok::Variable("x".into()));
    }

    #[test]
    fn operators() {
        let t = toks("<?php $a .= $b . $c; $d === $e; $f != $g; $h->i(); $j ? $k : $l;");
        assert!(t.contains(&Tok::DotEq));
        assert!(t.contains(&Tok::Dot));
        assert!(t.contains(&Tok::EqEqEq));
        assert!(t.contains(&Tok::NotEq));
        assert!(t.contains(&Tok::Arrow));
        assert!(t.contains(&Tok::Question));
    }

    #[test]
    fn numbers() {
        let t = toks("<?php $a = 42; $b = 3.5;");
        assert!(t.contains(&Tok::Int(42)));
        assert!(t.contains(&Tok::Float(3.5)));
    }

    #[test]
    fn single_quote_escapes() {
        let t = toks(r"<?php $s = 'it\'s \\ \n';");
        // \n is literal backslash-n in single quotes.
        assert!(t.contains(&Tok::Str(b"it's \\ \\n".to_vec())));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex(b"<?php $s = 'oops").is_err());
        assert!(lex(b"<?php $s = \"oops").is_err());
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex(b"<?php\n$a = 1;\n$b = 2;").unwrap();
        let b_tok = toks
            .iter()
            .find(|t| t.tok == Tok::Variable("b".into()))
            .unwrap();
        assert_eq!(b_tok.span.line, 3);
    }

    #[test]
    fn close_tag_acts_as_semicolon() {
        let t = toks("<?php echo $x ?> tail");
        assert!(t.contains(&Tok::Semi));
        assert!(t.iter().any(|t| matches!(t, Tok::InlineHtml(h) if h == b" tail")));
    }
}

/// Parses heredoc body bytes into interpolation parts (the
/// double-quoted-string rules minus the quote terminator).
fn interp_slice(body: &[u8], line: u32, col: u32) -> Result<Vec<StrPart>, LexPhpError> {
    let err = |message: &str| LexPhpError {
        message: message.to_owned(),
        span: Span::new(line, col),
    };
    let mut parts: Vec<StrPart> = Vec::new();
    let mut lit: Vec<u8> = Vec::new();
    let mut i = 0usize;
    let n = body.len();
    let is_ident_start = |b: u8| b.is_ascii_alphabetic() || b == b'_';
    let is_ident_cont = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let read_ident = |bytes: &[u8], mut j: usize| -> (String, usize) {
        let start = j;
        while j < bytes.len() && is_ident_cont(bytes[j]) {
            j += 1;
        }
        (
            String::from_utf8_lossy(&bytes[start..j]).into_owned(),
            j,
        )
    };
    macro_rules! flush {
        () => {
            if !lit.is_empty() {
                parts.push(StrPart::Lit(std::mem::take(&mut lit)));
            }
        };
    }
    while i < n {
        match body[i] {
            b'\\' if i + 1 < n => {
                let c = body[i + 1];
                match c {
                    b'n' => lit.push(b'\n'),
                    b't' => lit.push(b'\t'),
                    b'r' => lit.push(b'\r'),
                    b'\\' => lit.push(b'\\'),
                    b'$' => lit.push(b'$'),
                    other => {
                        lit.push(b'\\');
                        lit.push(other);
                    }
                }
                i += 2;
            }
            b'$' if i + 1 < n && is_ident_start(body[i + 1]) => {
                flush!();
                let (name, j) = read_ident(body, i + 1);
                i = j;
                if i < n && body[i] == b'[' {
                    let mut k = i + 1;
                    let quoted = k < n && (body[k] == b'\'' || body[k] == b'"');
                    if quoted {
                        k += 1;
                    }
                    let key_start = k;
                    while k < n && body[k] != b']' && body[k] != b'\'' && body[k] != b'"' {
                        k += 1;
                    }
                    let key = body[key_start..k].to_vec();
                    if quoted && k < n {
                        k += 1;
                    }
                    if k >= n || body[k] != b']' {
                        return Err(err("unterminated interpolated index in heredoc"));
                    }
                    i = k + 1;
                    parts.push(StrPart::Index(name, key));
                } else if i + 1 < n && body[i] == b'-' && body[i + 1] == b'>' {
                    let (prop, j) = read_ident(body, i + 2);
                    i = j;
                    parts.push(StrPart::Prop(name, prop));
                } else {
                    parts.push(StrPart::Var(name));
                }
            }
            b'{' if i + 1 < n && body[i + 1] == b'$' => {
                flush!();
                let (name, j) = read_ident(body, i + 2);
                let mut k = j;
                if k < n && body[k] == b'[' {
                    let mut m = k + 1;
                    let quoted = m < n && (body[m] == b'\'' || body[m] == b'"');
                    if quoted {
                        m += 1;
                    }
                    let key_start = m;
                    while m < n && body[m] != b']' && body[m] != b'\'' && body[m] != b'"' {
                        m += 1;
                    }
                    let key = body[key_start..m].to_vec();
                    if quoted && m < n {
                        m += 1;
                    }
                    if m >= n || body[m] != b']' {
                        return Err(err("unterminated interpolated index in heredoc"));
                    }
                    k = m + 1;
                    if k >= n || body[k] != b'}' {
                        return Err(err("expected '}' in heredoc interpolation"));
                    }
                    i = k + 1;
                    parts.push(StrPart::Index(name, key));
                } else if k < n && body[k] == b'}' {
                    i = k + 1;
                    parts.push(StrPart::Var(name));
                } else if k + 1 < n && body[k] == b'-' && body[k + 1] == b'>' {
                    let (prop, j2) = read_ident(body, k + 2);
                    if j2 >= n || body[j2] != b'}' {
                        return Err(err("expected '}' in heredoc interpolation"));
                    }
                    i = j2 + 1;
                    parts.push(StrPart::Prop(name, prop));
                } else {
                    return Err(err("unsupported heredoc interpolation"));
                }
            }
            other => {
                lit.push(other);
                i += 1;
            }
        }
    }
    if !lit.is_empty() {
        parts.push(StrPart::Lit(lit));
    }
    Ok(parts)
}

#[cfg(test)]
mod heredoc_tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src.as_bytes())
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn heredoc_with_interpolation() {
        let t = toks("<?php $q = <<<EOT\nSELECT * FROM t WHERE id='$id'\nEOT;\n");
        let Tok::InterpStr(parts) = &t[2] else {
            panic!("expected heredoc interp, got {:?}", t[2]);
        };
        assert_eq!(
            parts,
            &vec![
                StrPart::Lit(b"SELECT * FROM t WHERE id='".to_vec()),
                StrPart::Var("id".into()),
                StrPart::Lit(b"'".to_vec()),
            ]
        );
        assert_eq!(t[3], Tok::Semi);
    }

    #[test]
    fn heredoc_multiline_body() {
        let t = toks("<?php $h = <<<HTML\n<div>\n  line two\n</div>\nHTML;\n");
        let Tok::InterpStr(parts) = &t[2] else { panic!() };
        assert_eq!(
            parts,
            &vec![StrPart::Lit(b"<div>\n  line two\n</div>".to_vec())]
        );
    }

    #[test]
    fn nowdoc_is_literal() {
        let t = toks("<?php $s = <<<'EOT'\nno $interp here\nEOT;\n");
        assert_eq!(t[2], Tok::Str(b"no $interp here".to_vec()));
    }

    #[test]
    fn double_quoted_marker() {
        let t = toks("<?php $s = <<<\"EOT\"\nhi $name\nEOT;\n");
        let Tok::InterpStr(parts) = &t[2] else { panic!() };
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn unterminated_heredoc_errors() {
        assert!(lex(b"<?php $q = <<<EOT\nnever closed\n").is_err());
    }

    #[test]
    fn heredoc_with_braced_index() {
        let t = toks("<?php $q = <<<EOT\nv={$row['name']}!\nEOT;\n");
        let Tok::InterpStr(parts) = &t[2] else { panic!() };
        assert_eq!(
            parts,
            &vec![
                StrPart::Lit(b"v=".to_vec()),
                StrPart::Index("row".into(), b"name".to_vec()),
                StrPart::Lit(b"!".to_vec()),
            ]
        );
    }
}
