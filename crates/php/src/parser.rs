//! Recursive-descent parser for the analyzed PHP subset.

use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexPhpError};
use crate::span::Span;
use crate::token::{SpannedTok, Tok};

/// Parser errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsePhpError {
    /// Human-readable message.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
}

impl fmt::Display for ParsePhpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParsePhpError {}

impl From<LexPhpError> for ParsePhpError {
    fn from(e: LexPhpError) -> Self {
        ParsePhpError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a PHP source file.
///
/// # Errors
///
/// Returns a [`ParsePhpError`] on any lexical or syntactic problem;
/// the error's span points at the offending token.
pub fn parse(src: &[u8]) -> Result<File, ParsePhpError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.statement()?);
    }
    Ok(File { stmts })
}

struct Parser {
    tokens: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn cur_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.cur(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParsePhpError {
        ParsePhpError {
            message: msg.into(),
            span: self.cur_span(),
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), ParsePhpError> {
        if self.cur() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.cur())))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.cur(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---------------- statements ----------------

    fn statement(&mut self) -> Result<Stmt, ParsePhpError> {
        let span = self.cur_span();
        // Skip stray semicolons.
        if matches!(self.cur(), Tok::Semi) {
            self.bump();
            return Ok(Stmt::new(StmtKind::Block(Vec::new()), span));
        }
        if let Tok::InlineHtml(h) = self.cur().clone() {
            self.bump();
            return Ok(Stmt::new(StmtKind::InlineHtml(h), span));
        }
        if self.is_kw("if") {
            return self.if_stmt();
        }
        if self.is_kw("while") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            let body = if matches!(self.cur(), Tok::Colon) {
                self.bump();
                let b = self.stmts_until_kw(&["endwhile"])?;
                self.expect_end_kw("endwhile")?;
                b
            } else {
                self.block_or_single()?
            };
            return Ok(Stmt::new(StmtKind::While { cond, body }, span));
        }
        if self.is_kw("do") {
            self.bump();
            let body = self.block_or_single()?;
            if !self.eat_kw("while") {
                return Err(self.err("expected 'while' after do-block"));
            }
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::DoWhile { body, cond }, span));
        }
        if self.is_kw("for") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let init = self.expr_list_until(&Tok::Semi)?;
            self.expect(&Tok::Semi)?;
            let cond = if matches!(self.cur(), Tok::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::Semi)?;
            let step = self.expr_list_until(&Tok::RParen)?;
            self.expect(&Tok::RParen)?;
            let body = if matches!(self.cur(), Tok::Colon) {
                self.bump();
                let b = self.stmts_until_kw(&["endfor"])?;
                self.expect_end_kw("endfor")?;
                b
            } else {
                self.block_or_single()?
            };
            return Ok(Stmt::new(
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                },
                span,
            ));
        }
        if self.is_kw("foreach") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let subject = self.expr()?;
            if !self.eat_kw("as") {
                return Err(self.err("expected 'as' in foreach"));
            }
            let first = match self.bump() {
                Tok::Variable(v) => v,
                other => return Err(self.err(format!("expected variable, found {other}"))),
            };
            let (key, value) = if matches!(self.cur(), Tok::FatArrow) {
                self.bump();
                match self.bump() {
                    Tok::Variable(v) => (Some(first), v),
                    other => {
                        return Err(self.err(format!("expected variable, found {other}")))
                    }
                }
            } else {
                (None, first)
            };
            self.expect(&Tok::RParen)?;
            let body = if matches!(self.cur(), Tok::Colon) {
                self.bump();
                let b = self.stmts_until_kw(&["endforeach"])?;
                self.expect_end_kw("endforeach")?;
                b
            } else {
                self.block_or_single()?
            };
            return Ok(Stmt::new(
                StmtKind::Foreach {
                    subject,
                    key,
                    value,
                    body,
                },
                span,
            ));
        }
        if self.is_kw("switch") {
            return self.switch_stmt();
        }
        if self.is_kw("function") {
            return self.func_decl();
        }
        if self.is_kw("class") {
            return self.class_decl();
        }
        if self.is_kw("return") {
            self.bump();
            let value = if matches!(self.cur(), Tok::Semi) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Return(value), span));
        }
        if self.is_kw("break") {
            self.bump();
            // Optional level argument, ignored.
            if let Tok::Int(_) = self.cur() {
                self.bump();
            }
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Break, span));
        }
        if self.is_kw("continue") {
            self.bump();
            if let Tok::Int(_) = self.cur() {
                self.bump();
            }
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Continue, span));
        }
        if self.is_kw("echo") || self.is_kw("print") {
            self.bump();
            let mut args = vec![self.expr()?];
            while matches!(self.cur(), Tok::Comma) {
                self.bump();
                args.push(self.expr()?);
            }
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Echo(args), span));
        }
        if self.is_kw("global") {
            self.bump();
            let mut names = Vec::new();
            loop {
                match self.bump() {
                    Tok::Variable(v) => names.push(v),
                    other => return Err(self.err(format!("expected variable, found {other}"))),
                }
                if matches!(self.cur(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Global(names), span));
        }
        if self.is_kw("unset") {
            self.bump();
            self.expect(&Tok::LParen)?;
            let args = self.expr_list_until(&Tok::RParen)?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Unset(args), span));
        }
        if self.is_kw("exit") || self.is_kw("die") {
            self.bump();
            let arg = if matches!(self.cur(), Tok::LParen) {
                self.bump();
                let a = if matches!(self.cur(), Tok::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                a
            } else {
                None
            };
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::new(StmtKind::Exit(arg), span));
        }
        for (kw, kind) in [
            ("include", IncludeKind::Include),
            ("include_once", IncludeKind::IncludeOnce),
            ("require", IncludeKind::Require),
            ("require_once", IncludeKind::RequireOnce),
        ] {
            if self.is_kw(kw) {
                self.bump();
                // Parenthesized or bare argument.
                let arg = if matches!(self.cur(), Tok::LParen) {
                    self.bump();
                    let e = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    e
                } else {
                    self.expr()?
                };
                self.expect(&Tok::Semi)?;
                return Ok(Stmt::new(StmtKind::Include { kind, arg }, span));
            }
        }
        if matches!(self.cur(), Tok::LBrace) {
            let body = self.block()?;
            return Ok(Stmt::new(StmtKind::Block(body), span));
        }
        // Expression statement.
        let e = self.expr()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt::new(StmtKind::Expr(e), span))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParsePhpError> {
        let span = self.cur_span();
        self.bump(); // if
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        // PHP alternative (template) syntax: `if (...): ... endif;`
        if matches!(self.cur(), Tok::Colon) {
            self.bump();
            let then = self.stmts_until_kw(&["elseif", "else", "endif"])?;
            let mut elifs = Vec::new();
            let mut els = None;
            loop {
                if self.is_kw("elseif") {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let c = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    self.expect(&Tok::Colon)?;
                    let b = self.stmts_until_kw(&["elseif", "else", "endif"])?;
                    elifs.push((c, b));
                } else if self.is_kw("else") {
                    self.bump();
                    self.expect(&Tok::Colon)?;
                    els = Some(self.stmts_until_kw(&["endif"])?);
                } else {
                    break;
                }
            }
            self.expect_end_kw("endif")?;
            return Ok(Stmt::new(
                StmtKind::If {
                    cond,
                    then,
                    elifs,
                    els,
                },
                span,
            ));
        }
        let then = self.block_or_single()?;
        let mut elifs = Vec::new();
        let mut els = None;
        loop {
            if self.is_kw("elseif") {
                self.bump();
                self.expect(&Tok::LParen)?;
                let c = self.expr()?;
                self.expect(&Tok::RParen)?;
                let b = self.block_or_single()?;
                elifs.push((c, b));
            } else if self.is_kw("else") {
                self.bump();
                if self.is_kw("if") {
                    // `else if` — parse as nested if inside else.
                    let nested = self.if_stmt()?;
                    els = Some(vec![nested]);
                } else {
                    els = Some(self.block_or_single()?);
                }
                break;
            } else {
                break;
            }
        }
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then,
                elifs,
                els,
            },
            span,
        ))
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ParsePhpError> {
        let span = self.cur_span();
        self.bump(); // switch
        self.expect(&Tok::LParen)?;
        let subject = self.expr()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        while !matches!(self.cur(), Tok::RBrace) {
            let label = if self.eat_kw("case") {
                let e = self.expr()?;
                Some(e)
            } else if self.eat_kw("default") {
                None
            } else {
                return Err(self.err("expected 'case' or 'default' in switch"));
            };
            // `case x:` or `case x;`
            if matches!(self.cur(), Tok::Colon | Tok::Semi) {
                self.bump();
            } else {
                return Err(self.err("expected ':' after case label"));
            }
            let mut body = Vec::new();
            while !matches!(self.cur(), Tok::RBrace)
                && !self.is_kw("case")
                && !self.is_kw("default")
            {
                body.push(self.statement()?);
            }
            cases.push((label, body));
        }
        self.expect(&Tok::RBrace)?;
        Ok(Stmt::new(StmtKind::Switch { subject, cases }, span))
    }

    fn func_decl(&mut self) -> Result<Stmt, ParsePhpError> {
        let span = self.cur_span();
        self.bump(); // function
        let name = match self.bump() {
            Tok::Ident(s) => s.to_ascii_lowercase(),
            other => return Err(self.err(format!("expected function name, found {other}"))),
        };
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        while !matches!(self.cur(), Tok::RParen) {
            let by_ref = if matches!(self.cur(), Tok::Amp) {
                self.bump();
                true
            } else {
                false
            };
            let pname = match self.bump() {
                Tok::Variable(v) => v,
                other => return Err(self.err(format!("expected parameter, found {other}"))),
            };
            let default = if matches!(self.cur(), Tok::Eq) {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            params.push(Param {
                name: pname,
                default,
                by_ref,
            });
            if matches!(self.cur(), Tok::Comma) {
                self.bump();
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt::new(
            StmtKind::FuncDecl(FuncDecl {
                name,
                params,
                body,
                span,
            }),
            span,
        ))
    }

    fn class_decl(&mut self) -> Result<Stmt, ParsePhpError> {
        let span = self.cur_span();
        self.bump(); // class
        let name = match self.bump() {
            Tok::Ident(s) => s.to_ascii_lowercase(),
            other => return Err(self.err(format!("expected class name, found {other}"))),
        };
        let parent = if self.eat_kw("extends") {
            match self.bump() {
                Tok::Ident(s) => Some(s.to_ascii_lowercase()),
                other => {
                    return Err(self.err(format!("expected parent class, found {other}")))
                }
            }
        } else {
            None
        };
        self.expect(&Tok::LBrace)?;
        let mut methods = Vec::new();
        while !matches!(self.cur(), Tok::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated class body"));
            }
            // Visibility/static modifiers are ignored.
            while self.is_kw("public")
                || self.is_kw("private")
                || self.is_kw("protected")
                || self.is_kw("static")
            {
                self.bump();
            }
            if self.is_kw("var") {
                // Property declaration: `var $x = default;`
                self.bump();
                let _ = self.expr()?;
                self.expect(&Tok::Semi)?;
                continue;
            }
            if self.is_kw("function") {
                let decl = self.func_decl()?;
                let StmtKind::FuncDecl(d) = decl.kind else {
                    unreachable!("func_decl returns FuncDecl")
                };
                methods.push(d);
                continue;
            }
            if matches!(self.cur(), Tok::Variable(_)) {
                // Typed/untyped property without `var`.
                let _ = self.expr()?;
                self.expect(&Tok::Semi)?;
                continue;
            }
            return Err(self.err(format!("unexpected token {} in class body", self.cur())));
        }
        self.expect(&Tok::RBrace)?;
        Ok(Stmt::new(
            StmtKind::ClassDecl(ClassDecl {
                name,
                parent,
                methods,
                span,
            }),
            span,
        ))
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParsePhpError> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while !matches!(self.cur(), Tok::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block"));
            }
            out.push(self.statement()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(out)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParsePhpError> {
        if matches!(self.cur(), Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    /// Parses statements until one of the given keywords is the current
    /// token (PHP alternative syntax bodies: `if: … endif;`).
    fn stmts_until_kw(&mut self, kws: &[&str]) -> Result<Vec<Stmt>, ParsePhpError> {
        let mut out = Vec::new();
        loop {
            if self.at_eof() {
                return Err(self.err(format!("expected one of {kws:?} before end of file")));
            }
            if kws.iter().any(|k| self.is_kw(k)) {
                return Ok(out);
            }
            out.push(self.statement()?);
        }
    }

    /// After an alternative-syntax body, consumes the closing keyword
    /// and its statement terminator.
    fn expect_end_kw(&mut self, kw: &str) -> Result<(), ParsePhpError> {
        if !self.eat_kw(kw) {
            return Err(self.err(format!("expected '{kw}'")));
        }
        if matches!(self.cur(), Tok::Semi) {
            self.bump();
        }
        Ok(())
    }

    fn expr_list_until(&mut self, end: &Tok) -> Result<Vec<Expr>, ParsePhpError> {
        let mut out = Vec::new();
        if self.cur() == end {
            return Ok(out);
        }
        out.push(self.expr()?);
        while matches!(self.cur(), Tok::Comma) {
            self.bump();
            out.push(self.expr()?);
        }
        Ok(out)
    }

    // ---------------- expressions ----------------
    // Precedence (low to high):
    //   or  |  and  |  assignment  |  ?:  |  ||  |  &&  |  equality  |
    //   relational  |  additive (+ - .)  |  multiplicative  |  unary  |
    //   postfix  |  atom

    fn expr(&mut self) -> Result<Expr, ParsePhpError> {
        self.or_keyword()
    }

    fn or_keyword(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.and_keyword()?;
        while self.is_kw("or") {
            let span = self.cur_span();
            self.bump();
            let rhs = self.and_keyword()?;
            lhs = Expr::new(ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn and_keyword(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.assignment()?;
        while self.is_kw("and") {
            let span = self.cur_span();
            self.bump();
            let rhs = self.assignment()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn assignment(&mut self) -> Result<Expr, ParsePhpError> {
        let lhs = self.ternary()?;
        let op = match self.cur() {
            Tok::Eq => None,
            Tok::DotEq => Some(BinOp::Concat),
            Tok::PlusEq => Some(BinOp::Add),
            Tok::MinusEq => Some(BinOp::Sub),
            Tok::StarEq => Some(BinOp::Mul),
            Tok::SlashEq => Some(BinOp::Div),
            _ => return Ok(lhs),
        };
        let span = self.cur_span();
        self.bump();
        // Right-associative.
        let rhs = self.assignment()?;
        Ok(Expr::new(
            ExprKind::Assign(Box::new(lhs), op, Box::new(rhs)),
            span,
        ))
    }

    fn ternary(&mut self) -> Result<Expr, ParsePhpError> {
        let cond = self.logical_or()?;
        if matches!(self.cur(), Tok::Question) {
            let span = self.cur_span();
            self.bump();
            let then = if matches!(self.cur(), Tok::Colon) {
                None
            } else {
                Some(Box::new(self.expr()?))
            };
            self.expect(&Tok::Colon)?;
            // The else operand admits assignment, matching PHP's
            // handling of the common `cond ? $a = x : $a = y;` idiom
            // (the paper's Figure 2, lines 01-02).
            let els = self.assignment()?;
            return Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), then, Box::new(els)),
                span,
            ));
        }
        Ok(cond)
    }

    fn logical_or(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.logical_and()?;
        while matches!(self.cur(), Tok::OrOr) {
            let span = self.cur_span();
            self.bump();
            let rhs = self.logical_and()?;
            lhs = Expr::new(ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.equality()?;
        while matches!(self.cur(), Tok::AndAnd) {
            let span = self.cur_span();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.cur() {
                Tok::EqEq => BinOp::Eq,
                Tok::EqEqEq => BinOp::Identical,
                Tok::NotEq => BinOp::Neq,
                Tok::NotEqEq => BinOp::NotIdentical,
                _ => break,
            };
            let span = self.cur_span();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.cur() {
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            let span = self.cur_span();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.cur() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Dot => BinOp::Concat,
                _ => break,
            };
            let span = self.cur_span();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParsePhpError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.cur() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let span = self.cur_span();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParsePhpError> {
        let span = self.cur_span();
        match self.cur().clone() {
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Unary(UnaryOp::Not, Box::new(e)), span))
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Unary(UnaryOp::Neg, Box::new(e)), span))
            }
            Tok::At => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Suppress(Box::new(e)), span))
            }
            Tok::Inc | Tok::Dec => {
                let inc = matches!(self.cur(), Tok::Inc);
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(
                    ExprKind::IncDec {
                        target: Box::new(e),
                        pre: true,
                        inc,
                    },
                    span,
                ))
            }
            Tok::LParen => {
                // Cast or parenthesized expression.
                if let Tok::Ident(name) = self.tokens[self.pos + 1].tok.clone() {
                    let cast = match name.to_ascii_lowercase().as_str() {
                        "int" | "integer" => Some(CastKind::Int),
                        "float" | "double" => Some(CastKind::Float),
                        "string" => Some(CastKind::Str),
                        "bool" | "boolean" => Some(CastKind::Bool),
                        "array" => Some(CastKind::Array),
                        _ => None,
                    };
                    if let Some(kind) = cast {
                        if self.tokens[self.pos + 2].tok == Tok::RParen {
                            self.bump(); // (
                            self.bump(); // ident
                            self.bump(); // )
                            let e = self.unary()?;
                            return Ok(Expr::new(ExprKind::Cast(kind, Box::new(e)), span));
                        }
                    }
                }
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParsePhpError> {
        let mut e = self.atom()?;
        loop {
            let span = self.cur_span();
            match self.cur().clone() {
                Tok::LBracket => {
                    self.bump();
                    if matches!(self.cur(), Tok::RBracket) {
                        self.bump();
                        e = Expr::new(ExprKind::Index(Box::new(e), None), span);
                    } else {
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        e = Expr::new(ExprKind::Index(Box::new(e), Some(Box::new(idx))), span);
                    }
                }
                Tok::Arrow => {
                    self.bump();
                    let name = match self.bump() {
                        Tok::Ident(s) => s,
                        other => {
                            return Err(self.err(format!("expected member name, found {other}")))
                        }
                    };
                    if matches!(self.cur(), Tok::LParen) {
                        self.bump();
                        let args = self.expr_list_until(&Tok::RParen)?;
                        self.expect(&Tok::RParen)?;
                        e = Expr::new(
                            ExprKind::MethodCall(Box::new(e), name.to_ascii_lowercase(), args),
                            span,
                        );
                    } else {
                        e = Expr::new(ExprKind::Prop(Box::new(e), name), span);
                    }
                }
                Tok::Inc | Tok::Dec => {
                    let inc = matches!(self.cur(), Tok::Inc);
                    self.bump();
                    e = Expr::new(
                        ExprKind::IncDec {
                            target: Box::new(e),
                            pre: false,
                            inc,
                        },
                        span,
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParsePhpError> {
        let span = self.cur_span();
        match self.bump() {
            Tok::Variable(v) => Ok(Expr::new(ExprKind::Var(v), span)),
            Tok::Int(i) => Ok(Expr::new(ExprKind::Int(i), span)),
            Tok::Float(x) => Ok(Expr::new(ExprKind::Float(x), span)),
            Tok::Str(s) => Ok(Expr::new(ExprKind::Str(s), span)),
            Tok::InterpStr(parts) => Ok(Expr::new(ExprKind::Interp(parts), span)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => return Ok(Expr::new(ExprKind::Bool(true), span)),
                    "false" => return Ok(Expr::new(ExprKind::Bool(false), span)),
                    "null" => return Ok(Expr::new(ExprKind::Null, span)),
                    "isset" => {
                        self.expect(&Tok::LParen)?;
                        let args = self.expr_list_until(&Tok::RParen)?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::new(ExprKind::Isset(args), span));
                    }
                    "empty" => {
                        self.expect(&Tok::LParen)?;
                        let e = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::new(ExprKind::Empty(Box::new(e)), span));
                    }
                    "list" => {
                        self.expect(&Tok::LParen)?;
                        let args = self.expr_list_until(&Tok::RParen)?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::new(ExprKind::Call("list".into(), args), span));
                    }
                    "array" => {
                        if matches!(self.cur(), Tok::LParen) {
                            self.bump();
                            let items = self.array_items(&Tok::RParen)?;
                            self.expect(&Tok::RParen)?;
                            return Ok(Expr::new(ExprKind::Array(items), span));
                        }
                        return Ok(Expr::new(ExprKind::ConstFetch(name), span));
                    }
                    "new" => {
                        let cls = match self.bump() {
                            Tok::Ident(s) => s.to_ascii_lowercase(),
                            other => {
                                return Err(
                                    self.err(format!("expected class name, found {other}"))
                                )
                            }
                        };
                        let args = if matches!(self.cur(), Tok::LParen) {
                            self.bump();
                            let a = self.expr_list_until(&Tok::RParen)?;
                            self.expect(&Tok::RParen)?;
                            a
                        } else {
                            Vec::new()
                        };
                        return Ok(Expr::new(ExprKind::New(cls, args), span));
                    }
                    "exit" | "die" => {
                        // exit/die in expression position.
                        let arg = if matches!(self.cur(), Tok::LParen) {
                            self.bump();
                            let a = if matches!(self.cur(), Tok::RParen) {
                                None
                            } else {
                                Some(self.expr()?)
                            };
                            self.expect(&Tok::RParen)?;
                            a
                        } else {
                            None
                        };
                        let args = arg.map(|a| vec![a]).unwrap_or_default();
                        return Ok(Expr::new(ExprKind::Call("exit".into(), args), span));
                    }
                    _ => {}
                }
                if matches!(self.cur(), Tok::LParen) {
                    self.bump();
                    let args = self.expr_list_until(&Tok::RParen)?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::new(ExprKind::Call(lower, args), span))
                } else {
                    Ok(Expr::new(ExprKind::ConstFetch(name), span))
                }
            }
            Tok::LBracket => {
                let items = self.array_items(&Tok::RBracket)?;
                self.expect(&Tok::RBracket)?;
                Ok(Expr::new(ExprKind::Array(items), span))
            }
            other => Err(ParsePhpError {
                message: format!("unexpected token {other} in expression"),
                span,
            }),
        }
    }

    fn array_items(
        &mut self,
        end: &Tok,
    ) -> Result<Vec<(Option<Expr>, Expr)>, ParsePhpError> {
        let mut items = Vec::new();
        while self.cur() != end {
            let first = self.expr()?;
            if matches!(self.cur(), Tok::FatArrow) {
                self.bump();
                let value = self.expr()?;
                items.push((Some(first), value));
            } else {
                items.push((None, first));
            }
            if matches!(self.cur(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> File {
        parse(src.as_bytes()).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn parses_figure2() {
        // The paper's Figure 2, verbatim modulo whitespace.
        let f = parse_ok(
            r#"<?php
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
if ($userid == '')
{
    unp_msg($gp_invalidrequest);
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
if (!$DB->is_single_row($getuser))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
"#,
        );
        assert!(f.stmts.len() >= 5);
        // The hotspot is a method-call assignment.
        let q = f.stmts.iter().find_map(|s| match &s.kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Assign(lhs, None, rhs) => match (&lhs.kind, &rhs.kind) {
                    (ExprKind::Var(v), ExprKind::MethodCall(_, m, _))
                        if v == "getuser" && m == "query" =>
                    {
                        Some(rhs.clone())
                    }
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        });
        assert!(q.is_some(), "hotspot assignment found");
    }

    #[test]
    fn precedence_concat_vs_compare() {
        let f = parse_ok("<?php $x = 'a' . $b == 'c';");
        let StmtKind::Expr(e) = &f.stmts[0].kind else { panic!() };
        let ExprKind::Assign(_, None, rhs) = &e.kind else { panic!() };
        // `.` binds tighter than `==`.
        assert!(matches!(&rhs.kind, ExprKind::Binary(BinOp::Eq, _, _)));
    }

    #[test]
    fn function_declaration() {
        let f = parse_ok(
            "<?php function unp_clean($in, $mode = 1) { return addslashes($in); }",
        );
        let StmtKind::FuncDecl(d) = &f.stmts[0].kind else { panic!() };
        assert_eq!(d.name, "unp_clean");
        assert_eq!(d.params.len(), 2);
        assert!(d.params[1].default.is_some());
    }

    #[test]
    fn control_flow_forms() {
        parse_ok("<?php if ($a) $b = 1; elseif ($c) $d = 2; else { $e = 3; }");
        parse_ok("<?php while ($i < 10) { $i++; }");
        parse_ok("<?php for ($i = 0; $i < 10; $i++) echo $i;");
        parse_ok("<?php foreach ($rows as $k => $v) { echo $v; }");
        parse_ok("<?php do { $i--; } while ($i);");
        parse_ok(
            "<?php switch ($x) { case 'a': $y = 1; break; default: $y = 2; }",
        );
    }

    #[test]
    fn includes() {
        let f = parse_ok("<?php include('header.php'); require_once \"lib/\" . $mod . \".php\";");
        assert!(matches!(
            &f.stmts[0].kind,
            StmtKind::Include {
                kind: IncludeKind::Include,
                ..
            }
        ));
        assert!(matches!(
            &f.stmts[1].kind,
            StmtKind::Include {
                kind: IncludeKind::RequireOnce,
                ..
            }
        ));
    }

    #[test]
    fn ternary_shorthand_and_nested_index() {
        parse_ok("<?php $x = $_GET['a'] ? $_GET['a'] : 'd';");
        parse_ok("<?php $x = $arr['a']['b'];");
        parse_ok("<?php $x = isset($_POST['a']) ? $_POST['a'] : '';");
    }

    #[test]
    fn method_and_prop() {
        let f = parse_ok("<?php $r = $DB->query($q); $n = $row->name;");
        let StmtKind::Expr(e) = &f.stmts[0].kind else { panic!() };
        let ExprKind::Assign(_, None, rhs) = &e.kind else { panic!() };
        assert!(matches!(&rhs.kind, ExprKind::MethodCall(_, m, _) if m == "query"));
        let StmtKind::Expr(e) = &f.stmts[1].kind else { panic!() };
        let ExprKind::Assign(_, None, rhs) = &e.kind else { panic!() };
        assert!(matches!(&rhs.kind, ExprKind::Prop(_, p) if p == "name"));
    }

    #[test]
    fn casts() {
        let f = parse_ok("<?php $n = (int)$_GET['id']; $s = (string) $x;");
        let StmtKind::Expr(e) = &f.stmts[0].kind else { panic!() };
        let ExprKind::Assign(_, None, rhs) = &e.kind else { panic!() };
        assert!(matches!(&rhs.kind, ExprKind::Cast(CastKind::Int, _)));
    }

    #[test]
    fn arrays() {
        parse_ok("<?php $a = array('x' => 1, 'y' => 2); $b = ['p', 'q'];");
    }

    #[test]
    fn error_has_span() {
        let e = parse(b"<?php\n\n$x = ;").unwrap_err();
        assert_eq!(e.span.line, 3);
    }

    #[test]
    fn keyword_logical_ops() {
        parse_ok("<?php $ok = $a and $b; $y = $c or die('x');");
    }
}

#[cfg(test)]
mod alt_syntax_tests {
    use super::*;

    fn parse_ok(src: &str) -> File {
        parse(src.as_bytes()).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn alternative_if_syntax() {
        let f = parse_ok(
            "<?php if ($a): $x = 1; elseif ($b): $x = 2; else: $x = 3; endif;",
        );
        let StmtKind::If { elifs, els, .. } = &f.stmts[0].kind else {
            panic!()
        };
        assert_eq!(elifs.len(), 1);
        assert!(els.is_some());
    }

    #[test]
    fn alternative_if_with_inline_html() {
        // The template idiom the alternative syntax exists for.
        let f = parse_ok("<?php if ($ok): ?><b>yes</b><?php else: ?><i>no</i><?php endif;");
        let StmtKind::If { then, els, .. } = &f.stmts[0].kind else {
            panic!()
        };
        // `?>` closes PHP mode (lexed as a statement separator), so the
        // HTML lands inside the then-branch.
        assert!(then
            .iter()
            .any(|s| matches!(s.kind, StmtKind::InlineHtml(_))));
        assert!(els.is_some());
    }

    #[test]
    fn alternative_loops() {
        parse_ok("<?php while ($i): $i = $i - 1; endwhile;");
        parse_ok("<?php for ($i = 0; $i < 3; $i++): echo $i; endfor;");
        parse_ok("<?php foreach ($rows as $r): echo $r; endforeach;");
    }

    #[test]
    fn list_destructuring() {
        let f = parse_ok("<?php list($a, $b) = explode(':', $v);");
        let StmtKind::Expr(e) = &f.stmts[0].kind else { panic!() };
        let ExprKind::Assign(lhs, None, _) = &e.kind else { panic!() };
        assert!(matches!(&lhs.kind, ExprKind::Call(n, args) if n == "list" && args.len() == 2));
    }
}
