//! Parser robustness: the frontend must either parse or return a
//! structured error — never panic — and spans must stay meaningful.

use proptest::prelude::*;

use strtaint_php::{parse, StmtKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Total on arbitrary printable input (fuzz-light).
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,120}") {
        let _ = parse(src.as_bytes());
        let mut with_tag = String::from("<?php ");
        with_tag.push_str(&src);
        let _ = parse(with_tag.as_bytes());
    }

    /// Well-formed assignments always parse, whatever the payload.
    #[test]
    fn assignments_parse(name in "[a-z_][a-z0-9_]{0,8}", value in "[a-zA-Z0-9 _.,:!-]{0,20}") {
        let src = format!("<?php ${name} = '{value}';");
        let f = parse(src.as_bytes()).unwrap();
        prop_assert_eq!(f.stmts.len(), 1);
    }

    /// Interpolation round-trip: a double-quoted string with one
    /// variable yields exactly lit-var-lit parts.
    #[test]
    fn interpolation_shape(pre in "[a-z =]{0,10}", var in "[a-z][a-z0-9_]{0,6}", post in "[a-z =]{0,10}") {
        let src = format!("<?php $q = \"{pre}${var}{post}\";");
        let f = parse(src.as_bytes()).unwrap();
        let StmtKind::Expr(e) = &f.stmts[0].kind else { panic!() };
        let strtaint_php::ExprKind::Assign(_, None, rhs) = &e.kind else { panic!() };
        match &rhs.kind {
            strtaint_php::ExprKind::Interp(parts) => {
                let vars = parts
                    .iter()
                    .filter(|p| matches!(p, strtaint_php::StrPart::Var(_)))
                    .count();
                prop_assert_eq!(vars, 1);
            }
            other => prop_assert!(false, "expected interp, got {:?}", other),
        }
    }

    /// Nested control flow parses at depth.
    #[test]
    fn nesting_depth(depth in 1usize..12) {
        let mut src = String::from("<?php ");
        for _ in 0..depth {
            src.push_str("if ($x) { ");
        }
        src.push_str("$y = 1; ");
        for _ in 0..depth {
            src.push_str("} ");
        }
        prop_assert!(parse(src.as_bytes()).is_ok(), "{}", src);
    }

    /// Error spans point inside the file.
    #[test]
    fn error_spans_in_bounds(junk in "[;)(]{1,6}") {
        let src = format!("<?php\n$x = {junk};\n");
        if let Err(e) = parse(src.as_bytes()) {
            let lines = src.lines().count() as u32;
            prop_assert!(e.span.line >= 1 && e.span.line <= lines + 1, "{e}");
        }
    }
}

#[test]
fn deep_expression_nesting() {
    let mut src = String::from("<?php $x = ");
    for _ in 0..64 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..64 {
        src.push(')');
    }
    src.push(';');
    assert!(parse(src.as_bytes()).is_ok());
}

#[test]
fn long_concat_chain() {
    let mut src = String::from("<?php $q = 'a'");
    for i in 0..500 {
        src.push_str(&format!(" . 'p{i}'"));
    }
    src.push(';');
    assert!(parse(src.as_bytes()).is_ok());
}
