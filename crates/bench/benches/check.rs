//! Cold vs. prepared intersection-engine benchmark over the synthetic
//! corpus (checking phase only — pages are analyzed once up front).
//!
//! Three configurations over the same 30-page, 3-sinks-per-page
//! application:
//!
//! * `cold` — the naive reference engine, one hotspot at a time: every
//!   emptiness query re-trims, re-normalizes, and runs the full
//!   Bar-Hillel fixpoint on raw byte alphabets.
//! * `serial` — the prepared engine without parallelism: grammars
//!   trimmed/normalized once per root, byte-class DFAs, early-exit
//!   fixpoints.
//! * `prepared` — the full overhaul: prepared engine plus a shared
//!   preparation cache and the parallel hotspot driver.
//!
//! A fourth configuration, `daemon-warm`, re-checks the same unchanged
//! application through a warm [`strtaint_daemon::DaemonState`]: every
//! page replays its stored verdict (zero intersection queries), so the
//! row quantifies the incremental daemon's replay win over `cold`.
//!
//! A fifth, `policies`, re-analyzes the corpus with **every** built-in
//! policy enabled and drives all recognized sinks (SQL hotspots, shell/
//! path/eval sinks, echo sinks) through the [`PolicyChecker`] in one
//! parallel batch per page — the cost of the full multi-class sweep.
//!
//! A sixth, `optimized`, is the full optimized check path: the
//! prepared parallel driver plus the cross-page query cache, lazy
//! witness extraction, and the Aho–Corasick C4 prefilter (all default
//! options). The checker is primed once during setup, so the row
//! measures the warm steady state a long-running analysis session
//! reaches — the same discipline as `daemon-warm`. The `cold`,
//! `serial`, `prepared`, and `policies` rows pin `query_cache: false,
//! prefilter: false` explicitly so their meaning (and baseline
//! continuity) survives the optimized path becoming the default.
//!
//! A seventh, `remedy`, is `optimized` plus everything `strtaint fix`
//! and `strtaint profile` synthesize on top of a check: per-hotspot
//! skeleton allowlists, one deterministic fix plan per finding, and
//! the rendered guard-profile artifact. The row asserts its synthesis
//! overhead stays under 10% of the optimized check itself — remediation
//! evidence must ride along for free, not become a second checking
//! wall.
//!
//! An eighth, `tpl`, runs the optimized discipline over a same-sized
//! corpus written in the template language (lowered through the
//! `TplFrontend`): comparing it against `optimized` bounds the
//! per-language overhead of the frontend abstraction — the checker
//! sees only IR-derived grammars, so both languages should price
//! identically per sink.
//!
//! `scripts/bench.sh` merges this output into `BENCH_analyze.json`.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use strtaint_analysis::{analyze, Config};
use strtaint_checker::{CheckOptions, Checker, PolicyChecker};
use strtaint_grammar::NtId;
use strtaint_corpus::synth::{synth_app, SynthConfig};
use strtaint_daemon::{DaemonState, PageOutcome};
use strtaint_grammar::Budget;

/// Page-count override from `STRTAINT_BENCH_PAGES` (set by
/// `scripts/bench.sh --pages N`), so the same bench sources sweep from
/// the committed 30-page baseline up to fleet-scale (1k+) corpora.
fn pages_override() -> Option<usize> {
    std::env::var("STRTAINT_BENCH_PAGES").ok()?.parse().ok()
}

fn bench_check(c: &mut Criterion) {
    let config = Config::default();
    let mut group = c.benchmark_group("check");
    group.sample_size(10);

    let pages = pages_override().unwrap_or(30);
    let app = synth_app(&SynthConfig {
        pages,
        sinks_per_page: 3,
        replace_chain: 2,
        ..SynthConfig::default()
    });
    // Analysis runs once outside the measured region: these benches
    // isolate the checking phase the engine overhaul targets.
    let analyses: Vec<_> = app
        .entry_refs()
        .iter()
        .map(|e| analyze(&app.vfs, e, &config).expect("synth pages parse"))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cold = Checker::with_options(CheckOptions {
        naive_engine: true,
        query_cache: false,
        prefilter: false,
        ..CheckOptions::default()
    });
    group.bench_function(format!("cold/{pages}pages"), |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for a in &analyses {
                for h in &a.hotspots {
                    let r = cold.check_hotspot_with(&a.cfg, h.root, &Budget::unlimited());
                    findings += r.findings.len();
                }
            }
            std::hint::black_box(findings)
        })
    });

    let prepared = Checker::with_options(CheckOptions {
        query_cache: false,
        prefilter: false,
        ..CheckOptions::default()
    });
    group.bench_function(format!("serial/{pages}pages"), |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for a in &analyses {
                for h in &a.hotspots {
                    let r = prepared.check_hotspot_with(&a.cfg, h.root, &Budget::unlimited());
                    findings += r.findings.len();
                }
            }
            std::hint::black_box(findings)
        })
    });

    group.bench_function(format!("prepared/{pages}pages"), |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for a in &analyses {
                let roots: Vec<_> = a.hotspots.iter().map(|h| h.root).collect();
                let reports =
                    prepared.check_hotspots_with(&a.cfg, &roots, &Budget::unlimited(), workers);
                for r in reports {
                    findings += r.findings.len();
                }
            }
            std::hint::black_box(findings)
        })
    });
    // Warm-daemon replay: the daemon analyzes every page once during
    // setup; the measured region re-requests the unchanged pages and
    // must serve them all from resident verdicts.
    let daemon = DaemonState::new(app.vfs.clone(), config.clone(), None);
    let daemon_config = daemon.base_config().clone();
    for e in app.entry_refs() {
        daemon.analyze_page(e, false, &daemon_config);
    }
    group.bench_function(format!("daemon-warm/{pages}pages"), |b| {
        b.iter(|| {
            let mut replayed = 0usize;
            for e in app.entry_refs() {
                let (page, outcome) = daemon.analyze_page(e, false, &daemon_config);
                assert_eq!(outcome, PageOutcome::Replayed, "warm daemon must replay");
                replayed += usize::from(page.get("entry").is_some());
            }
            std::hint::black_box(replayed)
        })
    });

    // Full multi-class sweep: every built-in policy armed, all sinks
    // (SQL + shell/path/eval + echo) checked through the PolicyChecker.
    let policy_config = Config {
        policies: strtaint_policy::builtin()
            .iter()
            .map(|p| p.id.to_owned())
            .collect(),
        ..config.clone()
    };
    let policy_analyses: Vec<_> = app
        .entry_refs()
        .iter()
        .map(|e| analyze(&app.vfs, e, &policy_config).expect("synth pages parse"))
        .collect();
    let pchecker = PolicyChecker::with_options(CheckOptions {
        query_cache: false,
        prefilter: false,
        ..CheckOptions::default()
    });
    group.bench_function(format!("policies/{pages}pages"), |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for a in &policy_analyses {
                let mut items: Vec<(NtId, String)> = a
                    .hotspots
                    .iter()
                    .map(|h| (h.root, h.policy.clone()))
                    .collect();
                items.extend(a.echo_sinks.iter().map(|h| (h.root, h.policy.clone())));
                let reports =
                    pchecker.check_hotspots_with(&a.cfg, &items, &Budget::unlimited(), workers);
                for r in reports {
                    findings += r.findings.len();
                }
            }
            std::hint::black_box(findings)
        })
    });

    // The optimized check path with every default on: query cache,
    // lazy witnesses, C4 prefilter, parallel driver. One priming pass
    // during setup fills the cross-page cache, so the measured region
    // is the warm steady state (verdict replay + prefilter skips) —
    // the differential suite (tests/optimized_equivalence.rs) pins
    // this path's SARIF byte-identical to `cold` and `prepared`.
    let optimized = Checker::new();
    for a in &analyses {
        let roots: Vec<_> = a.hotspots.iter().map(|h| h.root).collect();
        optimized.check_hotspots_with(&a.cfg, &roots, &Budget::unlimited(), workers);
    }
    group.bench_function(format!("optimized/{pages}pages"), |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for a in &analyses {
                let roots: Vec<_> = a.hotspots.iter().map(|h| h.root).collect();
                let reports =
                    optimized.check_hotspots_with(&a.cfg, &roots, &Budget::unlimited(), workers);
                for r in reports {
                    findings += r.findings.len();
                }
            }
            std::hint::black_box(findings)
        })
    });

    // The template frontend under the same optimized discipline: a
    // corpus of the same page count written in the template language
    // (alternating vulnerable/sanitized SQL sinks), lowered through
    // `TplFrontend`, checked warm. Comparing this row against
    // `optimized` bounds the per-language overhead of the frontend
    // abstraction itself — the checking phase sees only IR-derived
    // grammars and should price both languages identically per sink.
    let mut tpl_vfs = strtaint_analysis::Vfs::new();
    let tpl_entries: Vec<String> = (0..pages)
        .map(|i| {
            let name = format!("page{i}.tpl");
            let guard = if i % 2 == 0 {
                String::new()
            } else {
                format!("{{% if !matches(\"/^[0-9]+$/\", id) %}}{{% exit %}}{{% end %}}\n")
            };
            let src = format!(
                "{{% var id = req.query.p{i} %}}\n{guard}\
                 {{% db.query(\"SELECT * FROM t{i} WHERE id='\" + id + \"'\") %}}\n"
            );
            tpl_vfs.add(&name, src);
            name
        })
        .collect();
    let tpl_analyses: Vec<_> = tpl_entries
        .iter()
        .map(|e| analyze(&tpl_vfs, e, &config).expect("tpl pages parse"))
        .collect();
    let tpl_checker = Checker::new();
    for a in &tpl_analyses {
        let roots: Vec<_> = a.hotspots.iter().map(|h| h.root).collect();
        tpl_checker.check_hotspots_with(&a.cfg, &roots, &Budget::unlimited(), workers);
    }
    group.bench_function(format!("tpl/{pages}pages"), |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for a in &tpl_analyses {
                let roots: Vec<_> = a.hotspots.iter().map(|h| h.root).collect();
                let reports =
                    tpl_checker.check_hotspots_with(&a.cfg, &roots, &Budget::unlimited(), workers);
                for r in reports {
                    findings += r.findings.len();
                }
            }
            std::hint::black_box(findings)
        })
    });

    // The remediation pipeline on top of the same warm optimized check:
    // skeleton allowlists per hotspot, one fix plan per finding, and
    // the rendered guard profile. The check and synthesis phases are
    // timed separately per sample so the row can assert the synthesis
    // overhead stays under 10% of the check itself.
    let check_times: RefCell<Vec<Duration>> = RefCell::new(Vec::new());
    let synth_times: RefCell<Vec<Duration>> = RefCell::new(Vec::new());
    group.bench_function(format!("remedy/{pages}pages"), |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let checked: Vec<Vec<_>> = analyses
                .iter()
                .map(|a| {
                    let roots: Vec<_> = a.hotspots.iter().map(|h| h.root).collect();
                    optimized.check_hotspots_with(&a.cfg, &roots, &Budget::unlimited(), workers)
                })
                .collect();
            let t_check = t0.elapsed();

            let t1 = Instant::now();
            let reports: Vec<_> = app
                .entry_refs()
                .iter()
                .zip(analyses.iter().zip(checked))
                .map(|(entry, (a, rs))| {
                    let hotspots = a
                        .hotspots
                        .iter()
                        .zip(rs)
                        .map(|(h, mut r)| {
                            let (skeletons, complete) = optimized.skeletons_for(&a.cfg, h.root);
                            r.skeletons = skeletons;
                            r.skeletons_complete = complete;
                            (h.clone(), r)
                        })
                        .collect();
                    strtaint::report::PageReport {
                        entry: (*entry).to_owned(),
                        hotspots,
                        grammar_nonterminals: 0,
                        grammar_productions: 0,
                        analysis_time: Duration::default(),
                        check_time: Duration::default(),
                        warnings: Vec::new(),
                        unmodeled: Vec::new(),
                        files_analyzed: a.files_analyzed,
                        inputs: a.inputs.iter().cloned().collect(),
                        degradations: Vec::new(),
                        skipped: None,
                    }
                })
                .collect();
            let plans = strtaint_remedy::plan_fixes(&app.vfs, &reports);
            let profile =
                strtaint_remedy::render_profile(&strtaint_remedy::profile_pages(&reports));
            let t_synth = t1.elapsed();

            check_times.borrow_mut().push(t_check);
            synth_times.borrow_mut().push(t_synth);
            std::hint::black_box((plans.len(), profile.len()))
        })
    });
    group.finish();

    let median = |times: &RefCell<Vec<Duration>>| {
        let mut v = times.borrow().clone();
        v.sort();
        v[v.len() / 2]
    };
    // Empty when `STRTAINT_BENCH_ONLY` filtered the remedy row out.
    if !check_times.borrow().is_empty() {
        let (check, synth) = (median(&check_times), median(&synth_times));
        assert!(
            synth.as_secs_f64() < 0.10 * check.as_secs_f64(),
            "remediation synthesis ({synth:?}) must stay under 10% of the \
             optimized check ({check:?})"
        );
    }
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
