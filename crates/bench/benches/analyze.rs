//! Cold vs. warm summary-cache analysis over the synthetic corpus.
//!
//! Measures what the staged AST→IR→grammar pipeline buys: with one
//! [`SummaryCache`] shared across pages, a file reached by many pages
//! (the shared `lib.php` include, byte-identical page bodies) is parsed
//! and lowered once and instantiated per page, so the warm runs pay
//! only the IR→grammar emission cost. `scripts/bench.sh` turns this
//! output into `BENCH_analyze.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use strtaint::{analyze_page_cached, analyze_page_with, Checker, Config, SummaryCache};
use strtaint_corpus::synth::{synth_app, SynthConfig};

/// Page-count override from `STRTAINT_BENCH_PAGES` (set by
/// `scripts/bench.sh --pages N`), so the same bench sources sweep from
/// the committed baseline up to fleet-scale (1k+) corpora.
fn pages_override() -> Option<usize> {
    std::env::var("STRTAINT_BENCH_PAGES").ok()?.parse().ok()
}

fn bench_analyze(c: &mut Criterion) {
    let config = Config::default();
    let checker = Checker::new();
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);

    let page_counts = match pages_override() {
        Some(p) => vec![p],
        None => vec![10usize, 30],
    };
    for pages in page_counts {
        let app = synth_app(&SynthConfig {
            pages,
            ..SynthConfig::default()
        });
        let entries = app.entry_refs();

        // Cold: no shared cache — every page re-lowers its includes.
        group.bench_function(format!("cold/{pages}pages"), |b| {
            b.iter(|| {
                for e in &entries {
                    let r = analyze_page_with(&app.vfs, e, &config, &checker).unwrap();
                    std::hint::black_box(r.hotspots.len());
                }
            })
        });

        // Warm: one cache shared across pages, pre-warmed so every
        // iteration measures pure instantiation (cache at steady state).
        let summaries = SummaryCache::new();
        for e in &entries {
            analyze_page_cached(&app.vfs, e, &config, &checker, &summaries).unwrap();
        }
        group.bench_function(format!("warm/{pages}pages"), |b| {
            b.iter(|| {
                for e in &entries {
                    let r =
                        analyze_page_cached(&app.vfs, e, &config, &checker, &summaries).unwrap();
                    std::hint::black_box(r.hotspots.len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
