//! Micro-benchmarks of the core algorithms: CFG–FSA intersection with
//! taint propagation (paper Fig. 7), CFG image under an FST (§3.1.2),
//! the sentential-form Earley parser (§3.2.2), and regex→DFA
//! compilation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use strtaint_automata::fst::builders;
use strtaint_automata::Regex;
use strtaint_grammar::image::image;
use strtaint_grammar::intersect::intersect;
use strtaint_grammar::{Cfg, NtId, Symbol};
use strtaint_sql::earley::recognizes_query;
use strtaint_sql::SqlGrammar;

/// Builds a chain grammar of `n` alternation layers over a tainted core.
fn layered_grammar(layers: usize) -> (Cfg, NtId) {
    let mut g = Cfg::new();
    let mut cur = g.add_nonterminal("leaf");
    g.add_literal_production(cur, b"x'1");
    g.add_literal_production(cur, b"42");
    for i in 0..layers {
        let next = g.add_nonterminal(format!("l{i}"));
        let mut rhs = g.literal_symbols(b"a=");
        rhs.push(Symbol::N(cur));
        g.add_production(next, rhs);
        let mut rhs2 = g.literal_symbols(b"b='");
        rhs2.push(Symbol::N(cur));
        rhs2.push(Symbol::T(b'\''));
        g.add_production(next, rhs2);
        cur = next;
    }
    (g, cur)
}

fn bench_intersection(c: &mut Criterion) {
    let dfa = Regex::new("^[^']*('[^']*'[^']*)*$").unwrap().match_dfa();
    let mut group = c.benchmark_group("algorithms/intersect");
    for layers in [4usize, 16, 64] {
        let (g, root) = layered_grammar(layers);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &g, |b, g| {
            b.iter(|| std::hint::black_box(intersect(g, root, &dfa).0.num_productions()))
        });
    }
    group.finish();
}

fn bench_image(c: &mut Criterion) {
    let fst = builders::addslashes();
    let replace = builders::replace_literal(b"[b]", b"<b>");
    let mut group = c.benchmark_group("algorithms/image");
    for layers in [4usize, 16, 64] {
        let (g, root) = layered_grammar(layers);
        group.bench_with_input(
            BenchmarkId::new("addslashes", layers),
            &g,
            |b, g| b.iter(|| std::hint::black_box(image(g, root, &fst).0.num_productions())),
        );
        group.bench_with_input(
            BenchmarkId::new("str_replace", layers),
            &g,
            |b, g| {
                b.iter(|| std::hint::black_box(image(g, root, &replace).0.num_productions()))
            },
        );
    }
    group.finish();
}

fn bench_sql_recognition(c: &mut Criterion) {
    let g = SqlGrammar::standard();
    let queries: &[&[u8]] = &[
        b"SELECT * FROM `unp_user` WHERE userid='1'",
        b"SELECT a.x, b.y FROM a JOIN b ON a.id = b.id WHERE a.x LIKE '%q%' ORDER BY a.x DESC LIMIT 5",
        b"INSERT INTO t (a, b, c) VALUES (1, 'x', NULL), (2, 'y', 3)",
        b"UPDATE users SET name = 'bob', age = age + 1 WHERE id IN (1, 2, 3)",
    ];
    c.bench_function("algorithms/earley_sql", |b| {
        b.iter(|| {
            for q in queries {
                std::hint::black_box(recognizes_query(&g, q));
            }
        })
    });
}

fn bench_regex_compile(c: &mut Criterion) {
    let patterns = [
        "^[\\d]+$",
        "[0-9]+",
        "^[a-zA-Z0-9_]{3,16}$",
        "^([^']|\\\\')*$",
    ];
    c.bench_function("algorithms/regex_to_dfa", |b| {
        b.iter(|| {
            for p in patterns {
                let d = Regex::new(p).unwrap().match_dfa();
                std::hint::black_box(d.num_states());
            }
        })
    });
}

criterion_group!(
    benches,
    bench_intersection,
    bench_image,
    bench_sql_recognition,
    bench_regex_compile
);
criterion_main!(benches);
