//! Application-size sweep (paper §5.3): analysis time as a function of
//! page count, and the include re-analysis effect ("our tool
//! re-analyzes these included files each time … memoization or
//! concurrent executions … could improve the performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use strtaint::Config;
use strtaint_corpus::{synth_app, SynthConfig};

fn bench_page_sweep(c: &mut Criterion) {
    let config = Config::default();
    let mut group = c.benchmark_group("scalability/pages");
    group.sample_size(10);
    for pages in [4usize, 8, 16, 32] {
        let app = synth_app(&SynthConfig {
            pages,
            ..SynthConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(pages), &app, |b, app| {
            b.iter(|| {
                let r = strtaint::analyze_app(
                    app.name,
                    &app.vfs,
                    &app.entry_refs(),
                    &config,
                );
                std::hint::black_box(r.distinct_findings().len());
            })
        });
    }
    group.finish();
}

fn bench_helper_bulk(c: &mut Criterion) {
    // Shared-helper bulk re-analyzed per page: linear in helpers ×
    // pages (the §5.3 memoization observation).
    let config = Config::default();
    let mut group = c.benchmark_group("scalability/helpers");
    group.sample_size(10);
    for helpers in [10usize, 40, 160] {
        let app = synth_app(&SynthConfig {
            pages: 8,
            helpers,
            ..SynthConfig::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(helpers), &app, |b, app| {
            b.iter(|| {
                let r = strtaint::analyze_app(
                    app.name,
                    &app.vfs,
                    &app.entry_refs(),
                    &config,
                );
                std::hint::black_box(r.pages.len());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_page_sweep, bench_helper_bulk);
criterion_main!(benches);
