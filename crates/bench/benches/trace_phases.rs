//! Phase-time breakdown from the structured tracing layer.
//!
//! Where `phases.rs` times the two paper phases by calling them
//! separately, this bench runs the *whole* pipeline under
//! `strtaint-obs` aggregate tracing and reports where the time went
//! phase by phase (page / summary / lower / emit / refine / prepare /
//! intersect / witness / check), exactly as `--stats` and
//! `--trace-json` would attribute it. The medians land in
//! BENCH_analyze.json via scripts/bench.sh, so a regression in any
//! single phase shows up in review even when the end-to-end time
//! stays flat.
//!
//! Also writes one full Chrome-trace artifact of the last run to
//! `target/trace_phases.json` (load in chrome://tracing) as the
//! smoke-level proof that the trace writer covers a corpus-sized run.
//!
//! Output format matches the vendored criterion shim line protocol
//! (`bench <name> median <duration> (<n> samples)`), which
//! scripts/bench.sh parses.

use std::collections::BTreeMap;
use std::time::Duration;

use strtaint::{analyze_page_cached, Checker, Config, SummaryCache};
use strtaint_obs as obs;

const SAMPLES: usize = 5;

fn corpus_run() {
    let config = Config::default();
    for app in [
        strtaint_corpus::apps::eve::build(),
        strtaint_corpus::apps::utopia::build(),
        strtaint_corpus::apps::warp::build(),
    ] {
        let checker = Checker::new();
        let summaries = SummaryCache::new();
        for e in &app.entries {
            let r = analyze_page_cached(&app.vfs, e, &config, &checker, &summaries)
                .expect("corpus entries parse");
            std::hint::black_box(r.findings().count());
        }
    }
}

fn main() {
    // Per-phase total for each sample run: phase name -> totals.
    let mut totals: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for sample in 0..SAMPLES {
        // Full mode on the last sample so the trace artifact exists;
        // aggregate mode (the cheap path) for the timed majority.
        obs::set_mode(if sample + 1 == SAMPLES {
            obs::Mode::Full
        } else {
            obs::Mode::Aggregate
        });
        obs::reset();
        corpus_run();
        for p in obs::phases() {
            totals.entry(p.name).or_default().push(p.total_us);
        }
    }

    let artifact = std::path::Path::new("../../target/trace_phases.json");
    obs::write_chrome_trace(artifact).expect("trace artifact written");
    obs::set_mode(obs::Mode::Off);

    for (name, mut samples) in totals {
        samples.sort_unstable();
        let median = Duration::from_micros(samples[samples.len() / 2]);
        let label = format!("phase/{name}");
        println!(
            "bench {label:<60} median {median:>12.3?} ({SAMPLES} samples)"
        );
    }
}
