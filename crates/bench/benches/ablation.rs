//! Ablations of the §5.3 observations.
//!
//! - **Replacement chains**: each `str_replace` multiplies the
//!   intermediate grammar ("a sequence of these replacement expressions
//!   leads to a blow up that is exponential in the number of
//!   replacements" — the Tiger PHP News System effect). We sweep chain
//!   length; the grammar-size curve for longer chains is recorded by
//!   `examples/ablate.rs` and in EXPERIMENTS.md.
//! - **Operand-size budget**: the `max_transducer_grammar` widening
//!   knob that bounds the blow-up (the paper handled this by manually
//!   removing two code sections from Tiger).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use strtaint::Config;
use strtaint_corpus::{synth_app, SynthConfig};

fn chain_app(chain: usize) -> strtaint_corpus::App {
    synth_app(&SynthConfig {
        pages: 2,
        sinks_per_page: 1,
        helpers: 4,
        filler_lines: 10,
        vuln_every: 0,
        replace_chain: chain,
        seed: 11,
    })
}

fn bench_replace_chain(c: &mut Criterion) {
    let config = Config::default();
    let mut group = c.benchmark_group("ablation/replace_chain");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(6));
    for chain in [0usize, 1, 2] {
        let app = chain_app(chain);
        group.bench_with_input(BenchmarkId::from_parameter(chain), &app, |b, app| {
            b.iter(|| {
                let r =
                    strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &config);
                std::hint::black_box(r.grammar_size());
            })
        });
    }
    group.finish();
}

fn bench_widening_budget(c: &mut Criterion) {
    // A tight budget widens the second replacement (cheap, coarse); a
    // loose one computes it (slow, precise).
    let mut group = c.benchmark_group("ablation/widening_budget");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(6));
    let app = chain_app(2);
    for budget in [2_000usize, 300_000] {
        let mut config = Config::default();
        config.max_transducer_grammar = budget;
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            b.iter(|| {
                let r =
                    strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &config);
                std::hint::black_box(r.pages.len());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replace_chain, bench_widening_budget);
criterion_main!(benches);
