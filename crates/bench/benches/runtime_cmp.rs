//! Static verification vs. runtime enforcement (paper §6.3): "general
//! runtime enforcement techniques incur more runtime overhead than
//! appropriate, well-placed filters, which static analysis can check."
//! Measures the one-time static verification cost against the
//! per-query cost of SqlCheck-style runtime monitoring.

use criterion::{criterion_group, criterion_main, Criterion};

use strtaint::Config;
use strtaint_sql::runtime::check_query;
use strtaint_sql::SqlGrammar;

fn bench_static_vs_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_cmp");
    group.sample_size(20);

    // One-time static verification of a safe page.
    let mut vfs = strtaint::Vfs::new();
    vfs.add(
        "page.php",
        r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit; }
$r = $DB->query("SELECT * FROM `unp_user` WHERE userid='$id'");
"#,
    );
    let config = Config::default();
    group.bench_function("static_verify_once", |b| {
        b.iter(|| {
            let r = strtaint::analyze_page(&vfs, "page.php", &config).unwrap();
            assert!(r.is_verified());
            std::hint::black_box(r.hotspots.len())
        })
    });

    // Per-query runtime confinement check on the same hotspot.
    let g = SqlGrammar::standard();
    let queries: Vec<(Vec<u8>, (usize, usize))> = (0..16)
        .map(|i| {
            let id = format!("{}", 1000 + i);
            let q = format!("SELECT * FROM `unp_user` WHERE userid='{id}'");
            let lo = q.find(&id).unwrap();
            (q.into_bytes(), (lo, lo + id.len()))
        })
        .collect();
    group.bench_function("runtime_check_per_query_x16", |b| {
        b.iter(|| {
            for (q, span) in &queries {
                std::hint::black_box(check_query(&g, q, *span));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_static_vs_runtime);
criterion_main!(benches);
