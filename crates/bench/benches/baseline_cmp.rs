//! Cost of precision: grammar-based analysis vs. the binary taint
//! baseline on the same corpus pages. The baseline is orders of
//! magnitude faster — the paper's argument is that the precision
//! (no per-query specs, no context-blind sanitizer list) is worth it
//! at static-analysis (pre-deployment) time.

use criterion::{criterion_group, criterion_main, Criterion};

use strtaint::Config;

fn bench_baseline_vs_grammar(c: &mut Criterion) {
    let app = strtaint_corpus::apps::eve::build();
    let config = Config::default();
    let mut group = c.benchmark_group("baseline_cmp/eve");
    group.sample_size(10);
    group.bench_function("binary_taint", |b| {
        b.iter(|| {
            let mut n = 0;
            for e in &app.entries {
                n += strtaint_baseline::taint_analyze(&app.vfs, e).findings.len();
            }
            std::hint::black_box(n)
        })
    });
    group.bench_function("grammar_based", |b| {
        b.iter(|| {
            let r = strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &config);
            std::hint::black_box(r.distinct_findings().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_vs_grammar);
criterion_main!(benches);
