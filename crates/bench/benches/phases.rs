//! Phase split (paper §5.3): "the SQLCIV checking phase is relatively
//! efficient … checking never took more than a few minutes" while
//! string analysis dominates. Measures each phase separately on the
//! corpus subjects (Tiger excluded here — its wall-clock belongs to
//! the ablation bench).

use criterion::{criterion_group, criterion_main, Criterion};

use strtaint::{Checker, Config};

fn bench_phases(c: &mut Criterion) {
    let config = Config::default();
    let checker = Checker::new();
    let mut group = c.benchmark_group("phases");
    group.sample_size(10);

    for app in [
        strtaint_corpus::apps::eve::build(),
        strtaint_corpus::apps::utopia::build(),
        strtaint_corpus::apps::warp::build(),
    ] {
        // String-analysis phase only.
        group.bench_function(format!("analysis/{}", short(app.name)), |b| {
            b.iter(|| {
                for e in &app.entries {
                    let a = strtaint_analysis::analyze(&app.vfs, e, &config).unwrap();
                    std::hint::black_box(a.hotspots.len());
                }
            })
        });
        // Checking phase only (on precomputed grammars).
        let analyses: Vec<_> = app
            .entries
            .iter()
            .map(|e| strtaint_analysis::analyze(&app.vfs, e, &config).unwrap())
            .collect();
        group.bench_function(format!("check/{}", short(app.name)), |b| {
            b.iter(|| {
                for a in &analyses {
                    for h in &a.hotspots {
                        std::hint::black_box(checker.check_hotspot(&a.cfg, h.root).is_safe());
                    }
                }
            })
        });
    }
    group.finish();
}

fn short(name: &str) -> &str {
    name.split(' ').next().unwrap_or(name)
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
