//! Full-scale e107 replica: 741 files, ~100K+ lines — the file count of
//! the paper's largest subject ("the largest PHP web application
//! previously analyzed in the literature"). Demonstrates that the
//! analyzer scales to the paper's headline size on modern hardware.
//!
//! ```text
//! cargo run --release -p strtaint-bench --example full_scale
//! ```

use std::time::Instant;

use strtaint::Config;

fn main() {
    let app = strtaint_corpus::apps::e107::build_scaled(741);
    println!(
        "full-scale e107 replica: {} files, {} lines",
        app.vfs.len(),
        app.vfs.total_lines()
    );
    let t = Instant::now();
    let report = strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
    println!(
        "analyzed {} pages in {:?} (analysis {:?}, check {:?})",
        report.pages.len(),
        t.elapsed(),
        report.analysis_time(),
        report.check_time()
    );
    println!(
        "direct findings: {} (expected {}), indirect: {} (expected {})",
        report.direct_findings().len(),
        app.truth.direct_total(),
        report.indirect_findings().len(),
        app.truth.indirect
    );
    assert_eq!(report.direct_findings().len(), app.truth.direct_total());
    assert_eq!(report.indirect_findings().len(), app.truth.indirect);
}
