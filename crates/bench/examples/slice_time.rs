use strtaint::{analyze_page, Config};
fn main() {
    let app = strtaint_corpus::apps::tiger::build();
    let plain = analyze_page(&app.vfs, "forum.php", &Config::default()).unwrap();
    println!("plain:  analysis={:?} check={:?}", plain.analysis_time, plain.check_time);
    let cfg = Config { backward_slice: true, ..Config::default() };
    let fast = analyze_page(&app.vfs, "forum.php", &cfg).unwrap();
    println!("sliced: analysis={:?} check={:?}", fast.analysis_time, fast.check_time);
}
