use strtaint::Config;
use strtaint_corpus::{synth_app, SynthConfig};
fn main() {
    println!("replace-chain sweep (2 pages):");
    for chain in [0usize,1,2,3,4,5] {
        let app = synth_app(&SynthConfig { pages: 2, helpers: 4, filler_lines: 10, vuln_every: 0, replace_chain: chain, seed: 11 });
        let t = std::time::Instant::now();
        let r = strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
        let (v, rr) = r.grammar_size();
        println!("  chain={chain}: |V|={v} |R|={rr} time={:?} analysis={:?} check={:?}", t.elapsed(), r.analysis_time(), r.check_time());
    }
    println!("page sweep:");
    for pages in [4usize,8,16,32] {
        let app = synth_app(&SynthConfig { pages, ..SynthConfig::default() });
        let t = std::time::Instant::now();
        let r = strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
        println!("  pages={pages}: lines={} findings={} time={:?}", app.vfs.total_lines(), r.distinct_findings().len(), t.elapsed());
    }
}
