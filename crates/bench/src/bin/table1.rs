//! Regenerates the paper's **Table 1** over the synthetic corpus.
//!
//! ```text
//! cargo run -p strtaint-bench --bin table1 --release [--skip-tiger]
//! ```
//!
//! Prints the same columns as the paper: files, lines, grammar size
//! (`|V|`, `|R|`), string-analysis time, SQLCIV-check time, and the
//! direct (real/false per seeded ground truth) and indirect error
//! counts. Absolute timings are machine-dependent; the *shape* —
//! which subjects report what, check ≪ analysis, Tiger's outsized
//! grammar — is the reproduction target (see EXPERIMENTS.md).

use strtaint_bench::{fmt_duration, run_app};

fn main() {
    let skip_tiger = std::env::args().any(|a| a == "--skip-tiger");
    println!(
        "{:<38} {:>5} {:>8} {:>9} {:>10} {:>12} {:>9}  {:>6} {:>5} {:>6} {:>9}",
        "Name (version)",
        "Files",
        "Lines",
        "|V|",
        "|R|",
        "String An.",
        "Check",
        "direct",
        "Real",
        "False",
        "indirect"
    );
    let mut totals = (0usize, 0usize, 0usize, 0usize); // direct real, false, measured direct, indirect
    for app in strtaint_corpus::apps::all() {
        if skip_tiger && app.name.contains("Tiger") {
            println!("{:<38} (skipped: --skip-tiger)", app.name);
            continue;
        }
        let row = run_app(&app);
        println!(
            "{:<38} {:>5} {:>8} {:>9} {:>10} {:>12} {:>9}  {:>6} {:>5} {:>6} {:>9}",
            row.name,
            row.files,
            row.lines,
            row.v,
            row.r,
            fmt_duration(row.analysis),
            fmt_duration(row.check),
            row.direct,
            row.truth_real,
            row.truth_false,
            row.indirect
        );
        totals.0 += row.truth_real;
        totals.1 += row.truth_false;
        totals.2 += row.direct;
        totals.3 += row.indirect;
        assert_eq!(
            row.direct,
            row.truth_real + row.truth_false,
            "measured direct findings must match the seeded ground truth"
        );
    }
    println!(
        "{:<38} {:>5} {:>8} {:>9} {:>10} {:>12} {:>9}  {:>6} {:>5} {:>6} {:>9}",
        "Totals", "", "", "", "", "", "", totals.2, totals.0, totals.1, totals.3
    );
    let fp_rate = totals.1 as f64 / (totals.0 + totals.1) as f64 * 100.0;
    println!("False positive rate: {fp_rate:.1}% (paper: 20.8%)");
}
