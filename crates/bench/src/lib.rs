//! Shared helpers for the benchmark harness.
//!
//! The `table1` binary regenerates the paper's Table 1 over the
//! synthetic corpus; the criterion benches cover the scalability
//! observations of §5.3 (checking ≪ analysis, replacement-chain
//! blow-up, include re-analysis) plus micro-benchmarks of the core
//! algorithms.

use std::time::Duration;

use strtaint::{AppReport, Config};
use strtaint_corpus::App;

/// One row of the regenerated Table 1.
#[derive(Debug)]
pub struct TableRow {
    /// Subject name.
    pub name: String,
    /// File count.
    pub files: usize,
    /// Line count.
    pub lines: usize,
    /// Query-grammar nonterminals (summed over pages).
    pub v: usize,
    /// Query-grammar productions (summed over pages).
    pub r: usize,
    /// String-analysis wall-clock time.
    pub analysis: Duration,
    /// SQLCIV-check wall-clock time.
    pub check: Duration,
    /// Direct findings (the paper splits these into real/false by
    /// manual triage; the corpus carries that split as ground truth).
    pub direct: usize,
    /// Ground-truth real direct count.
    pub truth_real: usize,
    /// Ground-truth false-positive count.
    pub truth_false: usize,
    /// Indirect findings.
    pub indirect: usize,
}

/// Analyzes one corpus application into a table row.
pub fn run_app(app: &App) -> TableRow {
    let report: AppReport =
        strtaint::analyze_app(app.name, &app.vfs, &app.entry_refs(), &Config::default());
    let (v, r) = report.grammar_size();
    TableRow {
        name: app.name.to_owned(),
        files: app.vfs.len(),
        lines: app.vfs.total_lines(),
        v,
        r,
        analysis: report.analysis_time(),
        check: report.check_time(),
        direct: report.direct_findings().len(),
        truth_real: app.truth.direct_real,
        truth_false: app.truth.direct_false,
        indirect: report.indirect_findings().len(),
    }
}

/// Formats a duration like the paper's Table 1 (`h:m:s.ms` collapsing
/// leading zero fields).
pub fn fmt_duration(d: Duration) -> String {
    let total = d.as_secs_f64();
    let h = (total / 3600.0) as u64;
    let m = ((total % 3600.0) / 60.0) as u64;
    let s = total % 60.0;
    if h > 0 {
        format!("{h}:{m:02}:{s:05.2}")
    } else if m > 0 {
        format!("{m}:{s:05.2}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(400)), "0.40");
        assert_eq!(fmt_duration(Duration::from_secs(81)), "1:21.00");
        assert_eq!(fmt_duration(Duration::from_secs(3600 + 61)), "1:01:01.00");
    }
}
