//! Property-based tests of the automata algebra: the soundness of the
//! whole analyzer rests on these operations being exact.

use proptest::prelude::*;

use strtaint_automata::{Dfa, Nfa, Regex};

/// A small strategy of regex patterns over {a, b, '} that the engine
/// supports.
fn pattern() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("^a+$".to_owned()),
        Just("^(a|b)*$".to_owned()),
        Just("^ab?a$".to_owned()),
        Just("a.*b".to_owned()),
        Just("^[ab]{2,4}$".to_owned()),
        Just("'([^']*)'".to_owned()),
        Just("^a(b|')+$".to_owned()),
        Just("b+".to_owned()),
    ]
}

fn input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'\''), Just(b'c')],
        0..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn determinization_preserves_language(p in pattern(), s in input()) {
        let re = Regex::new(&p).unwrap();
        let nfa = re.match_language();
        let dfa = Dfa::from_nfa(&nfa);
        prop_assert_eq!(nfa.accepts(&s), dfa.accepts(&s), "{} on {:?}", p, s);
    }

    #[test]
    fn minimization_preserves_language(p in pattern(), s in input()) {
        let d = Regex::new(&p).unwrap().match_dfa();
        let m = d.minimize();
        prop_assert_eq!(d.accepts(&s), m.accepts(&s));
        prop_assert!(m.num_states() <= d.num_states());
    }

    #[test]
    fn complement_is_involution(p in pattern(), s in input()) {
        let d = Regex::new(&p).unwrap().match_dfa();
        let cc = d.complement().complement();
        prop_assert_eq!(d.accepts(&s), cc.accepts(&s));
        prop_assert_ne!(d.accepts(&s), d.complement().accepts(&s));
    }

    #[test]
    fn product_matches_boolean_semantics(p in pattern(), q in pattern(), s in input()) {
        let a = Regex::new(&p).unwrap().match_dfa();
        let b = Regex::new(&q).unwrap().match_dfa();
        prop_assert_eq!(a.intersect(&b).accepts(&s), a.accepts(&s) && b.accepts(&s));
        prop_assert_eq!(a.union(&b).accepts(&s), a.accepts(&s) || b.accepts(&s));
        prop_assert_eq!(a.difference(&b).accepts(&s), a.accepts(&s) && !b.accepts(&s));
    }

    #[test]
    fn subset_and_equivalence_agree_with_membership(p in pattern(), q in pattern()) {
        let a = Regex::new(&p).unwrap().match_dfa();
        let b = Regex::new(&q).unwrap().match_dfa();
        if a.is_subset_of(&b) {
            // Spot-check with the shortest witness of a.
            if let Some(w) = a.shortest_accepted() {
                prop_assert!(b.accepts(&w));
            }
        }
        prop_assert_eq!(a.equivalent(&a.minimize()), true);
    }

    #[test]
    fn shortest_accepted_is_accepted_and_minimal(p in pattern()) {
        let d = Regex::new(&p).unwrap().match_dfa();
        if let Some(w) = d.shortest_accepted() {
            prop_assert!(d.accepts(&w));
            // No accepted string can be shorter (BFS property): verify
            // against exhaustive enumeration up to |w|-1 over a small
            // alphabet sample.
            for len in 0..w.len() {
                let mut found = false;
                let alphabet = [b'a', b'b', b'\'', b'c'];
                let mut idx = vec![0usize; len];
                'outer: loop {
                    let cand: Vec<u8> = idx.iter().map(|&i| alphabet[i]).collect();
                    if d.accepts(&cand) {
                        found = true;
                        break;
                    }
                    // odometer
                    for pos in 0..len {
                        idx[pos] += 1;
                        if idx[pos] < alphabet.len() {
                            continue 'outer;
                        }
                        idx[pos] = 0;
                    }
                    break;
                }
                // Only sound over the sampled alphabet: the witness must
                // not be beaten by a sampled-alphabet string.
                prop_assert!(!found || len == w.len(), "{:?} vs len {}", w, len);
            }
        }
    }

    #[test]
    fn fst_identity_roundtrip(s in input()) {
        let f = strtaint_automata::fst::builders::identity();
        prop_assert_eq!(f.transduce_unique(&s).unwrap(), s);
    }

    #[test]
    fn addslashes_then_strip_roundtrip(s in input()) {
        let add = strtaint_automata::fst::builders::addslashes();
        let strip = strtaint_automata::fst::builders::stripslashes();
        let escaped = add.transduce_unique(&s).unwrap();
        prop_assert_eq!(strip.transduce_unique(&escaped).unwrap(), s);
    }

    #[test]
    fn replace_literal_agrees_with_std(s in input()) {
        // Oracle: Rust's str::replace on the same (lossy) text.
        let f = strtaint_automata::fst::builders::replace_literal(b"ab", b"X");
        let out = f.transduce_unique(&s).unwrap();
        let text = String::from_utf8_lossy(&s).into_owned();
        prop_assert_eq!(String::from_utf8_lossy(&out).into_owned(), text.replace("ab", "X"));
    }

    #[test]
    fn case_insensitive_regex_matches_uppercase(s in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'A'), Just(b'b')], 0..8)) {
        let ci = Regex::with_flags("^[ab]*$", true).unwrap();
        let folded: Vec<u8> = s.iter().map(|b| b.to_ascii_lowercase()).collect();
        let cs = Regex::new("^[ab]*$").unwrap();
        prop_assert_eq!(ci.matches(&s), cs.matches(&folded));
    }
}
