//! A regular-expression engine for the PCRE/POSIX subset that PHP web
//! applications use in sanitization code.
//!
//! The analysis needs regexes in two roles:
//!
//! 1. **Condition refinement** (paper §3.1.2): `preg_match('/re/', $x)`
//!    constrains `$x` on the `then` branch to the *match language* — the
//!    set of strings in which the pattern matches somewhere — and on the
//!    `else` branch to its complement. [`Regex::match_language`] builds
//!    the corresponding automaton, honoring `^`/`$` anchors.
//! 2. **Policy checks** (paper §3.2.1): the conformance checker
//!    intersects generated grammars with fixed character-level languages
//!    (odd number of unescaped quotes, numeric literals, …).
//!
//! Supported syntax: literals, `.`, character classes `[...]`/`[^...]`
//! with ranges, escapes (`\d \D \w \W \s \S \n \t \r \0 \xNN` and escaped
//! metacharacters), groups `(...)`/`(?:...)`, alternation, quantifiers
//! `* + ? {m} {m,} {m,n}`, and anchors `^`/`$` at the ends of an
//! alternation branch. The `i` flag enables ASCII case folding.
//!
//! Unsupported constructs (backreferences, lookaround, word boundaries)
//! cause [`parse`] to return an error; the analysis then conservatively
//! treats the condition as uninformative, which is sound.

mod ast;
mod compile;
mod parser;

pub use ast::{Anchoring, Ast};
pub use parser::{parse, parse_delimited, ParseRegexError};

use crate::{Dfa, Nfa};

/// A compiled regular expression.
///
/// # Examples
///
/// ```
/// use strtaint_automata::Regex;
///
/// // The unanchored check from the paper's Figure 2 bug:
/// let lax = Regex::new("[0-9]+").unwrap();
/// assert!(lax.matches(b"1'; DROP TABLE unp_user; --"));
///
/// // The anchored fix:
/// let strict = Regex::new("^[0-9]+$").unwrap();
/// assert!(!strict.matches(b"1'; DROP TABLE unp_user; --"));
/// assert!(strict.matches(b"42"));
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    case_insensitive: bool,
}

impl Regex {
    /// Parses a bare pattern (no delimiters), case-sensitive.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] on malformed or unsupported syntax.
    pub fn new(pattern: &str) -> Result<Self, ParseRegexError> {
        Self::with_flags(pattern, false)
    }

    /// Parses a bare pattern with explicit case-insensitivity.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] on malformed or unsupported syntax.
    pub fn with_flags(pattern: &str, case_insensitive: bool) -> Result<Self, ParseRegexError> {
        let ast = parse(pattern)?;
        Ok(Regex {
            pattern: pattern.to_owned(),
            ast,
            case_insensitive,
        })
    }

    /// Parses a PHP-style delimited pattern such as `/^[\d]+$/i`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] on malformed or unsupported syntax,
    /// including unknown flags.
    pub fn new_delimited(pattern: &str) -> Result<Self, ParseRegexError> {
        let (pat, flags) = parse_delimited(pattern)?;
        let mut ci = false;
        for f in flags.chars() {
            match f {
                'i' => ci = true,
                // Multiline / dotall / extended change semantics we do not
                // model; reject so the caller falls back conservatively.
                other => return Err(ParseRegexError::UnsupportedFlag(other)),
            }
        }
        Self::with_flags(&pat, ci)
    }

    /// Returns the original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns the parsed syntax tree.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Builds an NFA for the *anchored* language of the pattern (the set
    /// of strings the pattern describes end-to-end, ignoring anchors'
    /// placement semantics).
    pub fn anchored_nfa(&self) -> Nfa {
        compile::compile(&self.ast.strip_anchors(), self.case_insensitive)
    }

    /// Builds an NFA for the *match language*: all strings in which the
    /// pattern matches somewhere, with `^`/`$` anchors honored
    /// (PHP `preg_match` semantics).
    pub fn match_language(&self) -> Nfa {
        let anchoring = self.ast.anchoring();
        let core = compile::compile(&self.ast.strip_anchors(), self.case_insensitive);
        let any = Nfa::any_string();
        match anchoring {
            Anchoring::Both => core,
            Anchoring::Start => core.concat(&any),
            Anchoring::End => any.concat(&core),
            Anchoring::None => any.concat(&core).concat(&any),
        }
    }

    /// Determinized match language.
    pub fn match_dfa(&self) -> Dfa {
        Dfa::from_nfa(&self.match_language()).minimize()
    }

    /// Returns `true` if the pattern matches somewhere in `input`
    /// (PHP `preg_match` semantics).
    pub fn matches(&self, input: &[u8]) -> bool {
        self.match_language().accepts(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("{p}: {e}"))
    }

    #[test]
    fn literal_match_anywhere() {
        let r = re("abc");
        assert!(r.matches(b"xxabcxx"));
        assert!(!r.matches(b"ab"));
    }

    #[test]
    fn classes_and_quantifiers() {
        let r = re("^[a-c]+$");
        assert!(r.matches(b"abccba"));
        assert!(!r.matches(b"abd"));
        assert!(!r.matches(b""));

        let r = re("^a{2,3}$");
        assert!(!r.matches(b"a"));
        assert!(r.matches(b"aa"));
        assert!(r.matches(b"aaa"));
        assert!(!r.matches(b"aaaa"));
    }

    #[test]
    fn negated_class() {
        let r = re("^[^0-9]+$");
        assert!(r.matches(b"abc"));
        assert!(!r.matches(b"a1c"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("^(foo|ba(r|z))$");
        assert!(r.matches(b"foo"));
        assert!(r.matches(b"bar"));
        assert!(r.matches(b"baz"));
        assert!(!r.matches(b"ba"));
    }

    #[test]
    fn escapes() {
        let r = re(r"^\d+\.\d+$");
        assert!(r.matches(b"3.14"));
        assert!(!r.matches(b"3x14"));
        let r = re(r"^\w+$");
        assert!(r.matches(b"az09_"));
        assert!(!r.matches(b"a b"));
        let r = re(r"^\s*$");
        assert!(r.matches(b" \t\n"));
        assert!(!r.matches(b"x"));
    }

    #[test]
    fn figure2_unanchored_vs_anchored() {
        // eregi('[0-9]+', $userid) — the paper's vulnerability: matches any
        // string containing a digit.
        let lax = re("[0-9]+");
        assert!(lax.matches(b"1'; DROP TABLE unp_user; --"));
        // preg_match('/^[\d]+$/', ...) — the correct check.
        let strict = re(r"^[\d]+$");
        assert!(!strict.matches(b"1'; DROP TABLE unp_user; --"));
        assert!(strict.matches(b"10057"));
    }

    #[test]
    fn delimited_with_flags() {
        let r = Regex::new_delimited(r"/^[\d]+$/").unwrap();
        assert!(r.matches(b"123"));
        let r = Regex::new_delimited("/abc/i").unwrap();
        assert!(r.matches(b"xABCx"));
        assert!(Regex::new_delimited("/a/x").is_err());
    }

    #[test]
    fn case_insensitive_classes() {
        let r = Regex::with_flags("^[a-c]+$", true).unwrap();
        assert!(r.matches(b"AbC"));
    }

    #[test]
    fn dot_matches_any_single() {
        let r = re("^a.c$");
        assert!(r.matches(b"abc"));
        assert!(r.matches(b"a'c"));
        assert!(!r.matches(b"ac"));
    }

    #[test]
    fn hex_escape() {
        let r = re(r"^\x41+$");
        assert!(r.matches(b"AAA"));
        assert!(!r.matches(b"B"));
    }

    #[test]
    fn start_anchor_only() {
        let r = re("^ab");
        assert!(r.matches(b"abxyz"));
        assert!(!r.matches(b"xab"));
    }

    #[test]
    fn end_anchor_only() {
        let r = re("ab$");
        assert!(r.matches(b"xyzab"));
        assert!(!r.matches(b"abx"));
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(Regex::new(r"a(?=b)").is_err());
        assert!(Regex::new(r"(a)\1").is_err());
        assert!(Regex::new(r"a\b").is_err());
    }

    #[test]
    fn match_dfa_equivalent_to_nfa() {
        let r = re("^(x|y)+[0-9]?$");
        let d = r.match_dfa();
        for s in [&b"x"[..], b"xy9", b"", b"x9y", b"9"] {
            assert_eq!(d.accepts(s), r.matches(s), "{:?}", s);
        }
    }
}
