//! Regular-expression abstract syntax.

use crate::byteset::ByteSet;

/// How a pattern is anchored at the top level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchoring {
    /// Neither `^` nor `$`.
    None,
    /// `^` at the start only.
    Start,
    /// `$` at the end only.
    End,
    /// Both `^...$`.
    Both,
}

/// A regular-expression syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Epsilon,
    /// Matches one byte from the set.
    Class(ByteSet),
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
    /// One or more.
    Plus(Box<Ast>),
    /// Zero or one.
    Opt(Box<Ast>),
    /// Bounded repetition `{min, max}`; `max == None` means unbounded.
    Repeat {
        /// Repeated subexpression.
        inner: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions (`None` = unbounded).
        max: Option<u32>,
    },
    /// Start-of-string anchor `^`.
    AnchorStart,
    /// End-of-string anchor `$`.
    AnchorEnd,
}

impl Ast {
    /// Builds a concatenation, flattening trivial cases.
    pub fn concat(parts: Vec<Ast>) -> Ast {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Ast::Epsilon => {}
                Ast::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Epsilon,
            1 => flat.pop().expect("len checked"),
            _ => Ast::Concat(flat),
        }
    }

    /// Builds a literal byte-string AST.
    pub fn literal(s: &[u8]) -> Ast {
        Ast::concat(s.iter().map(|&b| Ast::Class(ByteSet::singleton(b))).collect())
    }

    /// Determines the top-level anchoring of the pattern.
    ///
    /// Anchors are recognized at the outer edges of the pattern and at the
    /// outer edges of every top-level alternation branch. A pattern is
    /// considered start-anchored only if **every** branch is (conservative
    /// for condition refinement: treating an anchored branch as unanchored
    /// over-approximates the match language).
    pub fn anchoring(&self) -> Anchoring {
        let (s, e) = self.edge_anchors();
        match (s, e) {
            (true, true) => Anchoring::Both,
            (true, false) => Anchoring::Start,
            (false, true) => Anchoring::End,
            (false, false) => Anchoring::None,
        }
    }

    fn edge_anchors(&self) -> (bool, bool) {
        match self {
            Ast::AnchorStart => (true, false),
            Ast::AnchorEnd => (false, true),
            Ast::Concat(parts) => {
                let s = matches!(parts.first(), Some(Ast::AnchorStart));
                let e = matches!(parts.last(), Some(Ast::AnchorEnd));
                (s, e)
            }
            Ast::Alt(branches) => {
                let mut s = true;
                let mut e = true;
                for b in branches {
                    let (bs, be) = b.edge_anchors();
                    s &= bs;
                    e &= be;
                }
                (s, e)
            }
            _ => (false, false),
        }
    }

    /// Removes anchor nodes, leaving the core expression.
    ///
    /// Interior anchors (which make the branch unmatchable in the common
    /// case) are replaced by epsilon; the compiler pairs this with
    /// [`Ast::anchoring`] so only edge anchors carry meaning.
    pub fn strip_anchors(&self) -> Ast {
        match self {
            Ast::AnchorStart | Ast::AnchorEnd => Ast::Epsilon,
            Ast::Epsilon | Ast::Class(_) => self.clone(),
            Ast::Concat(parts) => Ast::concat(parts.iter().map(Ast::strip_anchors).collect()),
            Ast::Alt(branches) => {
                Ast::Alt(branches.iter().map(Ast::strip_anchors).collect())
            }
            Ast::Star(i) => Ast::Star(Box::new(i.strip_anchors())),
            Ast::Plus(i) => Ast::Plus(Box::new(i.strip_anchors())),
            Ast::Opt(i) => Ast::Opt(Box::new(i.strip_anchors())),
            Ast::Repeat { inner, min, max } => Ast::Repeat {
                inner: Box::new(inner.strip_anchors()),
                min: *min,
                max: *max,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens() {
        let a = Ast::concat(vec![
            Ast::Epsilon,
            Ast::concat(vec![Ast::literal(b"a"), Ast::literal(b"b")]),
        ]);
        assert_eq!(a, Ast::literal(b"ab"));
    }

    #[test]
    fn anchoring_detection() {
        use crate::regex::parse;
        assert_eq!(parse("^a$").unwrap().anchoring(), Anchoring::Both);
        assert_eq!(parse("^a").unwrap().anchoring(), Anchoring::Start);
        assert_eq!(parse("a$").unwrap().anchoring(), Anchoring::End);
        assert_eq!(parse("a").unwrap().anchoring(), Anchoring::None);
        // All branches anchored => anchored.
        assert_eq!(parse("^a$|^b$").unwrap().anchoring(), Anchoring::Both);
        // Mixed branches => conservative None on the unanchored side.
        assert_eq!(parse("^a|b$").unwrap().anchoring(), Anchoring::None);
    }
}
