//! Thompson construction from regex AST to [`Nfa`].

use super::ast::Ast;
use crate::nfa::Nfa;

/// Compiles an anchor-free AST into an NFA for its language.
///
/// Case-insensitive compilation folds every character class over ASCII
/// case before building transitions.
pub fn compile(ast: &Ast, case_insensitive: bool) -> Nfa {
    match ast {
        Ast::Epsilon => Nfa::epsilon(),
        Ast::Class(set) => {
            let set = if case_insensitive {
                set.ascii_case_fold()
            } else {
                *set
            };
            Nfa::class(set)
        }
        Ast::Concat(parts) => {
            let mut n = Nfa::epsilon();
            for p in parts {
                n = n.concat(&compile(p, case_insensitive));
            }
            n
        }
        Ast::Alt(branches) => {
            let mut iter = branches.iter();
            let first = iter.next().expect("alternation has at least one branch");
            let mut n = compile(first, case_insensitive);
            for b in iter {
                n = n.union(&compile(b, case_insensitive));
            }
            n
        }
        Ast::Star(inner) => compile(inner, case_insensitive).star(),
        Ast::Plus(inner) => compile(inner, case_insensitive).plus(),
        Ast::Opt(inner) => compile(inner, case_insensitive).opt(),
        Ast::Repeat { inner, min, max } => {
            let unit = compile(inner, case_insensitive);
            let mut n = Nfa::epsilon();
            for _ in 0..*min {
                n = n.concat(&unit);
            }
            match max {
                None => n.concat(&unit.star()),
                Some(max) => {
                    let opt = unit.opt();
                    for _ in *min..*max {
                        n = n.concat(&opt);
                    }
                    n
                }
            }
        }
        Ast::AnchorStart | Ast::AnchorEnd => {
            // Anchors are stripped before compilation; treat defensively
            // as epsilon.
            Nfa::epsilon()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse;

    fn nfa(p: &str) -> Nfa {
        compile(&parse(p).unwrap().strip_anchors(), false)
    }

    #[test]
    fn repeat_exact() {
        let n = nfa("a{3}");
        assert!(n.accepts(b"aaa"));
        assert!(!n.accepts(b"aa"));
        assert!(!n.accepts(b"aaaa"));
    }

    #[test]
    fn repeat_open_ended() {
        let n = nfa("(ab){2,}");
        assert!(!n.accepts(b"ab"));
        assert!(n.accepts(b"abab"));
        assert!(n.accepts(b"ababab"));
    }

    #[test]
    fn repeat_range() {
        let n = nfa("x{1,3}");
        assert!(n.accepts(b"x"));
        assert!(n.accepts(b"xxx"));
        assert!(!n.accepts(b""));
        assert!(!n.accepts(b"xxxx"));
    }

    #[test]
    fn case_insensitive_literal() {
        let ast = parse("select").unwrap();
        let n = compile(&ast, true);
        assert!(n.accepts(b"SELECT"));
        assert!(n.accepts(b"SeLeCt"));
        assert!(!n.accepts(b"selec"));
    }
}
