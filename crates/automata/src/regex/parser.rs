//! Recursive-descent parser for the supported regex subset.

use std::fmt;

use super::ast::Ast;
use crate::byteset::ByteSet;

/// Error produced when a pattern is malformed or uses unsupported syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseRegexError {
    /// Unexpected end of pattern.
    UnexpectedEnd,
    /// Unexpected byte at the given offset.
    Unexpected(usize, char),
    /// A construct the engine deliberately does not model
    /// (lookaround, backreferences, word boundaries, …).
    Unsupported(&'static str),
    /// An unsupported PCRE flag on a delimited pattern.
    UnsupportedFlag(char),
    /// Malformed `{m,n}` repetition.
    BadRepeat(usize),
    /// Pattern had no delimiters where delimiters were required.
    MissingDelimiter,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRegexError::UnexpectedEnd => write!(f, "unexpected end of pattern"),
            ParseRegexError::Unexpected(i, c) => {
                write!(f, "unexpected character {c:?} at offset {i}")
            }
            ParseRegexError::Unsupported(what) => {
                write!(f, "unsupported regex construct: {what}")
            }
            ParseRegexError::UnsupportedFlag(c) => write!(f, "unsupported regex flag {c:?}"),
            ParseRegexError::BadRepeat(i) => write!(f, "malformed repetition at offset {i}"),
            ParseRegexError::MissingDelimiter => {
                write!(f, "pattern is not delimited (expected e.g. /pat/flags)")
            }
        }
    }
}

impl std::error::Error for ParseRegexError {}

/// Splits a PHP-style delimited pattern `/pat/flags` (any punctuation
/// delimiter) into pattern and flag string.
///
/// # Errors
///
/// Returns [`ParseRegexError::MissingDelimiter`] if the input does not
/// start with a recognized delimiter or the closing delimiter is missing.
pub fn parse_delimited(input: &str) -> Result<(String, String), ParseRegexError> {
    let mut chars = input.chars();
    let delim = chars.next().ok_or(ParseRegexError::MissingDelimiter)?;
    if delim.is_alphanumeric() || delim == '\\' {
        return Err(ParseRegexError::MissingDelimiter);
    }
    let close = match delim {
        '(' => ')',
        '{' => '}',
        '[' => ']',
        '<' => '>',
        d => d,
    };
    let rest: &str = chars.as_str();
    // Find the last unescaped closing delimiter.
    let bytes = rest.as_bytes();
    let mut end = None;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            i += 2;
            continue;
        }
        if bytes[i] == close as u8 {
            end = Some(i);
        }
        i += 1;
    }
    let end = end.ok_or(ParseRegexError::MissingDelimiter)?;
    Ok((rest[..end].to_owned(), rest[end + 1..].to_owned()))
}

/// Parses a bare (undelimited) pattern into an [`Ast`].
///
/// # Errors
///
/// Returns [`ParseRegexError`] on malformed or unsupported syntax.
pub fn parse(pattern: &str) -> Result<Ast, ParseRegexError> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(ParseRegexError::Unexpected(
            p.pos,
            p.bytes[p.pos] as char,
        ));
    }
    Ok(ast)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, ParseRegexError> {
        let b = self.peek().ok_or(ParseRegexError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    fn alternation(&mut self) -> Result<Ast, ParseRegexError> {
        let mut branches = vec![self.sequence()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            branches.push(self.sequence()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("len checked"))
        } else {
            Ok(Ast::Alt(branches))
        }
    }

    fn sequence(&mut self) -> Result<Ast, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeatable()?);
        }
        Ok(Ast::concat(parts))
    }

    fn repeatable(&mut self) -> Result<Ast, ParseRegexError> {
        let atom = self.atom()?;
        let mut node = atom;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    node = Ast::Star(Box::new(node));
                }
                Some(b'+') => {
                    self.pos += 1;
                    node = Ast::Plus(Box::new(node));
                }
                Some(b'?') => {
                    self.pos += 1;
                    node = Ast::Opt(Box::new(node));
                }
                Some(b'{') => {
                    // `{` begins a repetition only if it looks like one;
                    // otherwise it is a literal brace (PCRE behavior).
                    if let Some(rep) = self.try_repeat()? {
                        let (min, max) = rep;
                        node = Ast::Repeat {
                            inner: Box::new(node),
                            min,
                            max,
                        };
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn try_repeat(&mut self) -> Result<Option<(u32, Option<u32>)>, ParseRegexError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.pos += 1;
        let min = self.number();
        let Some(min) = min else {
            self.pos = start;
            return Ok(None);
        };
        match self.peek() {
            Some(b'}') => {
                self.pos += 1;
                Ok(Some((min, Some(min))))
            }
            Some(b',') => {
                self.pos += 1;
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Some((min, None)));
                }
                let max = self.number().ok_or(ParseRegexError::BadRepeat(start))?;
                if self.bump()? != b'}' || max < min {
                    return Err(ParseRegexError::BadRepeat(start));
                }
                Ok(Some((min, Some(max))))
            }
            _ => {
                self.pos = start;
                Ok(None)
            }
        }
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        let mut val: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            self.pos += 1;
            val = val.saturating_mul(10).saturating_add((b - b'0') as u32);
        }
        if self.pos == start {
            None
        } else {
            Some(val.min(1000)) // cap to keep compiled automata bounded
        }
    }

    fn atom(&mut self) -> Result<Ast, ParseRegexError> {
        let b = self.bump()?;
        match b {
            b'(' => {
                // Group. Support plain and non-capturing; reject the rest.
                if self.peek() == Some(b'?') {
                    self.pos += 1;
                    match self.peek() {
                        Some(b':') => {
                            self.pos += 1;
                        }
                        Some(b'=') | Some(b'!') => {
                            return Err(ParseRegexError::Unsupported("lookahead"))
                        }
                        Some(b'<') => {
                            return Err(ParseRegexError::Unsupported(
                                "lookbehind or named group",
                            ))
                        }
                        _ => return Err(ParseRegexError::Unsupported("(?...) group")),
                    }
                }
                let inner = self.alternation()?;
                if self.bump()? != b')' {
                    return Err(ParseRegexError::Unexpected(self.pos - 1, '('));
                }
                Ok(inner)
            }
            b'[' => self.class(),
            b'.' => {
                // PCRE '.' excludes newline by default.
                let mut s = ByteSet::FULL;
                s.remove(b'\n');
                Ok(Ast::Class(s))
            }
            b'^' => Ok(Ast::AnchorStart),
            b'$' => Ok(Ast::AnchorEnd),
            b'\\' => self.escape(false),
            b'*' | b'+' | b'?' => Err(ParseRegexError::Unexpected(self.pos - 1, b as char)),
            other => Ok(Ast::Class(ByteSet::singleton(other))),
        }
    }

    fn escape(&mut self, in_class: bool) -> Result<Ast, ParseRegexError> {
        let b = self.bump()?;
        let class = |s: ByteSet| Ok(Ast::Class(s));
        match b {
            b'd' => class(ByteSet::range(b'0', b'9')),
            b'D' => class(ByteSet::range(b'0', b'9').complement()),
            b'w' => class(word_set()),
            b'W' => class(word_set().complement()),
            b's' => class(space_set()),
            b'S' => class(space_set().complement()),
            b'n' => class(ByteSet::singleton(b'\n')),
            b't' => class(ByteSet::singleton(b'\t')),
            b'r' => class(ByteSet::singleton(b'\r')),
            b'f' => class(ByteSet::singleton(0x0c)),
            b'v' => class(ByteSet::singleton(0x0b)),
            b'0' => class(ByteSet::singleton(0)),
            b'x' => {
                let hi = hex(self.bump()?)?;
                let lo = hex(self.bump()?)?;
                class(ByteSet::singleton(hi * 16 + lo))
            }
            b'b' | b'B' if !in_class => Err(ParseRegexError::Unsupported("word boundary")),
            b'A' | b'z' | b'Z' if !in_class => {
                Err(ParseRegexError::Unsupported("\\A/\\z anchors"))
            }
            b'1'..=b'9' if !in_class => Err(ParseRegexError::Unsupported("backreference")),
            // Escaped metacharacter or punctuation: literal.
            other => class(ByteSet::singleton(other)),
        }
    }

    fn class(&mut self) -> Result<Ast, ParseRegexError> {
        let mut negated = false;
        if self.peek() == Some(b'^') {
            negated = true;
            self.pos += 1;
        }
        let mut set = ByteSet::EMPTY;
        let mut first = true;
        loop {
            let b = self.bump()?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo = if b == b'\\' {
                match self.escape(true)? {
                    Ast::Class(s) => {
                        if s.len() > 1 {
                            // \d, \w, \s inside a class: union it in; it
                            // cannot form a range.
                            set = set.union(&s);
                            continue;
                        }
                        s.first_byte().expect("singleton class")
                    }
                    _ => unreachable!("escape in class returns Class"),
                }
            } else {
                b
            };
            // Range?
            if self.peek() == Some(b'-')
                && self.bytes.get(self.pos + 1).copied() != Some(b']')
                && self.bytes.get(self.pos + 1).is_some()
            {
                self.pos += 1; // consume '-'
                let hb = self.bump()?;
                let hi = if hb == b'\\' {
                    match self.escape(true)? {
                        Ast::Class(s) if s.len() == 1 => s.first_byte().expect("singleton"),
                        _ => return Err(ParseRegexError::Unsupported("class range to multi-escape")),
                    }
                } else {
                    hb
                };
                set = set.union(&ByteSet::range(lo, hi));
            } else {
                set.insert(lo);
            }
        }
        if negated {
            set = set.complement();
        }
        Ok(Ast::Class(set))
    }
}

fn hex(b: u8) -> Result<u8, ParseRegexError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(ParseRegexError::Unexpected(0, b as char)),
    }
}

fn word_set() -> ByteSet {
    ByteSet::range(b'a', b'z')
        .union(&ByteSet::range(b'A', b'Z'))
        .union(&ByteSet::range(b'0', b'9'))
        .union(&ByteSet::singleton(b'_'))
}

fn space_set() -> ByteSet {
    ByteSet::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_atoms() {
        assert!(parse("abc").is_ok());
        assert!(parse("[a-z0-9_]+").is_ok());
        assert!(parse(r"(foo|bar)?baz{2,4}").is_ok());
    }

    #[test]
    fn rejects_dangling_quantifier() {
        assert!(parse("*a").is_err());
        assert!(parse("(+)").is_err());
    }

    #[test]
    fn rejects_unbalanced_group() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
    }

    #[test]
    fn literal_brace_is_allowed() {
        // `a{` with no digits is a literal brace in PCRE.
        assert!(parse("a{x}").is_ok());
    }

    #[test]
    fn class_with_leading_bracket() {
        // `[]]` = class containing ']'.
        let ast = parse("[]]").unwrap();
        assert_eq!(ast, Ast::Class(ByteSet::singleton(b']')));
    }

    #[test]
    fn class_with_trailing_dash() {
        let ast = parse("[a-]").unwrap();
        assert_eq!(ast, Ast::Class(ByteSet::from_bytes([b'a', b'-'])));
    }

    #[test]
    fn class_with_escape_sets() {
        let ast = parse(r"[\d_]").unwrap();
        let expected = ByteSet::range(b'0', b'9').union(&ByteSet::singleton(b'_'));
        assert_eq!(ast, Ast::Class(expected));
    }

    #[test]
    fn delimiters() {
        let (pat, flags) = parse_delimited("/^a\\/b$/i").unwrap();
        assert_eq!(pat, "^a\\/b$");
        assert_eq!(flags, "i");
        let (pat, flags) = parse_delimited("#x#").unwrap();
        assert_eq!(pat, "x");
        assert_eq!(flags, "");
        assert!(parse_delimited("abc").is_err());
    }

    #[test]
    fn repeat_bounds() {
        assert!(parse("a{3}").is_ok());
        assert!(parse("a{3,}").is_ok());
        assert!(parse("a{3,5}").is_ok());
        assert!(parse("a{5,3}").is_err());
    }
}
