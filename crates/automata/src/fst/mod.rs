//! Finite-state transducers: automata with output.
//!
//! The paper (§3.1.2, Fig. 6) models PHP string library functions as
//! FSTs so that their effect on a grammar can be computed precisely:
//! the image of a context-free language under an FST is context free,
//! and `strtaint-grammar` implements that image construction with taint
//! propagation.
//!
//! Output symbols may reference the consumed input byte ([`OutSym::Copy`]
//! and the case-mapping variants), which keeps transducers like
//! `addslashes` (one arc: `{'," ,\,NUL} → \ · copy`) compact instead of
//! requiring one arc per byte.

pub mod builders;

use std::fmt;

use crate::byteset::ByteSet;
use crate::nfa::StateId;

/// One output symbol of a transducer arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutSym {
    /// Emit this fixed byte.
    Byte(u8),
    /// Emit the input byte that was consumed by the arc.
    Copy,
    /// Emit the ASCII-lowercased input byte.
    Lower,
    /// Emit the ASCII-uppercased input byte.
    Upper,
}

impl OutSym {
    /// Resolves the symbol against the consumed input byte.
    pub fn resolve(self, input: u8) -> u8 {
        match self {
            OutSym::Byte(b) => b,
            OutSym::Copy => input,
            OutSym::Lower => input.to_ascii_lowercase(),
            OutSym::Upper => input.to_ascii_uppercase(),
        }
    }
}

/// Resolves a whole output template against a consumed input byte.
pub fn resolve_output(output: &[OutSym], input: u8) -> Vec<u8> {
    output.iter().map(|o| o.resolve(input)).collect()
}

/// A consuming transition of an [`Fst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FstArc {
    /// The set of input bytes on which the arc fires.
    pub input: ByteSet,
    /// The output template emitted when the arc fires.
    pub output: Vec<OutSym>,
    /// Destination state.
    pub target: StateId,
}

/// A finite-state transducer over bytes.
///
/// States may carry a *final output*: a byte string appended when the
/// input ends in that state (needed by e.g. the `str_replace` transducer,
/// which must flush a partially-matched pattern at end of input). A state
/// is final iff its final output is `Some`.
///
/// # Examples
///
/// ```
/// use strtaint_automata::fst::builders;
///
/// let f = builders::addslashes();
/// assert_eq!(f.transduce_unique(b"it's").unwrap(), b"it\\'s".to_vec());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fst {
    arcs: Vec<Vec<FstArc>>,
    eps: Vec<Vec<(Vec<OutSym>, StateId)>>,
    finals: Vec<Option<Vec<u8>>>,
    start: StateId,
}

impl Fst {
    /// Creates an FST with a single non-final start state.
    pub fn new() -> Self {
        let mut f = Fst::default();
        let s = f.add_state();
        f.start = s;
        f
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.arcs.len() as StateId;
        self.arcs.push(Vec::new());
        self.eps.push(Vec::new());
        self.finals.push(None);
        id
    }

    /// Adds a consuming arc.
    pub fn add_arc(&mut self, from: StateId, input: ByteSet, output: Vec<OutSym>, to: StateId) {
        if !input.is_empty() {
            self.arcs[from as usize].push(FstArc {
                input,
                output,
                target: to,
            });
        }
    }

    /// Adds an input-epsilon arc (consumes nothing, emits `output`).
    ///
    /// Input-epsilon arcs are supported in simulation; callers that feed
    /// the transducer to the grammar image construction must first call
    /// [`Fst::remove_input_epsilons`].
    pub fn add_eps_arc(&mut self, from: StateId, output: Vec<OutSym>, to: StateId) {
        self.eps[from as usize].push((output, to));
    }

    /// Marks `s` final with the given flush suffix (empty for none).
    pub fn set_final(&mut self, s: StateId, flush: Vec<u8>) {
        self.finals[s as usize] = Some(flush);
    }

    /// Unmarks `s` as final.
    pub fn clear_final(&mut self, s: StateId) {
        self.finals[s as usize] = None;
    }

    /// Returns the start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        self.start = s;
    }

    /// Returns the number of states.
    pub fn num_states(&self) -> usize {
        self.arcs.len()
    }

    /// Returns `true` if `s` is final.
    pub fn is_final(&self, s: StateId) -> bool {
        self.finals[s as usize].is_some()
    }

    /// Returns the flush suffix of final state `s`, if final.
    pub fn final_output(&self, s: StateId) -> Option<&[u8]> {
        self.finals[s as usize].as_deref()
    }

    /// Returns the consuming arcs out of `s`.
    pub fn arcs(&self, s: StateId) -> &[FstArc] {
        &self.arcs[s as usize]
    }

    /// Returns the input-epsilon arcs out of `s`.
    pub fn eps_arcs(&self, s: StateId) -> &[(Vec<OutSym>, StateId)] {
        &self.eps[s as usize]
    }

    /// Returns `true` if the transducer has any input-epsilon arcs.
    pub fn has_input_epsilons(&self) -> bool {
        self.eps.iter().any(|v| !v.is_empty())
    }

    /// Runs the transducer on `input`, collecting up to `limit` distinct
    /// outputs (the transduction relation may be nondeterministic).
    ///
    /// Returns outputs in an unspecified order.
    pub fn transduce(&self, input: &[u8], limit: usize) -> Vec<Vec<u8>> {
        let mut results = Vec::new();
        // Depth-first over (state, input position, output so far); epsilon
        // steps are bounded to avoid epsilon-cycle divergence.
        let mut stack: Vec<(StateId, usize, Vec<u8>, usize)> =
            vec![(self.start, 0, Vec::new(), 0)];
        while let Some((s, pos, out, eps_depth)) = stack.pop() {
            if results.len() >= limit {
                break;
            }
            if pos == input.len() {
                if let Some(flush) = self.final_output(s) {
                    let mut full = out.clone();
                    full.extend_from_slice(flush);
                    if !results.contains(&full) {
                        results.push(full);
                    }
                }
            }
            if eps_depth < self.num_states() {
                for (tmpl, t) in self.eps_arcs(s) {
                    let mut next = out.clone();
                    // Copy/Lower/Upper have no referent on epsilon input;
                    // resolve fixed bytes only.
                    for sym in tmpl {
                        if let OutSym::Byte(b) = sym {
                            next.push(*b);
                        }
                    }
                    stack.push((*t, pos, next, eps_depth + 1));
                }
            }
            if pos < input.len() {
                let b = input[pos];
                for arc in self.arcs(s) {
                    if arc.input.contains(b) {
                        let mut next = out.clone();
                        next.extend(resolve_output(&arc.output, b));
                        stack.push((arc.target, pos + 1, next, 0));
                    }
                }
            }
        }
        results
    }

    /// Runs a transducer expected to be a *function* on `input` and
    /// returns its unique output.
    ///
    /// Returns `None` if the transducer rejects the input or produces
    /// more than one distinct output.
    pub fn transduce_unique(&self, input: &[u8]) -> Option<Vec<u8>> {
        let mut outs = self.transduce(input, 2);
        if outs.len() == 1 {
            outs.pop()
        } else {
            None
        }
    }

    /// Runs `input` through the transducer starting at `state`,
    /// collecting every `(end state, output)` pair (no final-state
    /// requirement). Used by [`Fst::compose`].
    fn paths_from(&self, state: StateId, input: &[u8]) -> Vec<(StateId, Vec<u8>)> {
        let mut cur: Vec<(StateId, Vec<u8>)> = vec![(state, Vec::new())];
        for &b in input {
            let mut next = Vec::new();
            for (s, out) in &cur {
                for arc in self.arcs(*s) {
                    if arc.input.contains(b) {
                        let mut o = out.clone();
                        o.extend(resolve_output(&arc.output, b));
                        next.push((arc.target, o));
                    }
                }
            }
            // Dedup to keep the frontier small.
            next.sort();
            next.dedup();
            cur = next;
            if cur.is_empty() {
                break;
            }
        }
        cur
    }

    /// Composes two transducers: the result relates `x` to `z` whenever
    /// `self` relates `x` to some `y` and `other` relates `y` to `z`.
    ///
    /// Both transducers must be input-epsilon-free (all builders are);
    /// arcs are expanded per concrete byte, so the construction is exact.
    ///
    /// # Panics
    ///
    /// Panics if either transducer has input-epsilon arcs.
    #[must_use]
    pub fn compose(&self, other: &Fst) -> Fst {
        assert!(
            !self.has_input_epsilons() && !other.has_input_epsilons(),
            "compose requires input-epsilon-free transducers"
        );
        use std::collections::HashMap;
        let mut out = Fst::new();
        let mut map: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let start_pair = (self.start, other.start);
        map.insert(start_pair, out.start());
        let mut worklist = vec![start_pair];
        while let Some((q1, q2)) = worklist.pop() {
            let from = map[&(q1, q2)];
            // Finality: flush of self must run through other, then
            // other's flush.
            if let Some(flush1) = self.final_output(q1) {
                let flush1 = flush1.to_vec();
                for (mid, w) in other.paths_from(q2, &flush1) {
                    if let Some(flush2) = other.final_output(mid) {
                        if !out.is_final(from) {
                            let mut full = w.clone();
                            full.extend_from_slice(flush2);
                            out.set_final(from, full);
                        }
                    }
                }
            }
            for arc in self.arcs(q1) {
                for b in arc.input.iter() {
                    let w1 = resolve_output(&arc.output, b);
                    for (mid, w2) in other.paths_from(q2, &w1) {
                        let pair = (arc.target, mid);
                        let to = *map.entry(pair).or_insert_with(|| {
                            worklist.push(pair);
                            out.add_state()
                        });
                        out.add_arc(
                            from,
                            ByteSet::singleton(b),
                            w2.iter().map(|&x| OutSym::Byte(x)).collect(),
                            to,
                        );
                    }
                }
            }
        }
        out
    }

    /// Eliminates input-epsilon arcs by folding each acyclic epsilon path
    /// into the consuming arc (or final flush) that follows it.
    ///
    /// # Errors
    ///
    /// Returns [`EpsilonCycleError`] if the epsilon graph has a cycle with
    /// output (such a transducer relates one input to infinitely many
    /// outputs and has no CFG image in our construction).
    pub fn remove_input_epsilons(&self) -> Result<Fst, EpsilonCycleError> {
        if !self.has_input_epsilons() {
            return Ok(self.clone());
        }
        // For each state, compute epsilon closure with accumulated fixed
        // output; detect cycles.
        let n = self.num_states();
        let mut closures: Vec<Vec<(Vec<u8>, StateId)>> = Vec::with_capacity(n);
        for s in 0..n as StateId {
            let mut acc: Vec<(Vec<u8>, StateId)> = vec![(Vec::new(), s)];
            let mut stack: Vec<(Vec<u8>, StateId, Vec<StateId>)> =
                vec![(Vec::new(), s, vec![s])];
            while let Some((out, q, path)) = stack.pop() {
                for (tmpl, t) in self.eps_arcs(q) {
                    if path.contains(t) {
                        // Pure epsilon cycle with no output is harmless to
                        // skip (already in closure); with output it is an
                        // error.
                        if tmpl.iter().any(|o| matches!(o, OutSym::Byte(_))) {
                            return Err(EpsilonCycleError);
                        }
                        continue;
                    }
                    let mut next_out = out.clone();
                    for sym in tmpl {
                        if let OutSym::Byte(b) = sym {
                            next_out.push(*b);
                        }
                    }
                    acc.push((next_out.clone(), *t));
                    let mut next_path = path.clone();
                    next_path.push(*t);
                    stack.push((next_out, *t, next_path));
                }
            }
            closures.push(acc);
        }

        let mut out = Fst {
            arcs: vec![Vec::new(); n],
            eps: vec![Vec::new(); n],
            finals: vec![None; n],
            start: self.start,
        };
        for s in 0..n as StateId {
            for (prefix, mid) in &closures[s as usize] {
                // Consuming arcs reachable after epsilon prefix.
                for arc in self.arcs(*mid) {
                    let mut tmpl: Vec<OutSym> =
                        prefix.iter().map(|&b| OutSym::Byte(b)).collect();
                    tmpl.extend(arc.output.iter().copied());
                    out.add_arc(s, arc.input, tmpl, arc.target);
                }
                // Final flush reachable after epsilon prefix.
                if let Some(flush) = self.final_output(*mid) {
                    let mut full = prefix.clone();
                    full.extend_from_slice(flush);
                    // Keep the shortest flush if several paths reach finals;
                    // any choice preserves the relation only if unique — to
                    // stay safe keep all by preferring existing and noting
                    // that multiple flushes cannot be represented. We pick
                    // the first and rely on builders not to create this.
                    if out.finals[s as usize].is_none() {
                        out.finals[s as usize] = Some(full);
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Error returned by [`Fst::remove_input_epsilons`] when the epsilon
/// graph contains an output-producing cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpsilonCycleError;

impl fmt::Display for EpsilonCycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transducer has an output-producing input-epsilon cycle")
    }
}

impl std::error::Error for EpsilonCycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies() {
        let f = builders::identity();
        assert_eq!(f.transduce_unique(b"hello"). unwrap(), b"hello".to_vec());
        assert_eq!(f.transduce_unique(b"").unwrap(), b"".to_vec());
    }

    #[test]
    fn outsym_resolution() {
        assert_eq!(OutSym::Byte(b'x').resolve(b'a'), b'x');
        assert_eq!(OutSym::Copy.resolve(b'a'), b'a');
        assert_eq!(OutSym::Lower.resolve(b'A'), b'a');
        assert_eq!(OutSym::Upper.resolve(b'a'), b'A');
    }

    #[test]
    fn eps_removal_simple() {
        // start --eps/"x"--> mid --a/copy--> end(final)
        let mut f = Fst::new();
        let mid = f.add_state();
        let end = f.add_state();
        f.add_eps_arc(f.start(), vec![OutSym::Byte(b'x')], mid);
        f.add_arc(mid, ByteSet::singleton(b'a'), vec![OutSym::Copy], end);
        f.set_final(end, Vec::new());
        assert!(f.has_input_epsilons());
        let g = f.remove_input_epsilons().unwrap();
        assert!(!g.has_input_epsilons());
        assert_eq!(g.transduce_unique(b"a").unwrap(), b"xa".to_vec());
        assert_eq!(
            f.transduce(b"a", 10),
            g.transduce(b"a", 10),
            "epsilon removal preserves the relation"
        );
    }

    #[test]
    fn eps_cycle_with_output_errors() {
        let mut f = Fst::new();
        f.add_eps_arc(f.start(), vec![OutSym::Byte(b'x')], f.start());
        f.set_final(f.start(), Vec::new());
        assert_eq!(f.remove_input_epsilons().unwrap_err(), EpsilonCycleError);
    }
}

#[cfg(test)]
mod compose_tests {
    use super::builders;

    #[test]
    fn compose_add_then_strip_is_identity() {
        let c = builders::addslashes().compose(&builders::stripslashes());
        for s in [&b"it's"[..], b"a\"b\\c", b"plain", b""] {
            assert_eq!(c.transduce_unique(s).unwrap(), s.to_vec(), "{:?}", s);
        }
    }

    #[test]
    fn compose_agrees_with_sequential_application() {
        let f = builders::replace_literal(b"[b]", b"<b>");
        let g = builders::lowercase();
        let fg = f.compose(&g);
        for s in [&b"[B]X[b]Y"[..], b"ABC", b"[b][b]"] {
            let seq = g
                .transduce_unique(&f.transduce_unique(s).unwrap())
                .unwrap();
            assert_eq!(fg.transduce_unique(s).unwrap(), seq, "{:?}", s);
        }
    }

    #[test]
    fn compose_chains_replacements() {
        let open = builders::replace_literal(b"[b]", b"<b>");
        let close = builders::replace_literal(b"[/b]", b"</b>");
        let both = open.compose(&close);
        assert_eq!(
            both.transduce_unique(b"[b]hi[/b]").unwrap(),
            b"<b>hi</b>".to_vec()
        );
    }

    #[test]
    fn compose_final_flush_threads_through() {
        // Partial match pending at EOF in the first transducer must be
        // transduced by the second.
        let f = builders::replace_literal(b"ab", b"X");
        let g = builders::uppercase();
        let fg = f.compose(&g);
        assert_eq!(fg.transduce_unique(b"za").unwrap(), b"ZA".to_vec());
    }
}
