//! Constructors for the transducers that model PHP string functions.
//!
//! Each builder returns an [`Fst`] whose relation either *is* the PHP
//! function (e.g. [`replace_literal`], [`addslashes`]) or conservatively
//! over-approximates it (e.g. [`trim`], [`replace_regex`]); the
//! over-approximations are documented per builder. Over-approximation is
//! sound for the analysis: it can only add strings to the computed
//! query-language, never hide one.

use crate::byteset::ByteSet;
use crate::dfa::Dfa;
use crate::fst::{Fst, OutSym};

/// The identity transducer (`Σ* → Σ*`, copying its input).
pub fn identity() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    f.add_arc(s, ByteSet::FULL, vec![OutSym::Copy], s);
    f.set_final(s, Vec::new());
    f
}

/// A transducer mapping every string to the fixed string `out`
/// (models functions that discard their argument).
pub fn constant(out: &[u8]) -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    f.add_arc(s, ByteSet::FULL, Vec::new(), s);
    f.set_final(s, out.to_vec());
    f
}

/// Applies an arbitrary byte-to-byte map to every input byte.
///
/// Bytes are grouped by image so the result stays compact.
pub fn byte_map(map: impl Fn(u8) -> u8) -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    // Bytes fixed by the map share a single Copy arc.
    let mut fixed = ByteSet::EMPTY;
    let mut moved: Vec<(u8, u8)> = Vec::new();
    for b in 0..=255u8 {
        let m = map(b);
        if m == b {
            fixed.insert(b);
        } else {
            moved.push((b, m));
        }
    }
    f.add_arc(s, fixed, vec![OutSym::Copy], s);
    // Group moved bytes by their image.
    moved.sort_by_key(|&(_, m)| m);
    let mut i = 0;
    while i < moved.len() {
        let img = moved[i].1;
        let mut set = ByteSet::EMPTY;
        while i < moved.len() && moved[i].1 == img {
            set.insert(moved[i].0);
            i += 1;
        }
        f.add_arc(s, set, vec![OutSym::Byte(img)], s);
    }
    f.set_final(s, Vec::new());
    f
}

/// Models PHP `strtolower` (ASCII).
pub fn lowercase() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    f.add_arc(s, ByteSet::FULL, vec![OutSym::Lower], s);
    f.set_final(s, Vec::new());
    f
}

/// Models PHP `strtoupper` (ASCII).
pub fn uppercase() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    f.add_arc(s, ByteSet::FULL, vec![OutSym::Upper], s);
    f.set_final(s, Vec::new());
    f
}

/// Models PHP `ucfirst`: uppercases the first byte.
pub fn ucfirst() -> Fst {
    first_byte_case(OutSym::Upper)
}

/// Models PHP `lcfirst`: lowercases the first byte.
pub fn lcfirst() -> Fst {
    first_byte_case(OutSym::Lower)
}

fn first_byte_case(first: OutSym) -> Fst {
    let mut f = Fst::new();
    let start = f.start();
    let rest = f.add_state();
    f.add_arc(start, ByteSet::FULL, vec![first], rest);
    f.add_arc(rest, ByteSet::FULL, vec![OutSym::Copy], rest);
    f.set_final(start, Vec::new());
    f.set_final(rest, Vec::new());
    f
}

/// Models PHP `addslashes`: precedes `'`, `"`, `\` and NUL with a
/// backslash.
pub fn addslashes() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    let specials = ByteSet::from_bytes([b'\'', b'"', b'\\', 0]);
    f.add_arc(s, specials, vec![OutSym::Byte(b'\\'), OutSym::Copy], s);
    f.add_arc(s, specials.complement(), vec![OutSym::Copy], s);
    f.set_final(s, Vec::new());
    f
}

/// Models MySQL-style quote escaping used by `mysql_real_escape_string`:
/// like [`addslashes`] but also escaping `\n`, `\r` and Ctrl-Z.
pub fn mysql_escape() -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    let plain = ByteSet::from_bytes([b'\'', b'"', b'\\', 0]);
    f.add_arc(s, plain, vec![OutSym::Byte(b'\\'), OutSym::Copy], s);
    f.add_arc(
        s,
        ByteSet::singleton(b'\n'),
        vec![OutSym::Byte(b'\\'), OutSym::Byte(b'n')],
        s,
    );
    f.add_arc(
        s,
        ByteSet::singleton(b'\r'),
        vec![OutSym::Byte(b'\\'), OutSym::Byte(b'r')],
        s,
    );
    f.add_arc(
        s,
        ByteSet::singleton(0x1a),
        vec![OutSym::Byte(b'\\'), OutSym::Byte(b'Z')],
        s,
    );
    let covered = plain.union(&ByteSet::from_bytes([b'\n', b'\r', 0x1a]));
    f.add_arc(s, covered.complement(), vec![OutSym::Copy], s);
    f.set_final(s, Vec::new());
    f
}

/// Models PHP `stripslashes`: removes one level of backslash escaping.
/// A trailing lone backslash is dropped, matching PHP.
pub fn stripslashes() -> Fst {
    let mut f = Fst::new();
    let plain = f.start();
    let escaped = f.add_state();
    let bs = ByteSet::singleton(b'\\');
    f.add_arc(plain, bs, Vec::new(), escaped);
    f.add_arc(plain, bs.complement(), vec![OutSym::Copy], plain);
    f.add_arc(escaped, ByteSet::FULL, vec![OutSym::Copy], plain);
    f.set_final(plain, Vec::new());
    f.set_final(escaped, Vec::new());
    f
}

/// Deletes every byte in `set` from the input.
pub fn delete_set(set: ByteSet) -> Fst {
    let mut f = Fst::new();
    let s = f.start();
    f.add_arc(s, set, Vec::new(), s);
    f.add_arc(s, set.complement(), vec![OutSym::Copy], s);
    f.set_final(s, Vec::new());
    f
}

/// Models PHP `str_replace($pat, $rep, ·)` for a non-empty scalar
/// pattern: leftmost, non-overlapping replace-all.
///
/// This is the construction of the paper's Figure 6 generalized from
/// `str_replace("''", "'", ·)` to arbitrary pattern/replacement via a
/// KMP automaton: state `s` means the last `s` bytes read equal
/// `pat[..s]` and are pending (not yet emitted); the per-state final
/// flush emits the pending prefix at end of input.
///
/// # Panics
///
/// Panics if `pat` is empty (PHP returns the subject unchanged; callers
/// should special-case it to [`identity`]).
pub fn replace_literal(pat: &[u8], rep: &[u8]) -> Fst {
    assert!(!pat.is_empty(), "str_replace with empty pattern");
    let m = pat.len();
    let fail = kmp_failure(pat);
    let delta = |mut s: usize, b: u8| -> usize {
        loop {
            if pat[s] == b {
                return s + 1;
            }
            if s == 0 {
                return 0;
            }
            s = fail[s - 1];
        }
    };

    let mut f = Fst::new();
    // States 0..m; state 0 is the start created by Fst::new().
    for _ in 1..m {
        f.add_state();
    }
    for s in 0..m {
        // Bytes that fall all the way back with no partial match: emit
        // pending prefix plus the byte itself.
        let mut fallback = ByteSet::FULL;
        for b in 0..=255u8 {
            let t = delta(s, b);
            if t != 0 {
                fallback.remove(b);
                if t == m {
                    // Completed a match: emit the replacement, restart.
                    f.add_arc(
                        s as u32,
                        ByteSet::singleton(b),
                        rep.iter().map(|&r| OutSym::Byte(r)).collect(),
                        0,
                    );
                } else {
                    // Pending shrinks from s+1 bytes to t bytes; emit the
                    // difference, which is a prefix of pat (b is retained
                    // in the new pending suffix).
                    let consumed_len = s + 1;
                    let emit = &pat[..consumed_len - t];
                    let tmpl: Vec<OutSym> = if consumed_len - t > s {
                        // Emission includes the just-read byte as its last
                        // symbol (only possible when t == 0, excluded here).
                        unreachable!("t > 0 keeps b pending");
                    } else {
                        emit.iter().map(|&p| OutSym::Byte(p)).collect()
                    };
                    f.add_arc(s as u32, ByteSet::singleton(b), tmpl, t as u32);
                }
            }
        }
        // Fallback arc: emit pat[..s] then the byte itself.
        let mut tmpl: Vec<OutSym> = pat[..s].iter().map(|&p| OutSym::Byte(p)).collect();
        tmpl.push(OutSym::Copy);
        f.add_arc(s as u32, fallback, tmpl, 0);
        // Final flush: pending prefix.
        f.set_final(s as u32, pat[..s].to_vec());
    }
    f
}

fn kmp_failure(pat: &[u8]) -> Vec<usize> {
    let mut fail = vec![0usize; pat.len()];
    let mut k = 0;
    for i in 1..pat.len() {
        while k > 0 && pat[i] != pat[k] {
            k = fail[k - 1];
        }
        if pat[i] == pat[k] {
            k += 1;
        }
        fail[i] = k;
    }
    fail
}

/// Over-approximates PHP `trim`: the relation contains `(s, trim(s))`
/// for every `s`, plus partially-trimmed variants (sound for analysis).
pub fn trim() -> Fst {
    trim_set(ByteSet::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0b, 0]), true, true)
}

/// Over-approximates PHP `ltrim` (see [`trim`]).
pub fn ltrim() -> Fst {
    trim_set(ByteSet::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0b, 0]), true, false)
}

/// Over-approximates PHP `rtrim` (see [`trim`]).
pub fn rtrim() -> Fst {
    trim_set(ByteSet::from_bytes([b' ', b'\t', b'\n', b'\r', 0x0b, 0]), false, true)
}

fn trim_set(ws: ByteSet, left: bool, right: bool) -> Fst {
    let mut f = Fst::new();
    let lead = f.start();
    let mid = f.add_state();
    let tail = f.add_state();
    if left {
        f.add_arc(lead, ws, Vec::new(), lead);
    }
    f.add_arc(lead, ByteSet::FULL, vec![OutSym::Copy], mid);
    f.add_arc(mid, ByteSet::FULL, vec![OutSym::Copy], mid);
    if right {
        f.add_arc(mid, ws, Vec::new(), tail);
        f.add_arc(tail, ws, Vec::new(), tail);
        f.set_final(tail, Vec::new());
    }
    f.set_final(lead, Vec::new());
    f.set_final(mid, Vec::new());
    f
}

/// Over-approximates `preg_replace($pattern, $rep, ·)` for a literal
/// replacement: the relation contains every string obtainable by
/// replacing any set of non-overlapping pattern matches with `rep`
/// (a superset of PHP's leftmost/greedy replace-all).
///
/// Built from the pattern's *anchored* DFA: a copy mode copies input;
/// at any point the transducer may enter match mode, silently consume a
/// pattern match, emit `rep`, and return to copy mode.
pub fn replace_regex(pattern: &Dfa, rep: &[u8]) -> Fst {
    let mut f = Fst::new();
    let copy = f.start();
    f.set_final(copy, Vec::new());
    f.add_arc(copy, ByteSet::FULL, vec![OutSym::Copy], copy);
    // Embed the pattern DFA as silent states.
    let offset: Vec<u32> = (0..pattern.num_states())
        .map(|_| f.add_state())
        .collect();
    for q in 0..pattern.num_states() as u32 {
        for (set, t) in pattern.arcs(q) {
            f.add_arc(offset[q as usize], *set, Vec::new(), offset[*t as usize]);
        }
    }
    // Entering match mode: from copy, one silent byte that the pattern
    // DFA would consume from its start state.
    for (set, t) in pattern.arcs(pattern.start()) {
        f.add_arc(copy, *set, Vec::new(), offset[*t as usize]);
    }
    // Leaving match mode: at an accepting pattern state, emit rep and
    // resume copying. Implemented by duplicating the copy-mode behavior
    // with the `rep` prefix on each outgoing arc, plus a final flush.
    for q in 0..pattern.num_states() as u32 {
        if pattern.is_accepting(q) {
            let here = offset[q as usize];
            let mut tmpl: Vec<OutSym> = rep.iter().map(|&b| OutSym::Byte(b)).collect();
            tmpl.push(OutSym::Copy);
            f.add_arc(here, ByteSet::FULL, tmpl, copy);
            // Or re-enter match mode immediately (adjacent matches):
            // emit rep for the completed match, silently consume the
            // first byte of the next one.
            for (set, t) in pattern.arcs(pattern.start()) {
                f.add_arc(
                    here,
                    *set,
                    rep.iter().map(|&b| OutSym::Byte(b)).collect(),
                    offset[*t as usize],
                );
            }
            f.set_final(here, rep.to_vec());
        }
    }
    f
}

/// The transducer of the paper's Figure 6:
/// `str_replace("''", "'", ·)`.
pub fn figure6() -> Fst {
    replace_literal(b"''", b"'")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(f: &Fst, s: &[u8]) -> Vec<u8> {
        f.transduce_unique(s)
            .unwrap_or_else(|| panic!("not a function on {:?}", s))
    }

    #[test]
    fn addslashes_matches_php() {
        let f = addslashes();
        assert_eq!(apply(&f, b"it's"), b"it\\'s".to_vec());
        assert_eq!(apply(&f, b"a\"b\\c"), b"a\\\"b\\\\c".to_vec());
        assert_eq!(apply(&f, b"plain"), b"plain".to_vec());
    }

    #[test]
    fn mysql_escape_newlines() {
        let f = mysql_escape();
        assert_eq!(apply(&f, b"a\nb"), b"a\\nb".to_vec());
        assert_eq!(apply(&f, b"a'b"), b"a\\'b".to_vec());
    }

    #[test]
    fn stripslashes_inverts_addslashes() {
        let add = addslashes();
        let strip = stripslashes();
        for s in [&b"it's"[..], b"a\"b", b"c\\d", b"plain"] {
            let escaped = apply(&add, s);
            assert_eq!(apply(&strip, &escaped), s.to_vec());
        }
        // Trailing lone backslash dropped, as in PHP.
        assert_eq!(apply(&strip, b"abc\\"), b"abc".to_vec());
    }

    #[test]
    fn figure6_collapses_doubled_quotes() {
        let f = figure6();
        assert_eq!(apply(&f, b"a''b"), b"a'b".to_vec());
        assert_eq!(apply(&f, b"''''"), b"''".to_vec());
        assert_eq!(apply(&f, b"'"), b"'".to_vec());
        assert_eq!(apply(&f, b"no quotes"), b"no quotes".to_vec());
    }

    #[test]
    fn replace_literal_matches_php_str_replace() {
        let cases: &[(&[u8], &[u8], &[u8], &[u8])] = &[
            (b"ab", b"X", b"zababy", b"zXXy"),
            (b"aa", b"b", b"aaaa", b"bb"),
            (b"aa", b"b", b"aaa", b"ba"),
            (b"abc", b"", b"abcabc", b""),
            (b"'", b"\\'", b"d'Arc", b"d\\'Arc"),
            (b"aba", b"X", b"ababa", b"Xba"), // non-overlapping, leftmost
        ];
        for (pat, rep, input, expected) in cases {
            let f = replace_literal(pat, rep);
            assert_eq!(
                apply(&f, input),
                expected.to_vec(),
                "str_replace({:?},{:?},{:?})",
                pat,
                rep,
                input
            );
        }
    }

    #[test]
    fn replace_literal_flushes_partial_match() {
        let f = replace_literal(b"abc", b"X");
        assert_eq!(apply(&f, b"ab"), b"ab".to_vec());
        assert_eq!(apply(&f, b"xab"), b"xab".to_vec());
    }

    #[test]
    fn byte_map_groups() {
        let f = byte_map(|b| if b == b'[' { b'<' } else { b });
        assert_eq!(apply(&f, b"[x]"), b"<x]".to_vec());
    }

    #[test]
    fn case_mapping() {
        assert_eq!(apply(&lowercase(), b"AbC1"), b"abc1".to_vec());
        assert_eq!(apply(&uppercase(), b"AbC1"), b"ABC1".to_vec());
    }

    #[test]
    fn constant_discards() {
        let f = constant(b"N");
        assert_eq!(apply(&f, b"whatever"), b"N".to_vec());
    }

    #[test]
    fn delete_removes_bytes() {
        let f = delete_set(ByteSet::singleton(b'\''));
        assert_eq!(apply(&f, b"o'rly'"), b"orly".to_vec());
    }

    #[test]
    fn trim_relation_contains_trim() {
        let f = trim();
        let outs = f.transduce(b"  ab  ", 64);
        assert!(outs.contains(&b"ab".to_vec()), "contains fully trimmed");
        // Over-approximation may contain partial trims but never touches
        // interior bytes.
        for o in &outs {
            assert!(o.windows(2).any(|w| w == b"ab") || o == b"ab");
        }
    }

    #[test]
    fn replace_regex_overapproximates() {
        use crate::regex::Regex;
        let pat = Regex::new("[0-9]+").unwrap();
        let dfa = Dfa::from_nfa(&pat.anchored_nfa());
        let f = replace_regex(&dfa, b"N");
        let outs = f.transduce(b"a12b", 256);
        // The true PHP result replaces the maximal match:
        assert!(outs.contains(&b"aNb".to_vec()), "got {:?}", outs);
        // Not replacing at all is also in the over-approximation:
        assert!(outs.contains(&b"a12b".to_vec()));
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn replace_literal_rejects_empty_pattern() {
        let _ = replace_literal(b"", b"x");
    }
}
