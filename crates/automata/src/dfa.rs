//! Deterministic finite automata over the byte alphabet.
//!
//! [`Dfa`]s in this crate are always *complete*: every state has exactly
//! one successor for every byte (transition labels partition the
//! alphabet). Completeness makes [`Dfa::complement`] a trivial flip of the
//! accepting set, which the analysis relies on for refining `else`
//! branches of regex conditionals.

use std::collections::HashMap;

use crate::byteset::{refine_partition, ByteSet};
use crate::nfa::{Nfa, StateId};

/// A complete deterministic finite automaton.
///
/// # Examples
///
/// ```
/// use strtaint_automata::{Dfa, Nfa};
///
/// let d = Dfa::from_nfa(&Nfa::literal(b"ok"));
/// assert!(d.accepts(b"ok"));
/// assert!(!d.complement().accepts(b"ok"));
/// ```
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Per-state transition table. The byte sets of each state partition
    /// the full alphabet.
    arcs: Vec<Vec<(ByteSet, StateId)>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Creates a DFA accepting the empty language.
    pub fn empty() -> Self {
        Dfa {
            arcs: vec![vec![(ByteSet::FULL, 0)]],
            start: 0,
            accepting: vec![false],
        }
    }

    /// Creates a DFA accepting every byte string.
    pub fn any_string() -> Self {
        Dfa {
            arcs: vec![vec![(ByteSet::FULL, 0)]],
            start: 0,
            accepting: vec![true],
        }
    }

    /// Determinizes an NFA by subset construction.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let mut start_set = vec![nfa.start()];
        nfa.eps_closure(&mut start_set);

        let mut ids: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut arcs: Vec<Vec<(ByteSet, StateId)>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut worklist: Vec<(StateId, Vec<StateId>)> = Vec::new();

        let mut intern = |set: Vec<StateId>,
                          arcs: &mut Vec<Vec<(ByteSet, StateId)>>,
                          accepting: &mut Vec<bool>,
                          worklist: &mut Vec<(StateId, Vec<StateId>)>|
         -> StateId {
            if let Some(&id) = ids.get(&set) {
                return id;
            }
            let id = arcs.len() as StateId;
            arcs.push(Vec::new());
            accepting.push(set.iter().any(|&s| nfa.is_accepting(s)));
            ids.insert(set.clone(), id);
            worklist.push((id, set));
            id
        };

        let start = intern(start_set, &mut arcs, &mut accepting, &mut worklist);
        debug_assert_eq!(start, 0);

        while let Some((id, set)) = worklist.pop() {
            // Partition the alphabet so the successor set is constant per block.
            let labels: Vec<ByteSet> = set
                .iter()
                .flat_map(|&s| nfa.arcs(s).iter().map(|a| a.label))
                .collect();
            let blocks = refine_partition(&labels);
            let mut out = Vec::with_capacity(blocks.len());
            for block in blocks {
                let probe = block.first_byte().expect("partition blocks are nonempty");
                let mut succ: Vec<StateId> = Vec::new();
                for &s in &set {
                    for a in nfa.arcs(s) {
                        if a.label.contains(probe) {
                            succ.push(a.target);
                        }
                    }
                }
                succ.sort_unstable();
                succ.dedup();
                nfa.eps_closure(&mut succ);
                let t = intern(succ, &mut arcs, &mut accepting, &mut worklist);
                out.push((block, t));
            }
            merge_parallel(&mut out);
            arcs[id as usize] = out;
        }

        Dfa { arcs, start, accepting }
    }

    /// Returns the number of states.
    pub fn num_states(&self) -> usize {
        self.arcs.len()
    }

    /// Returns the start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns `true` if `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// Returns the outgoing transitions of `s`. The labels partition the
    /// alphabet.
    pub fn arcs(&self, s: StateId) -> &[(ByteSet, StateId)] {
        &self.arcs[s as usize]
    }

    /// Returns the successor of `s` on byte `b`.
    pub fn step(&self, s: StateId, b: u8) -> StateId {
        for (set, t) in &self.arcs[s as usize] {
            if set.contains(b) {
                return *t;
            }
        }
        unreachable!("complete DFA must have a transition for every byte")
    }

    /// Tests membership of `input` in the language.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut s = self.start;
        for &b in input {
            s = self.step(s, b);
        }
        self.is_accepting(s)
    }

    /// Returns a DFA for the complement language.
    #[must_use]
    pub fn complement(&self) -> Dfa {
        let mut d = self.clone();
        for a in d.accepting.iter_mut() {
            *a = !*a;
        }
        d
    }

    /// Returns a DFA for the intersection of the two languages
    /// (lazy product construction).
    #[must_use]
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Returns a DFA for the union of the two languages.
    #[must_use]
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Returns a DFA for the difference `L(self) \ L(other)`.
    #[must_use]
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut arcs: Vec<Vec<(ByteSet, StateId)>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut worklist: Vec<(StateId, (StateId, StateId))> = Vec::new();

        let mut intern = |pair: (StateId, StateId),
                          arcs: &mut Vec<Vec<(ByteSet, StateId)>>,
                          accepting: &mut Vec<bool>,
                          worklist: &mut Vec<(StateId, (StateId, StateId))>|
         -> StateId {
            if let Some(&id) = ids.get(&pair) {
                return id;
            }
            let id = arcs.len() as StateId;
            arcs.push(Vec::new());
            accepting.push(combine(
                self.is_accepting(pair.0),
                other.is_accepting(pair.1),
            ));
            ids.insert(pair, id);
            worklist.push((id, pair));
            id
        };

        let start = intern(
            (self.start, other.start),
            &mut arcs,
            &mut accepting,
            &mut worklist,
        );

        while let Some((id, (p, q))) = worklist.pop() {
            let mut out = Vec::new();
            for (la, ta) in self.arcs(p) {
                for (lb, tb) in other.arcs(q) {
                    let both = la.intersect(lb);
                    if !both.is_empty() {
                        let t = intern((*ta, *tb), &mut arcs, &mut accepting, &mut worklist);
                        out.push((both, t));
                    }
                }
            }
            merge_parallel(&mut out);
            arcs[id as usize] = out;
        }

        Dfa { arcs, start, accepting }
    }

    /// Returns `true` if the language is empty.
    pub fn is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// Returns `true` if the DFA accepts every string.
    pub fn is_universal(&self) -> bool {
        self.complement().is_empty()
    }

    /// Returns a shortest accepted string, if the language is nonempty
    /// (breadth-first search).
    pub fn shortest_accepted(&self) -> Option<Vec<u8>> {
        use std::collections::VecDeque;
        let n = self.num_states();
        let mut pred: Vec<Option<(StateId, u8)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        queue.push_back(self.start);
        seen[self.start as usize] = true;
        let mut hit = if self.is_accepting(self.start) {
            Some(self.start)
        } else {
            None
        };
        while hit.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for (set, t) in self.arcs(s) {
                if !seen[*t as usize] {
                    seen[*t as usize] = true;
                    pred[*t as usize] =
                        Some((s, set.first_byte().expect("transition sets are nonempty")));
                    if self.is_accepting(*t) {
                        hit = Some(*t);
                        break;
                    }
                    queue.push_back(*t);
                }
            }
        }
        let mut cur = hit?;
        let mut bytes = Vec::new();
        while let Some((p, b)) = pred[cur as usize] {
            bytes.push(b);
            cur = p;
        }
        bytes.reverse();
        Some(bytes)
    }

    /// Returns the minimal DFA for the same language (Moore partition
    /// refinement over a per-byte transition table).
    #[must_use]
    pub fn minimize(&self) -> Dfa {
        let trimmed = self.trim_reachable();
        let n = trimmed.num_states();
        // block id per state; start with accept/reject split.
        let mut block: Vec<u32> = trimmed
            .accepting
            .iter()
            .map(|&a| if a { 1 } else { 0 })
            .collect();
        let mut num_blocks = 2;
        loop {
            // Signature: (block, successor block per alphabet block of this state)
            let mut sig_ids: HashMap<(u32, Vec<(ByteSet, u32)>), u32> = HashMap::new();
            let mut next_block = vec![0u32; n];
            for s in 0..n {
                let mut succ: Vec<(ByteSet, u32)> = trimmed.arcs[s]
                    .iter()
                    .map(|(set, t)| (*set, block[*t as usize]))
                    .collect();
                // Canonicalize: merge blocks mapping to the same target block,
                // then sort.
                let mut by_target: HashMap<u32, ByteSet> = HashMap::new();
                for (set, b) in succ.drain(..) {
                    by_target
                        .entry(b)
                        .and_modify(|acc| *acc = acc.union(&set))
                        .or_insert(set);
                }
                let mut canon: Vec<(ByteSet, u32)> =
                    by_target.into_iter().map(|(b, s)| (s, b)).collect();
                canon.sort();
                let key = (block[s], canon);
                let next_id = sig_ids.len() as u32;
                let id = *sig_ids.entry(key).or_insert(next_id);
                next_block[s] = id;
            }
            let new_num = sig_ids.len() as u32;
            if new_num == num_blocks {
                block = next_block;
                break;
            }
            num_blocks = new_num;
            block = next_block;
        }

        let num_blocks = num_blocks as usize;
        let mut arcs: Vec<Vec<(ByteSet, StateId)>> = vec![Vec::new(); num_blocks];
        let mut accepting = vec![false; num_blocks];
        let mut done = vec![false; num_blocks];
        for s in 0..n {
            let b = block[s] as usize;
            accepting[b] = trimmed.accepting[s];
            if !done[b] {
                done[b] = true;
                let mut out: Vec<(ByteSet, StateId)> = trimmed.arcs[s]
                    .iter()
                    .map(|(set, t)| (*set, block[*t as usize]))
                    .collect();
                merge_parallel(&mut out);
                arcs[b] = out;
            }
        }
        Dfa {
            start: block[trimmed.start as usize],
            arcs,
            accepting,
        }
    }

    /// Drops states unreachable from the start state.
    fn trim_reachable(&self) -> Dfa {
        let n = self.num_states();
        let mut map: Vec<Option<StateId>> = vec![None; n];
        let mut order: Vec<StateId> = Vec::new();
        let mut stack = vec![self.start];
        map[self.start as usize] = Some(0);
        order.push(self.start);
        while let Some(s) = stack.pop() {
            for (_, t) in self.arcs(s) {
                if map[*t as usize].is_none() {
                    map[*t as usize] = Some(order.len() as StateId);
                    order.push(*t);
                    stack.push(*t);
                }
            }
        }
        let arcs = order
            .iter()
            .map(|&s| {
                self.arcs(s)
                    .iter()
                    .map(|(set, t)| (*set, map[*t as usize].expect("reachable")))
                    .collect()
            })
            .collect();
        let accepting = order.iter().map(|&s| self.accepting[s as usize]).collect();
        Dfa { arcs, start: 0, accepting }
    }

    /// Returns `true` if the two DFAs accept the same language.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty() && other.difference(self).is_empty()
    }

    /// Returns `true` if `L(self) ⊆ L(other)`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty()
    }
}

/// Merges transitions of `out` that share a target, keeping the list sorted.
fn merge_parallel(out: &mut Vec<(ByteSet, StateId)>) {
    let mut by_target: HashMap<StateId, ByteSet> = HashMap::new();
    for (set, t) in out.drain(..) {
        by_target
            .entry(t)
            .and_modify(|acc| *acc = acc.union(&set))
            .or_insert(set);
    }
    let mut merged: Vec<(ByteSet, StateId)> =
        by_target.into_iter().map(|(t, s)| (s, t)).collect();
    merged.sort();
    *out = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &[u8]) -> Dfa {
        Dfa::from_nfa(&Nfa::literal(s))
    }

    #[test]
    fn determinize_literal() {
        let d = lit(b"abc");
        assert!(d.accepts(b"abc"));
        assert!(!d.accepts(b"ab"));
        assert!(!d.accepts(b"abcd"));
    }

    #[test]
    fn dfa_is_complete() {
        let d = lit(b"a");
        for s in 0..d.num_states() as StateId {
            let mut cover = ByteSet::EMPTY;
            for (set, _) in d.arcs(s) {
                assert!(!cover.intersects(set), "overlapping transition labels");
                cover = cover.union(set);
            }
            assert!(cover.is_full(), "incomplete state {s}");
        }
    }

    #[test]
    fn complement_flips_membership() {
        let d = lit(b"x");
        let c = d.complement();
        assert!(!c.accepts(b"x"));
        assert!(c.accepts(b""));
        assert!(c.accepts(b"xx"));
    }

    #[test]
    fn intersection_and_union() {
        let a = Dfa::from_nfa(&Nfa::literal(b"a").star());
        let contains_aa = Dfa::from_nfa(
            &Nfa::any_string()
                .concat(&Nfa::literal(b"aa"))
                .concat(&Nfa::any_string()),
        );
        let both = a.intersect(&contains_aa);
        assert!(both.accepts(b"aa"));
        assert!(both.accepts(b"aaa"));
        assert!(!both.accepts(b"a"));
        assert!(!both.accepts(b"aab"));

        let u = lit(b"p").union(&lit(b"q"));
        assert!(u.accepts(b"p") && u.accepts(b"q") && !u.accepts(b"pq"));
    }

    #[test]
    fn emptiness_and_shortest() {
        assert!(Dfa::empty().is_empty());
        assert_eq!(Dfa::any_string().shortest_accepted(), Some(vec![]));
        let d = lit(b"hi");
        assert_eq!(d.shortest_accepted(), Some(b"hi".to_vec()));
        let never = d.intersect(&d.complement());
        assert!(never.is_empty());
    }

    #[test]
    fn universality() {
        assert!(Dfa::any_string().is_universal());
        assert!(!lit(b"x").is_universal());
        let x_or_not = lit(b"x").union(&lit(b"x").complement());
        assert!(x_or_not.is_universal());
    }

    #[test]
    fn minimize_preserves_language_and_shrinks() {
        // (a|b)* built redundantly.
        let n = Nfa::literal(b"a").union(&Nfa::literal(b"b")).star();
        let d = Dfa::from_nfa(&n);
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        assert!(m.equivalent(&d));
        // Minimal DFA for (a|b)* over the full byte alphabet: accepting
        // loop state plus one sink.
        assert_eq!(m.num_states(), 2);
        assert!(m.accepts(b"abab"));
        assert!(!m.accepts(b"abc"));
    }

    #[test]
    fn minimize_distinct_when_needed() {
        let d = lit(b"ab");
        let m = d.minimize();
        assert!(m.equivalent(&d));
        // states: start, after-a, accept, sink
        assert_eq!(m.num_states(), 4);
    }

    #[test]
    fn subset_relation() {
        let a = lit(b"a");
        let a_or_b = lit(b"a").union(&lit(b"b"));
        assert!(a.is_subset_of(&a_or_b));
        assert!(!a_or_b.is_subset_of(&a));
    }

    #[test]
    fn minimize_handles_unreachable_states() {
        // Build DFA with an unreachable accepting state by product quirks:
        // just clone and add manually.
        let mut d = lit(b"a");
        d.arcs.push(vec![(ByteSet::FULL, 0)]);
        d.accepting.push(true);
        let m = d.minimize();
        assert!(m.equivalent(&lit(b"a")));
    }
}
