//! Byte-equivalence-class compression of a [`Dfa`].
//!
//! Two bytes are *equivalent* for a DFA when no state distinguishes
//! them: every transition label either contains both or neither. The
//! policy-check automata (quote parity, attack fragments, lexeme
//! shapes) distinguish only a handful of bytes, so the 256-byte
//! alphabet collapses to a few classes — typically 3–8 — and a step
//! table indexed per class fits in cache where a per-byte table (or the
//! arc-list scan [`Dfa::step`] performs) does not.
//!
//! [`ClassDfa`] precomputes the class partition once per DFA via
//! [`refine_partition`] and stores a dense `states × classes` table, so
//! stepping is two array loads. The CFG∩FSA engine
//! (`strtaint_grammar::prepared`) builds its per-terminal step tables
//! per *class* instead of per raw byte, which both shrinks the tables
//! and deduplicates work across terminals sharing a class.
//!
//! **Soundness**: [`refine_partition`] guarantees every transition
//! label of every state is a union of blocks, so for any two bytes in
//! the same block the successor is identical from *every* state;
//! stepping by class is therefore exact, not an approximation (a test
//! below checks `step_byte` against [`Dfa::step`] exhaustively).

use crate::byteset::{refine_partition, ByteSet};
use crate::dfa::Dfa;
use crate::nfa::StateId;

/// A [`Dfa`] re-indexed by byte equivalence classes.
///
/// # Examples
///
/// ```
/// use strtaint_automata::{ClassDfa, Dfa, Nfa};
///
/// let d = Dfa::from_nfa(&Nfa::literal(b"ok"));
/// let c = ClassDfa::new(&d);
/// // "o", "k", and everything-else: the alphabet collapses hard.
/// assert!(c.num_classes() <= 3);
/// assert!(c.accepts(b"ok"));
/// assert!(!c.accepts(b"no"));
/// ```
#[derive(Debug, Clone)]
pub struct ClassDfa {
    /// Class id per byte.
    class_of: Vec<u16>,
    num_classes: u16,
    /// Dense step table: `table[state * num_classes + class]`.
    table: Vec<StateId>,
    start: StateId,
    accepting: Vec<bool>,
}

impl ClassDfa {
    /// Compresses `dfa` by its byte equivalence classes.
    pub fn new(dfa: &Dfa) -> Self {
        let mut labels: Vec<ByteSet> = Vec::new();
        for s in 0..dfa.num_states() as StateId {
            for (set, _) in dfa.arcs(s) {
                labels.push(*set);
            }
        }
        labels.sort_unstable();
        labels.dedup();
        let blocks = refine_partition(&labels);

        let mut class_of = vec![0u16; 256];
        let mut reps = Vec::with_capacity(blocks.len());
        for (c, block) in blocks.iter().enumerate() {
            for b in block.iter() {
                class_of[b as usize] = c as u16;
            }
            reps.push(block.first_byte().expect("partition blocks are nonempty"));
        }

        let num_classes = blocks.len() as u16;
        let n = dfa.num_states();
        let mut table = Vec::with_capacity(n * blocks.len());
        for s in 0..n as StateId {
            for &rep in &reps {
                table.push(dfa.step(s, rep));
            }
        }

        ClassDfa {
            class_of,
            num_classes,
            table,
            start: dfa.start(),
            accepting: (0..n as StateId).map(|s| dfa.is_accepting(s)).collect(),
        }
    }

    /// Returns the number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Returns the number of byte equivalence classes (1..=256).
    pub fn num_classes(&self) -> u16 {
        self.num_classes
    }

    /// Returns the start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns `true` if `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// Returns the equivalence class of byte `b`.
    pub fn class_of(&self, b: u8) -> u16 {
        self.class_of[b as usize]
    }

    /// Returns the successor of `s` on any byte of class `c`.
    pub fn step_class(&self, s: StateId, c: u16) -> StateId {
        self.table[s as usize * self.num_classes as usize + c as usize]
    }

    /// Returns the successor of `s` on byte `b` (two array loads).
    pub fn step_byte(&self, s: StateId, b: u8) -> StateId {
        self.step_class(s, self.class_of[b as usize])
    }

    /// Tests membership of `input` in the language.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut s = self.start;
        for &b in input {
            s = self.step_byte(s, b);
        }
        self.is_accepting(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;

    fn check_agrees(dfa: &Dfa) {
        let c = ClassDfa::new(dfa);
        assert_eq!(c.num_states(), dfa.num_states());
        assert_eq!(c.start(), dfa.start());
        for s in 0..dfa.num_states() as StateId {
            assert_eq!(c.is_accepting(s), dfa.is_accepting(s));
            for b in 0..=255u8 {
                assert_eq!(c.step_byte(s, b), dfa.step(s, b), "state {s} byte {b}");
            }
        }
    }

    #[test]
    fn step_agrees_with_dfa_exhaustively() {
        for pattern in [
            "^a.*$",
            "^[0-9]+$",
            "^[^']*('[^']*'[^']*)*'[^']*$",
            "^(select|union)$",
            ".*--.*",
        ] {
            let d = Regex::new(pattern).expect("static pattern").match_dfa();
            check_agrees(&d);
            check_agrees(&d.complement());
            check_agrees(&d.minimize());
        }
    }

    #[test]
    fn degenerate_automata() {
        check_agrees(&Dfa::empty());
        check_agrees(&Dfa::any_string());
        let c = ClassDfa::new(&Dfa::any_string());
        assert_eq!(c.num_classes(), 1);
        assert!(c.accepts(b"") && c.accepts(b"anything"));
    }

    #[test]
    fn classes_are_few_for_check_automata() {
        // The quote-parity shape distinguishes quote, backslash, rest.
        let d = Regex::new(r"^([^'\\]|\\.)*$").expect("static pattern").match_dfa();
        let c = ClassDfa::new(&d);
        assert!(c.num_classes() <= 4, "got {} classes", c.num_classes());
    }

    #[test]
    fn accepts_matches_dfa_on_samples() {
        let d = Dfa::from_nfa(
            &Nfa::any_string()
                .concat(&Nfa::literal(b"--"))
                .concat(&Nfa::any_string()),
        );
        let c = ClassDfa::new(&d);
        for s in [&b""[..], b"-", b"--", b"a--b", b"- -", b"xy"] {
            assert_eq!(c.accepts(s), d.accepts(s), "{s:?}");
        }
    }
}
