//! Nondeterministic finite automata over the byte alphabet.
//!
//! [`Nfa`] supports Thompson-style construction (concatenation, union,
//! Kleene star, …) and is the target of regex compilation. Determinize
//! with [`crate::Dfa::from_nfa`] for boolean language operations.

use crate::byteset::ByteSet;

/// Identifier of an NFA state (index into the state table).
pub type StateId = u32;

/// A labeled transition of an [`Nfa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NfaArc {
    /// The set of bytes on which this transition may be taken.
    pub label: ByteSet,
    /// The destination state.
    pub target: StateId,
}

/// A nondeterministic finite automaton with epsilon transitions.
///
/// # Examples
///
/// ```
/// use strtaint_automata::Nfa;
///
/// let n = Nfa::literal(b"abc");
/// assert!(n.accepts(b"abc"));
/// assert!(!n.accepts(b"ab"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    arcs: Vec<Vec<NfaArc>>,
    eps: Vec<Vec<StateId>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl Nfa {
    /// Creates an NFA accepting the empty language.
    pub fn empty() -> Self {
        let mut n = Nfa::default();
        let s = n.add_state();
        n.start = s;
        n
    }

    /// Creates an NFA accepting exactly the empty string.
    pub fn epsilon() -> Self {
        let mut n = Nfa::default();
        let s = n.add_state();
        n.start = s;
        n.set_accepting(s, true);
        n
    }

    /// Creates an NFA accepting exactly the given byte string.
    pub fn literal(s: &[u8]) -> Self {
        let mut n = Nfa::default();
        let start = n.add_state();
        n.start = start;
        let mut cur = start;
        for &b in s {
            let next = n.add_state();
            n.add_arc(cur, ByteSet::singleton(b), next);
            cur = next;
        }
        n.set_accepting(cur, true);
        n
    }

    /// Creates an NFA accepting any single byte from `set`.
    pub fn class(set: ByteSet) -> Self {
        let mut n = Nfa::default();
        let s = n.add_state();
        let t = n.add_state();
        n.start = s;
        n.add_arc(s, set, t);
        n.set_accepting(t, true);
        n
    }

    /// Creates an NFA accepting all byte strings (`Σ*`).
    pub fn any_string() -> Self {
        let mut n = Nfa::default();
        let s = n.add_state();
        n.start = s;
        n.add_arc(s, ByteSet::FULL, s);
        n.set_accepting(s, true);
        n
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = self.arcs.len() as StateId;
        self.arcs.push(Vec::new());
        self.eps.push(Vec::new());
        self.accepting.push(false);
        id
    }

    /// Adds a labeled transition.
    pub fn add_arc(&mut self, from: StateId, label: ByteSet, to: StateId) {
        if !label.is_empty() {
            self.arcs[from as usize].push(NfaArc { label, target: to });
        }
    }

    /// Adds an epsilon transition.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        self.eps[from as usize].push(to);
    }

    /// Marks or unmarks a state as accepting.
    pub fn set_accepting(&mut self, s: StateId, acc: bool) {
        self.accepting[s as usize] = acc;
    }

    /// Returns the start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        self.start = s;
    }

    /// Returns the number of states.
    pub fn num_states(&self) -> usize {
        self.arcs.len()
    }

    /// Returns `true` if `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// Returns the labeled transitions out of `s`.
    pub fn arcs(&self, s: StateId) -> &[NfaArc] {
        &self.arcs[s as usize]
    }

    /// Returns the epsilon transitions out of `s`.
    pub fn eps(&self, s: StateId) -> &[StateId] {
        &self.eps[s as usize]
    }

    /// Copies all states of `other` into `self`, returning the offset added
    /// to `other`'s state ids. `other`'s start/accepting markers are *not*
    /// imported; the caller wires them up.
    fn import(&mut self, other: &Nfa) -> StateId {
        let off = self.arcs.len() as StateId;
        for s in 0..other.num_states() {
            let id = self.add_state();
            debug_assert_eq!(id, off + s as StateId);
        }
        for s in 0..other.num_states() as StateId {
            for a in other.arcs(s) {
                self.add_arc(off + s, a.label, off + a.target);
            }
            for &t in other.eps(s) {
                self.add_eps(off + s, off + t);
            }
        }
        off
    }

    /// Returns an NFA accepting `L(self) · L(other)`.
    #[must_use]
    pub fn concat(&self, other: &Nfa) -> Nfa {
        let mut n = self.clone();
        let off = n.import(other);
        for s in 0..self.num_states() as StateId {
            if self.is_accepting(s) {
                n.set_accepting(s, false);
                n.add_eps(s, off + other.start);
            }
        }
        for s in 0..other.num_states() as StateId {
            if other.is_accepting(s) {
                n.set_accepting(off + s, true);
            }
        }
        n
    }

    /// Returns an NFA accepting `L(self) ∪ L(other)`.
    #[must_use]
    pub fn union(&self, other: &Nfa) -> Nfa {
        let mut n = Nfa::default();
        let start = n.add_state();
        n.start = start;
        let off_a = n.import(self);
        let off_b = n.import(other);
        n.add_eps(start, off_a + self.start);
        n.add_eps(start, off_b + other.start);
        for s in 0..self.num_states() as StateId {
            if self.is_accepting(s) {
                n.set_accepting(off_a + s, true);
            }
        }
        for s in 0..other.num_states() as StateId {
            if other.is_accepting(s) {
                n.set_accepting(off_b + s, true);
            }
        }
        n
    }

    /// Returns an NFA accepting `L(self)*`.
    #[must_use]
    pub fn star(&self) -> Nfa {
        let mut n = Nfa::default();
        let start = n.add_state();
        n.start = start;
        n.set_accepting(start, true);
        let off = n.import(self);
        n.add_eps(start, off + self.start);
        for s in 0..self.num_states() as StateId {
            if self.is_accepting(s) {
                n.set_accepting(off + s, true);
                n.add_eps(off + s, start);
            }
        }
        n
    }

    /// Returns an NFA accepting `L(self)+` (one or more repetitions).
    #[must_use]
    pub fn plus(&self) -> Nfa {
        self.concat(&self.star())
    }

    /// Returns an NFA accepting `L(self) ∪ {ε}`.
    #[must_use]
    pub fn opt(&self) -> Nfa {
        self.union(&Nfa::epsilon())
    }

    /// Computes the epsilon closure of a set of states (in place).
    pub fn eps_closure(&self, states: &mut Vec<StateId>) {
        let mut seen = vec![false; self.num_states()];
        for &s in states.iter() {
            seen[s as usize] = true;
        }
        let mut stack: Vec<StateId> = states.clone();
        while let Some(s) = stack.pop() {
            for &t in self.eps(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    states.push(t);
                    stack.push(t);
                }
            }
        }
        states.sort_unstable();
        states.dedup();
    }

    /// Tests membership of `input` in the language by direct simulation.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut cur = vec![self.start];
        self.eps_closure(&mut cur);
        for &b in input {
            let mut next = Vec::new();
            for &s in &cur {
                for a in self.arcs(s) {
                    if a.label.contains(b) {
                        next.push(a.target);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                return false;
            }
            self.eps_closure(&mut next);
            cur = next;
        }
        cur.iter().any(|&s| self.is_accepting(s))
    }

    /// Returns `true` if the language is empty.
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = stack.pop() {
            if self.is_accepting(s) {
                return false;
            }
            for a in self.arcs(s) {
                if !seen[a.target as usize] {
                    seen[a.target as usize] = true;
                    stack.push(a.target);
                }
            }
            for &t in self.eps(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_accepts_itself_only() {
        let n = Nfa::literal(b"select");
        assert!(n.accepts(b"select"));
        assert!(!n.accepts(b"selec"));
        assert!(!n.accepts(b"selects"));
        assert!(!n.accepts(b""));
    }

    #[test]
    fn epsilon_accepts_empty() {
        let n = Nfa::epsilon();
        assert!(n.accepts(b""));
        assert!(!n.accepts(b"x"));
    }

    #[test]
    fn empty_language() {
        let n = Nfa::empty();
        assert!(n.is_empty());
        assert!(!n.accepts(b""));
    }

    #[test]
    fn class_single_byte() {
        let n = Nfa::class(ByteSet::range(b'0', b'9'));
        assert!(n.accepts(b"7"));
        assert!(!n.accepts(b"77"));
        assert!(!n.accepts(b"a"));
    }

    #[test]
    fn concat_union_star() {
        let ab = Nfa::literal(b"a").concat(&Nfa::literal(b"b"));
        assert!(ab.accepts(b"ab"));
        assert!(!ab.accepts(b"a"));

        let a_or_b = Nfa::literal(b"a").union(&Nfa::literal(b"b"));
        assert!(a_or_b.accepts(b"a") && a_or_b.accepts(b"b"));
        assert!(!a_or_b.accepts(b"ab"));

        let astar = Nfa::literal(b"a").star();
        assert!(astar.accepts(b""));
        assert!(astar.accepts(b"aaaa"));
        assert!(!astar.accepts(b"ab"));
    }

    #[test]
    fn plus_requires_one() {
        let p = Nfa::literal(b"x").plus();
        assert!(!p.accepts(b""));
        assert!(p.accepts(b"x"));
        assert!(p.accepts(b"xxx"));
    }

    #[test]
    fn opt_allows_empty() {
        let o = Nfa::literal(b"x").opt();
        assert!(o.accepts(b""));
        assert!(o.accepts(b"x"));
        assert!(!o.accepts(b"xx"));
    }

    #[test]
    fn any_string_accepts_everything() {
        let n = Nfa::any_string();
        assert!(n.accepts(b""));
        assert!(n.accepts(b"anything at all \x00\xff"));
    }

    #[test]
    fn emptiness_sees_through_epsilon() {
        let mut n = Nfa::default();
        let a = n.add_state();
        let b = n.add_state();
        n.set_start(a);
        n.add_eps(a, b);
        assert!(n.is_empty());
        n.set_accepting(b, true);
        assert!(!n.is_empty());
    }
}
