//! Sets of bytes represented as 256-bit bitmaps.
//!
//! All automata in this crate operate over the byte alphabet `0..=255`
//! (PHP strings are byte strings). Transitions are labeled with a
//! [`ByteSet`] rather than a single byte so that automata stay compact.

use std::fmt;

/// A set of bytes, stored as a 256-bit bitmap (four `u64` words).
///
/// `ByteSet` is `Copy` and all operations are branch-light word-wise
/// bit manipulation, making it cheap to use as a transition label.
///
/// # Examples
///
/// ```
/// use strtaint_automata::ByteSet;
///
/// let digits = ByteSet::range(b'0', b'9');
/// assert!(digits.contains(b'5'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteSet {
    words: [u64; 4],
}

impl ByteSet {
    /// The empty set.
    pub const EMPTY: ByteSet = ByteSet { words: [0; 4] };

    /// The full set containing every byte.
    pub const FULL: ByteSet = ByteSet { words: [u64::MAX; 4] };

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set containing exactly one byte.
    pub fn singleton(b: u8) -> Self {
        let mut s = Self::EMPTY;
        s.insert(b);
        s
    }

    /// Creates a set containing the inclusive range `lo..=hi`.
    ///
    /// Returns the empty set if `lo > hi`.
    pub fn range(lo: u8, hi: u8) -> Self {
        let mut s = Self::EMPTY;
        if lo <= hi {
            for b in lo..=hi {
                s.insert(b);
            }
        }
        s
    }

    /// Creates a set from an iterator of bytes.
    pub fn from_bytes<I: IntoIterator<Item = u8>>(bytes: I) -> Self {
        let mut s = Self::EMPTY;
        for b in bytes {
            s.insert(b);
        }
        s
    }

    /// Inserts a byte into the set.
    pub fn insert(&mut self, b: u8) {
        self.words[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    /// Removes a byte from the set.
    pub fn remove(&mut self, b: u8) {
        self.words[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    /// Returns `true` if the set contains `b`.
    pub fn contains(&self, b: u8) -> bool {
        self.words[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words == [0; 4]
    }

    /// Returns `true` if the set contains every byte.
    pub fn is_full(&self) -> bool {
        self.words == [u64::MAX; 4]
    }

    /// Returns the number of bytes in the set.
    pub fn len(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Returns the union of two sets.
    #[must_use]
    pub fn union(&self, other: &ByteSet) -> ByteSet {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
        ByteSet { words: w }
    }

    /// Returns the intersection of two sets.
    #[must_use]
    pub fn intersect(&self, other: &ByteSet) -> ByteSet {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
        ByteSet { words: w }
    }

    /// Returns the set difference `self \ other`.
    #[must_use]
    pub fn minus(&self, other: &ByteSet) -> ByteSet {
        let mut w = self.words;
        for (a, b) in w.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
        }
        ByteSet { words: w }
    }

    /// Returns the complement of the set with respect to the full byte alphabet.
    #[must_use]
    pub fn complement(&self) -> ByteSet {
        let mut w = self.words;
        for a in w.iter_mut() {
            *a = !*a;
        }
        ByteSet { words: w }
    }

    /// Returns `true` if the two sets share at least one byte.
    pub fn intersects(&self, other: &ByteSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if `self` is a subset of `other`.
    pub fn is_subset(&self, other: &ByteSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns the smallest byte in the set, if any. (Named to avoid clashing with `Ord::min`.)
    pub fn first_byte(&self) -> Option<u8> {
        for (i, w) in self.words.iter().enumerate() {
            if *w != 0 {
                return Some((i as u8) * 64 + w.trailing_zeros() as u8);
            }
        }
        None
    }

    /// Returns an iterator over the bytes in the set, in increasing order.
    pub fn iter(&self) -> Iter {
        Iter { set: *self, next: 0, done: false }
    }

    /// Returns the set of maximal inclusive ranges covering the set.
    ///
    /// Useful for display and for building compact transition tables.
    pub fn ranges(&self) -> Vec<(u8, u8)> {
        let mut out = Vec::new();
        let mut cur: Option<(u8, u8)> = None;
        for b in self.iter() {
            match cur {
                Some((lo, hi)) if hi as u16 + 1 == b as u16 => cur = Some((lo, b)),
                Some(r) => {
                    out.push(r);
                    cur = Some((b, b));
                }
                None => cur = Some((b, b)),
            }
        }
        if let Some(r) = cur {
            out.push(r);
        }
        out
    }

    /// Folds ASCII case: for any letter in the set, inserts the letter of
    /// the opposite case. Used by case-insensitive regex compilation.
    #[must_use]
    pub fn ascii_case_fold(&self) -> ByteSet {
        let mut s = *self;
        for b in self.iter() {
            if b.is_ascii_lowercase() {
                s.insert(b.to_ascii_uppercase());
            } else if b.is_ascii_uppercase() {
                s.insert(b.to_ascii_lowercase());
            }
        }
        s
    }
}

/// Iterator over the bytes of a [`ByteSet`], produced by [`ByteSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter {
    set: ByteSet,
    next: u16,
    done: bool,
}

impl Iterator for Iter {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        if self.done {
            return None;
        }
        while self.next <= 255 {
            let b = self.next as u8;
            self.next += 1;
            if self.set.contains(b) {
                return Some(b);
            }
        }
        self.done = true;
        None
    }
}

impl FromIterator<u8> for ByteSet {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from_bytes(iter)
    }
}

impl Extend<u8> for ByteSet {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.insert(b);
        }
    }
}

impl fmt::Debug for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSet{{{}}}", self)
    }
}

impl fmt::Display for ByteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full() {
            return write!(f, "ANY");
        }
        let ranges = self.ranges();
        let mut first = true;
        for (lo, hi) in ranges {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            let show = |b: u8| -> String {
                if (0x21..=0x7e).contains(&b) {
                    format!("{}", b as char)
                } else {
                    format!("\\x{:02x}", b)
                }
            };
            if lo == hi {
                write!(f, "{}", show(lo))?;
            } else {
                write!(f, "{}-{}", show(lo), show(hi))?;
            }
        }
        Ok(())
    }
}

/// Refines a collection of (possibly overlapping) byte sets into a partition
/// of the full alphabet such that every input set is a union of blocks.
///
/// The returned blocks are pairwise disjoint, nonempty, and cover `0..=255`.
/// This is the workhorse for determinization: on each block the transition
/// function of a subset-construction state is constant.
pub fn refine_partition(sets: &[ByteSet]) -> Vec<ByteSet> {
    let mut blocks = vec![ByteSet::FULL];
    for s in sets {
        if s.is_empty() || s.is_full() {
            continue;
        }
        let mut next = Vec::with_capacity(blocks.len() + 1);
        for b in &blocks {
            let inside = b.intersect(s);
            let outside = b.minus(s);
            if inside.is_empty() || outside.is_empty() {
                next.push(*b);
            } else {
                next.push(inside);
                next.push(outside);
            }
        }
        blocks = next;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_contains() {
        let s = ByteSet::singleton(b'a');
        assert!(s.contains(b'a'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn range_endpoints() {
        let s = ByteSet::range(b'0', b'9');
        assert!(s.contains(b'0'));
        assert!(s.contains(b'9'));
        assert!(!s.contains(b'0' - 1));
        assert!(!s.contains(b'9' + 1));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn empty_range_when_reversed() {
        assert!(ByteSet::range(b'9', b'0').is_empty());
    }

    #[test]
    fn full_complement_is_empty() {
        assert!(ByteSet::FULL.complement().is_empty());
        assert!(ByteSet::EMPTY.complement().is_full());
    }

    #[test]
    fn union_intersect_minus() {
        let a = ByteSet::range(b'a', b'm');
        let b = ByteSet::range(b'h', b'z');
        let u = a.union(&b);
        let i = a.intersect(&b);
        let d = a.minus(&b);
        assert_eq!(u.len(), 26);
        assert_eq!(i.len(), 6); // h..=m
        assert_eq!(d.len(), 7); // a..=g
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_in_order() {
        let s = ByteSet::from_bytes([b'z', b'a', b'm']);
        let v: Vec<u8> = s.iter().collect();
        assert_eq!(v, vec![b'a', b'm', b'z']);
    }

    #[test]
    fn ranges_merge_adjacent() {
        let s = ByteSet::from_bytes([1, 2, 3, 7, 9, 10]);
        assert_eq!(s.ranges(), vec![(1, 3), (7, 7), (9, 10)]);
    }

    #[test]
    fn full_set_iterates_256() {
        assert_eq!(ByteSet::FULL.iter().count(), 256);
        assert_eq!(ByteSet::FULL.len(), 256);
    }

    #[test]
    fn min_byte() {
        assert_eq!(ByteSet::EMPTY.first_byte(), None);
        assert_eq!(ByteSet::from_bytes([200, 5, 17]).first_byte(), Some(5));
        assert_eq!(ByteSet::singleton(255).first_byte(), Some(255));
    }

    #[test]
    fn case_folding() {
        let s = ByteSet::singleton(b'a').ascii_case_fold();
        assert!(s.contains(b'A') && s.contains(b'a'));
        let d = ByteSet::singleton(b'3').ascii_case_fold();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn partition_refinement_covers_alphabet() {
        let sets = vec![
            ByteSet::range(b'0', b'9'),
            ByteSet::range(b'5', b'f'),
            ByteSet::singleton(b'\''),
        ];
        let blocks = refine_partition(&sets);
        // Pairwise disjoint and covers everything.
        let mut seen = ByteSet::EMPTY;
        for b in &blocks {
            assert!(!b.is_empty());
            assert!(!seen.intersects(b));
            seen = seen.union(b);
        }
        assert!(seen.is_full());
        // Every input set is a union of blocks.
        for s in &sets {
            for b in &blocks {
                assert!(b.is_subset(s) || !b.intersects(s));
            }
        }
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", ByteSet::EMPTY).is_empty());
        assert_eq!(format!("{}", ByteSet::FULL), "ANY");
    }
}
