//! Finite automata and transducers over the byte alphabet.
//!
//! This crate is the regular-language substrate of **strtaint**, a
//! reproduction of *Sound and Precise Analysis of Web Applications for
//! Injection Vulnerabilities* (Wassermann & Su, PLDI 2007). The string
//! analysis of the paper needs:
//!
//! - [`Nfa`]/[`Dfa`]: finite automata with the full boolean algebra
//!   (product, complement, minimization) used both for refining string
//!   variables through regex conditionals and for the policy checks;
//! - [`Regex`]: a PCRE/POSIX-subset engine compiling the patterns found
//!   in PHP sanitization code to automata;
//! - [`fst::Fst`]: finite-state transducers modeling PHP string library
//!   functions (paper Fig. 6), whose images of context-free languages
//!   are computed in `strtaint-grammar`.
//!
//! # Examples
//!
//! ```
//! use strtaint_automata::{Dfa, Regex};
//!
//! // The sanitization check from the paper's Figure 2, as written
//! // (unanchored — the bug) and as intended (anchored):
//! let written = Regex::new("[0-9]+").unwrap().match_dfa();
//! let intended = Regex::new("^[0-9]+$").unwrap().match_dfa();
//! assert!(!written.is_subset_of(&intended));
//! assert!(written.accepts(b"1'; DROP TABLE unp_user; --"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod byteset;
pub mod classes;
pub mod dfa;
pub mod dot;
pub mod fst;
pub mod nfa;
pub mod regex;

pub use byteset::ByteSet;
pub use classes::ClassDfa;
pub use dfa::Dfa;
pub use fst::{Fst, OutSym};
pub use nfa::{Nfa, StateId};
pub use regex::{ParseRegexError, Regex};
