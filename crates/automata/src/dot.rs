//! Graphviz (DOT) rendering of automata and transducers, for debugging
//! and documentation (the paper's Figure 6 is exactly such a drawing).

use std::fmt::Write as _;

use crate::byteset::ByteSet;
use crate::dfa::Dfa;
use crate::fst::{Fst, OutSym};
use crate::nfa::Nfa;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn label_of(set: &ByteSet) -> String {
    escape(&set.to_string())
}

/// Renders a DFA as a DOT digraph.
pub fn dfa_to_dot(d: &Dfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> q{};", d.start());
    for q in 0..d.num_states() as u32 {
        let shape = if d.is_accepting(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{q} [shape={shape}];");
        for (set, t) in d.arcs(q) {
            let _ = writeln!(out, "  q{q} -> q{t} [label=\"{}\"];", label_of(set));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an NFA as a DOT digraph (epsilon edges dashed).
pub fn nfa_to_dot(n: &Nfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> q{};", n.start());
    for q in 0..n.num_states() as u32 {
        let shape = if n.is_accepting(q) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{q} [shape={shape}];");
        for a in n.arcs(q) {
            let _ = writeln!(
                out,
                "  q{q} -> q{} [label=\"{}\"];",
                a.target,
                label_of(&a.label)
            );
        }
        for &t in n.eps(q) {
            let _ = writeln!(out, "  q{q} -> q{t} [style=dashed, label=\"ε\"];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a transducer as a DOT digraph with `input/output` edge
/// labels, in the style of the paper's Figure 6.
pub fn fst_to_dot(f: &Fst, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> q{};", f.start());
    for q in 0..f.num_states() as u32 {
        let shape = if f.is_final(q) { "doublecircle" } else { "circle" };
        let flush = match f.final_output(q) {
            Some(fl) if !fl.is_empty() => {
                format!("\\n⊣/{}", escape(&String::from_utf8_lossy(fl)))
            }
            _ => String::new(),
        };
        let _ = writeln!(out, "  q{q} [shape={shape}, label=\"q{q}{flush}\"];");
        for arc in f.arcs(q) {
            let output: String = arc
                .output
                .iter()
                .map(|o| match o {
                    OutSym::Byte(b) if (0x20..=0x7e).contains(b) => (*b as char).to_string(),
                    OutSym::Byte(b) => format!("\\\\x{b:02x}"),
                    OutSym::Copy => "•".to_owned(),
                    OutSym::Lower => "lc(•)".to_owned(),
                    OutSym::Upper => "uc(•)".to_owned(),
                })
                .collect();
            let out_label = if output.is_empty() { "ε" } else { &output };
            let _ = writeln!(
                out,
                "  q{q} -> q{} [label=\"{}/{}\"];",
                arc.target,
                label_of(&arc.input),
                escape(out_label)
            );
        }
        for (tmpl, t) in f.eps_arcs(q) {
            let _ = writeln!(
                out,
                "  q{q} -> q{t} [style=dashed, label=\"ε/{} syms\"];",
                tmpl.len()
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fst::builders;
    use crate::Regex;

    #[test]
    fn dfa_dot_structure() {
        let d = Regex::new("^ab$").unwrap().match_dfa();
        let dot = dfa_to_dot(&d, "ab");
        assert!(dot.starts_with("digraph ab {"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.trim_end().ends_with('}'));
        // One node line per state.
        assert_eq!(
            dot.matches("[shape=circle]").count() + dot.matches("[shape=doublecircle]").count(),
            d.num_states()
        );
    }

    #[test]
    fn figure6_dot_shows_outputs() {
        let dot = fst_to_dot(&builders::figure6(), "figure6");
        assert!(dot.contains("/'"), "replacement output rendered: {dot}");
        assert!(dot.contains('•'), "copy symbol rendered");
        assert!(dot.contains("⊣/'"), "final flush rendered");
    }

    #[test]
    fn nfa_dot_renders_epsilons() {
        let n = crate::Nfa::literal(b"a").union(&crate::Nfa::literal(b"b"));
        let dot = nfa_to_dot(&n, "u");
        assert!(dot.contains("style=dashed"));
    }
}
