//! Property tests for the observability crate.
//!
//! Three contracts are pinned here:
//!
//! 1. **Histogram monotonicity** — the cumulative view is monotone
//!    non-decreasing with the +∞ bucket equal to the observation
//!    count, for arbitrary boundaries and observations.
//! 2. **Span nesting well-formedness** — executing an arbitrary span
//!    tree records one event per span with the tree's exact depth, and
//!    no two same-thread span intervals strictly interleave.
//! 3. **Chrome-trace parse fixpoint** — the trace writer's output
//!    parses under the daemon's dependency-free JSON parser
//!    (`strtaint_daemon::json`), and re-rendering the parsed value
//!    round-trips (the writer emits exactly the subset the daemon's
//!    writer is a fixpoint on), for arbitrary event payloads
//!    including quotes, backslashes, control bytes, and non-ASCII.

use std::sync::Mutex;

use proptest::prelude::*;
use strtaint_daemon::json;
use strtaint_obs as obs;
use strtaint_obs::{EventKind, SpanEvent};

/// The span tests mutate process-global collector state; hold this
/// across each case so cases from different `#[test]`s (run on
/// different threads by the harness) cannot interleave.
static SERIAL: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// 1. Histogram monotonicity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_cumulative_is_monotone(
        bounds in proptest::collection::vec(0usize..100_000, 0..8),
        obs_values in proptest::collection::vec(0usize..5_000_000, 0..64),
    ) {
        let bounds: Vec<u64> = bounds.iter().map(|&b| b as u64).collect();
        let h = obs::Histogram::new(&bounds);
        let mut expect_sum = 0u64;
        for &v in &obs_values {
            h.observe(v as u64);
            expect_sum += v as u64;
        }
        prop_assert_eq!(h.count(), obs_values.len() as u64);
        prop_assert_eq!(h.sum(), expect_sum);

        // Effective edges are sorted and deduplicated.
        let edges = h.bounds();
        prop_assert!(edges.windows(2).all(|w| w[0] < w[1]));

        let cum = h.cumulative();
        // One entry per edge plus the +∞ overflow bucket.
        prop_assert_eq!(cum.len(), edges.len() + 1);
        prop_assert_eq!(cum.last().map(|&(le, _)| le), Some(None));
        // Monotone non-decreasing, topped by the total count.
        prop_assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert_eq!(cum.last().map(|&(_, n)| n), Some(h.count()));
        // Each cumulative bucket counts exactly the observations ≤ edge.
        for &(le, n) in &cum {
            let expect = match le {
                Some(edge) => obs_values.iter().filter(|&&v| v as u64 <= edge).count(),
                None => obs_values.len(),
            };
            prop_assert_eq!(n, expect as u64);
        }
    }
}

// ---------------------------------------------------------------------
// 2. Span nesting well-formedness
// ---------------------------------------------------------------------

/// A tiny span-tree program: names drawn from a fixed set, nested by an
/// explicit arity vector. `shape[d]` children are entered at depth `d`.
#[derive(Debug, Clone)]
struct SpanTree {
    name_picks: Vec<usize>,
    shape: Vec<usize>,
}

const NAMES: &[&str] = &["page", "emit", "check", "intersect", "lower"];

fn span_tree() -> impl Strategy<Value = SpanTree> {
    (
        proptest::collection::vec(0usize..NAMES.len(), 1..24),
        proptest::collection::vec(1usize..4, 1..4),
    )
        .prop_map(|(name_picks, shape)| SpanTree { name_picks, shape })
}

/// Executes the tree, recording each entered span's `(name, depth)`.
fn run_tree(t: &SpanTree, depth: usize, next_name: &mut usize, expected: &mut Vec<(&'static str, u32)>) {
    if depth >= t.shape.len() {
        return;
    }
    for _ in 0..t.shape[depth] {
        let name = NAMES[t.name_picks[*next_name % t.name_picks.len()]];
        *next_name += 1;
        let _span = obs::Span::enter(name, "");
        expected.push((name, depth as u32));
        run_tree(t, depth + 1, next_name, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn span_events_mirror_the_tree(t in span_tree()) {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        obs::set_mode(obs::Mode::Full);
        obs::reset();
        let mut expected = Vec::new();
        run_tree(&t, 0, &mut 0, &mut expected);
        let events = obs::events();
        obs::set_mode(obs::Mode::Off);

        // One span event per entered span, with the tree's exact depth.
        prop_assert_eq!(events.len(), expected.len());
        let mut got: Vec<(&str, u32)> =
            events.iter().map(|e| (e.name, e.depth)).collect();
        let mut want = expected.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // Same-thread span intervals never strictly interleave: for
        // any two, either one contains the other (ties allowed) or
        // they are disjoint.
        for a in &events {
            for b in &events {
                if a.tid != b.tid {
                    continue;
                }
                let (a0, a1) = (a.start_us, a.start_us + a.dur_us);
                let (b0, b1) = (b.start_us, b.start_us + b.dur_us);
                let strictly_interleaved = a0 < b0 && b0 < a1 && a1 < b1;
                prop_assert!(
                    !strictly_interleaved,
                    "spans {}@{} and {}@{} interleave",
                    a.name, a0, b.name, b0
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Chrome-trace parse fixpoint under the daemon JSON parser
// ---------------------------------------------------------------------

fn nasty_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("plain.php".to_owned()),
        Just("with \"quotes\" and \\backslashes\\".to_owned()),
        Just("line\nbreak\ttab\rreturn".to_owned()),
        Just("control \u{1} \u{1f} bytes".to_owned()),
        Just("unicode: λ∩Σ* — écho".to_owned()),
        Just("</script>{}[],:".to_owned()),
    ]
}

fn event() -> impl Strategy<Value = SpanEvent> {
    (
        0usize..NAMES.len(),
        nasty_string(),
        (0usize..4, 0usize..6),
        (0usize..1_000_000, 0usize..1_000_000),
        proptest::bool::ANY,
    )
        .prop_map(|(name, detail, (tid, depth), (start, dur), is_span)| SpanEvent {
            name: NAMES[name],
            detail,
            tid: tid as u64,
            depth: depth as u32,
            start_us: start as u64,
            dur_us: dur as u64,
            kind: if is_span { EventKind::Span } else { EventKind::Instant },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chrome_trace_is_a_parse_fixpoint(
        events in proptest::collection::vec(event(), 0..12),
    ) {
        let n = events.len();
        let trace = obs::chrome_trace_of(events);
        let parsed = json::parse(&trace).expect("trace must parse");
        let arr = parsed
            .get("traceEvents")
            .and_then(json::Json::as_arr)
            .expect("traceEvents array");
        prop_assert_eq!(arr.len(), n);
        for e in arr {
            prop_assert!(e.get("name").and_then(json::Json::as_str).is_some());
            let ph = e.get("ph").and_then(json::Json::as_str).expect("ph");
            prop_assert!(ph == "X" || ph == "i");
        }
        // Re-rendering the parsed value round-trips: the writer stays
        // inside the subset the daemon's own writer is a fixpoint on.
        let rendered = parsed.to_string();
        let reparsed = json::parse(&rendered).expect("re-render must parse");
        prop_assert_eq!(parsed, reparsed);
    }
}
