//! The span API: RAII phase timing with thread-safe aggregation.
//!
//! A [`Span`] names one unit of pipeline work (`"lower"`, `"emit"`,
//! `"intersect"`, `"check:C1"`, …) and times it from construction to
//! drop on a monotonic clock. Spans nest: each thread keeps a stack of
//! open span names, so every exit structurally matches the innermost
//! open span (guards are `!Send` and drop in LIFO order — the
//! well-formedness property `crates/obs/tests/properties.rs` checks on
//! the recorded event stream).
//!
//! Collection has three modes:
//!
//! - [`Mode::Off`] (default): `Span::enter` is one relaxed atomic
//!   load; nothing else happens.
//! - [`Mode::Aggregate`]: each exit folds `(count, total, max)` into a
//!   per-name table ([`phases`]) — what the CLI's `--stats` phase
//!   rows read. No per-event memory.
//! - [`Mode::Full`]: aggregation plus a retained event buffer
//!   ([`events`]) for the Chrome-trace sink.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::metrics;

/// Global collection mode. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Collection disabled (the default); spans cost one atomic load.
    Off,
    /// Per-phase aggregates only (`--stats`).
    Aggregate,
    /// Aggregates plus the full event stream (`--trace-json`).
    Full,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide collection mode.
pub fn set_mode(mode: Mode) {
    let v = match mode {
        Mode::Off => 0,
        Mode::Aggregate => 1,
        Mode::Full => 2,
    };
    // Make sure the epoch exists before any span can observe an
    // enabled mode, so timestamps are always relative to it.
    if mode != Mode::Off {
        let _ = collector();
    }
    MODE.store(v, Ordering::Relaxed);
}

/// The current collection mode.
#[inline]
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Aggregate,
        _ => Mode::Full,
    }
}

/// What kind of trace event a [`SpanEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (Chrome phase `"X"`: has a duration).
    Span,
    /// A point-in-time marker (Chrome phase `"i"`), e.g. a budget
    /// exhaustion.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Phase name (static: the instrumentation vocabulary is fixed).
    pub name: &'static str,
    /// Free-form detail (entry path, nonterminal name, check id, …).
    pub detail: String,
    /// Small per-thread id, stable within the process.
    pub tid: u64,
    /// Nesting depth at entry (0 = top of this thread's stack).
    pub depth: u32,
    /// Microseconds since the collector epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Span or instant.
    pub kind: EventKind,
}

/// Aggregated timing for one phase name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name.
    pub name: &'static str,
    /// Completed spans folded in.
    pub count: u64,
    /// Sum of span durations, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

type PhaseTable = BTreeMap<&'static str, PhaseAgg>;

struct Collector {
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    /// One aggregation table per thread that has ever closed a span.
    /// The span-drop path locks only its own thread's table, so that
    /// lock is uncontended (the parallel hotspot workers would
    /// otherwise serialize on a shared table); [`phases`] and
    /// [`reset`] walk this list and take each lock briefly. A thread's
    /// table outlives the thread — the registry holds an `Arc` — so
    /// aggregates from finished workers stay visible.
    thread_phases: Mutex<Vec<Arc<Mutex<PhaseTable>>>>,
    next_tid: AtomicU64,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        epoch: Instant::now(),
        events: Mutex::new(Vec::new()),
        thread_phases: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
    })
}

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static LOCAL_PHASES: RefCell<Option<Arc<Mutex<PhaseTable>>>> = const { RefCell::new(None) };
}

/// Folds one completed span into the calling thread's phase table,
/// registering the table with the collector on first use.
fn record_phase(name: &'static str, dur_us: u64) {
    LOCAL_PHASES.with(|local| {
        let mut local = local.borrow_mut();
        let table = local.get_or_insert_with(|| {
            let table = Arc::new(Mutex::new(PhaseTable::new()));
            collector()
                .thread_phases
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::clone(&table));
            table
        });
        let mut table = table.lock().unwrap_or_else(|p| p.into_inner());
        let agg = table.entry(name).or_default();
        agg.count += 1;
        agg.total_us += dur_us;
        agg.max_us = agg.max_us.max(dur_us);
    });
}

fn thread_id() -> u64 {
    TID.with(|tid| {
        let v = tid.get();
        if v != u64::MAX {
            return v;
        }
        let v = collector().next_tid.fetch_add(1, Ordering::Relaxed);
        tid.set(v);
        v
    })
}

/// Clears every collected event and aggregate (mode is unchanged).
/// Call at the start of a run whose trace should stand alone.
pub fn reset() {
    let c = collector();
    c.events.lock().unwrap_or_else(|p| p.into_inner()).clear();
    let threads = c.thread_phases.lock().unwrap_or_else(|p| p.into_inner());
    for table in threads.iter() {
        table.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
}

/// Snapshot of the per-phase aggregates, merged across threads and
/// sorted by name.
pub fn phases() -> Vec<PhaseStat> {
    let c = collector();
    let threads = c.thread_phases.lock().unwrap_or_else(|p| p.into_inner());
    let mut merged = PhaseTable::new();
    for table in threads.iter() {
        let table = table.lock().unwrap_or_else(|p| p.into_inner());
        for (name, agg) in table.iter() {
            let m = merged.entry(name).or_default();
            m.count += agg.count;
            m.total_us += agg.total_us;
            m.max_us = m.max_us.max(agg.max_us);
        }
    }
    merged
        .iter()
        .map(|(name, agg)| PhaseStat {
            name,
            count: agg.count,
            total_us: agg.total_us,
            max_us: agg.max_us,
        })
        .collect()
}

/// Snapshot of the retained event stream (only populated in
/// [`Mode::Full`]), in completion order.
pub fn events() -> Vec<SpanEvent> {
    let c = collector();
    c.events.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// An open span: RAII guard that records its phase timing on drop.
///
/// `!Send` by construction — a guard must be dropped on the thread
/// that opened it, which is what keeps each thread's span stack
/// well-formed (exits always match the innermost open span).
#[derive(Debug)]
pub struct Span {
    active: Option<Active>,
    _not_send: PhantomData<*const ()>,
}

#[derive(Debug)]
struct Active {
    name: &'static str,
    detail: String,
    start: Instant,
    depth: u32,
}

impl Span {
    /// Opens a span named `name` with free-form `detail`. When
    /// collection is [`Mode::Off`] this is one atomic load and the
    /// returned guard is inert.
    #[inline]
    pub fn enter(name: &'static str, detail: &str) -> Span {
        if mode() == Mode::Off {
            return Span { active: None, _not_send: PhantomData };
        }
        Span::enter_enabled(name, || detail.to_owned())
    }

    /// Like [`Span::enter`], building the detail string only when the
    /// event stream will retain it — for call sites where rendering
    /// the detail is itself measurable work.
    #[inline]
    pub fn enter_with(name: &'static str, detail: impl FnOnce() -> String) -> Span {
        if mode() == Mode::Off {
            return Span { active: None, _not_send: PhantomData };
        }
        Span::enter_enabled(name, detail)
    }

    fn enter_enabled(name: &'static str, detail: impl FnOnce() -> String) -> Span {
        // Only the Full event stream consumes the detail; Aggregate
        // must not pay its allocation on every span.
        let detail = if mode() == Mode::Full { detail() } else { String::new() };
        let depth = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let depth = s.len() as u32;
            s.push(name);
            depth
        });
        Span {
            active: Some(Active { name, detail, start: Instant::now(), depth }),
            _not_send: PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let dur_us = active.start.elapsed().as_micros() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(
                s.last().copied(),
                Some(active.name),
                "span exit must match the innermost open span"
            );
            s.pop();
        });
        record_phase(active.name, dur_us);
        if mode() == Mode::Full {
            let c = collector();
            let event = SpanEvent {
                name: active.name,
                detail: active.detail,
                tid: thread_id(),
                depth: active.depth,
                start_us: active.start.duration_since(c.epoch).as_micros() as u64,
                dur_us,
                kind: EventKind::Span,
            };
            c.events.lock().unwrap_or_else(|p| p.into_inner()).push(event);
        }
    }
}

/// How many charge units accumulate thread-locally before being
/// flushed into the global `budget.charges` counter.
const CHARGE_FLUSH: u64 = 8192;

/// Thread-local pending charge units; the `Drop` flushes the remainder
/// when the owning thread exits (hotspot workers end with their scope).
struct PendingCharges(Cell<u64>);

impl Drop for PendingCharges {
    fn drop(&mut self) {
        let n = self.0.get();
        if n > 0 {
            metrics::global().counter("budget.charges").add(n);
        }
    }
}

thread_local! {
    static PENDING_CHARGES: PendingCharges = const { PendingCharges(Cell::new(0)) };
}

/// True when budget charges are being counted. `Budget` caches this at
/// construction so the uncounted per-charge path stays one branch on a
/// plain bool.
///
/// Charge counting is [`Mode::Full`]-only by design. The charge path
/// is the hottest in the engine — one call per worklist pop, realized
/// triple, and Earley item, hundreds of thousands per page — and even
/// a thread-local batched bump there is measurable against
/// [`Mode::Aggregate`]'s 5% overhead contract (`scripts/overhead.sh`).
/// Full mode already accepts per-event cost for fidelity; that is
/// where per-unit work accounting belongs.
pub fn budget_charges_enabled() -> bool {
    mode() == Mode::Full
}

/// Counts `n` units of budgeted work toward the global
/// `budget.charges` counter (no-op outside [`Mode::Full`] — see
/// [`budget_charges_enabled`]).
///
/// Even in Full mode a per-call atomic add would dominate the hot
/// loops, so charges batch in a thread-local cell and fold into the
/// shared counter every [`CHARGE_FLUSH`] units and at thread exit; the
/// counter trails live threads by at most `CHARGE_FLUSH - 1` units
/// each, which is noise at the scale the counter exists to show.
#[inline]
pub fn budget_charge(n: u64) {
    if mode() != Mode::Full {
        return;
    }
    PENDING_CHARGES.with(|p| {
        let total = p.0.get().saturating_add(n);
        if total >= CHARGE_FLUSH {
            metrics::global().counter("budget.charges").add(total);
            p.0.set(0);
        } else {
            p.0.set(total);
        }
    });
}

/// Records a budget exhaustion: bumps the global
/// `budget.exhausted.<resource>` counter attributed to the innermost
/// open phase, and (in [`Mode::Full`]) drops an instant event carrying
/// the whole open-span path — the phase breakdown that led to the
/// `BudgetExhausted` finding, without touching the finding itself.
pub fn budget_exhausted(resource: &'static str) {
    if mode() == Mode::Off {
        return;
    }
    let path = STACK.with(|s| s.borrow().join("/"));
    let phase = path.rsplit('/').next().unwrap_or("").to_owned();
    let name = if phase.is_empty() {
        format!("budget.exhausted.{resource}")
    } else {
        format!("budget.exhausted.{resource}.{phase}")
    };
    metrics::global().counter(&name).inc();
    if mode() == Mode::Full {
        let c = collector();
        let start_us = Instant::now().duration_since(c.epoch).as_micros() as u64;
        let event = SpanEvent {
            name: "budget_exhausted",
            detail: if path.is_empty() {
                resource.to_owned()
            } else {
                format!("{resource} in {path}")
            },
            tid: thread_id(),
            depth: STACK.with(|s| s.borrow().len() as u32),
            start_us,
            dur_us: 0,
            kind: EventKind::Instant,
        };
        c.events.lock().unwrap_or_else(|p| p.into_inner()).push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests share the process-global collector; serialize them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn off_mode_records_nothing() {
        let _guard = serial();
        set_mode(Mode::Off);
        reset();
        {
            let _s = Span::enter("emit", "a.php");
        }
        assert!(phases().is_empty());
        assert!(events().is_empty());
    }

    #[test]
    fn aggregate_mode_counts_without_events() {
        let _guard = serial();
        set_mode(Mode::Aggregate);
        reset();
        for _ in 0..3 {
            let _s = Span::enter("lower", "");
        }
        let p = phases();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].name, "lower");
        assert_eq!(p[0].count, 3);
        assert!(p[0].total_us >= p[0].max_us);
        assert!(events().is_empty(), "aggregate mode retains no events");
        set_mode(Mode::Off);
    }

    #[test]
    fn full_mode_retains_nested_events_with_depths() {
        let _guard = serial();
        set_mode(Mode::Full);
        reset();
        {
            let _outer = Span::enter("page", "a.php");
            let _inner = Span::enter("emit", "a.php");
        }
        let ev = events();
        assert_eq!(ev.len(), 2);
        // Events complete inner-first.
        assert_eq!(ev[0].name, "emit");
        assert_eq!(ev[0].depth, 1);
        assert_eq!(ev[1].name, "page");
        assert_eq!(ev[1].depth, 0);
        assert!(ev[1].dur_us >= ev[0].dur_us);
        set_mode(Mode::Off);
    }

    #[test]
    fn exhaustion_marks_phase_and_counter() {
        let _guard = serial();
        set_mode(Mode::Full);
        reset();
        metrics::global().reset();
        {
            let _s = Span::enter("intersect", "q");
            budget_exhausted("fuel");
        }
        let ev = events();
        let instant = ev
            .iter()
            .find(|e| e.kind == EventKind::Instant)
            .expect("instant event recorded");
        assert_eq!(instant.name, "budget_exhausted");
        assert!(instant.detail.contains("fuel in intersect"), "{}", instant.detail);
        let snap = metrics::global().snapshot();
        assert!(snap
            .iter()
            .any(|(name, v)| name == "budget.exhausted.fuel.intersect"
                && matches!(v, crate::MetricSnapshot::Counter(1))));
        set_mode(Mode::Off);
    }

    #[test]
    fn budget_charges_batch_and_flush() {
        let _guard = serial();
        set_mode(Mode::Off);
        assert!(!budget_charges_enabled());
        budget_charge(1_000_000); // dropped: collection is off
        set_mode(Mode::Aggregate);
        assert!(!budget_charges_enabled(), "charge counting is Full-only");
        budget_charge(1_000_000); // dropped: aggregate mode stays cheap
        set_mode(Mode::Full);
        assert!(budget_charges_enabled());
        let before = metrics::global().counter("budget.charges").get();
        // A batch at or above the flush threshold reaches the shared
        // counter immediately (plus whatever was pending on this
        // thread, hence >=).
        budget_charge(2 * CHARGE_FLUSH);
        let after = metrics::global().counter("budget.charges").get();
        assert!(after >= before + 2 * CHARGE_FLUSH, "{after} vs {before}");
        set_mode(Mode::Off);
    }
}
