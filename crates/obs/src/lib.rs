//! **strtaint-obs** — structured tracing and metrics for the analysis
//! pipeline, the intersection engine, and the serve daemon.
//!
//! The rest of the workspace answers *what* a page's verdict is; this
//! crate answers *where the time and work went*: how long each
//! pipeline phase (lower / summary / emit / refine), each grammar
//! preparation, each Bar-Hillel query, and each policy check took, and
//! how the engine/cache/budget counters evolved while it happened.
//!
//! Design constraints (DESIGN.md §9):
//!
//! - **Zero dependencies.** This crate sits below every other crate in
//!   the workspace; everything instruments through it.
//! - **Near-zero cost when disabled.** [`Span::enter`] is a single
//!   relaxed atomic load when the mode is [`Mode::Off`]; no clock is
//!   read, nothing allocates, no lock is touched.
//! - **Observation never perturbs analysis.** Spans and counters only
//!   read monotonic clocks and bump atomics; no report field, verdict
//!   byte, or grammar decision depends on the mode. The differential
//!   test `tests/obs_invariance.rs` holds the whole stack to this.
//!
//! Three sinks consume what this crate collects:
//!
//! 1. the CLI's enriched `--stats` table ([`phases`] aggregates),
//! 2. `--trace-json` ([`chrome_trace`], loadable in Chrome's
//!    `about:tracing` / Perfetto),
//! 3. the daemon's `metrics` verb (a [`metrics::Registry`] snapshot
//!    rendered as JSON).
//!
//! # Example
//!
//! ```
//! use strtaint_obs as obs;
//!
//! obs::set_mode(obs::Mode::Full);
//! obs::reset();
//! {
//!     let _page = obs::Span::enter("page", "a.php");
//!     let _emit = obs::Span::enter("emit", "a.php");
//! } // guards record on drop
//! let phases = obs::phases();
//! assert_eq!(phases.len(), 2);
//! let trace = obs::chrome_trace();
//! assert!(trace.contains("\"traceEvents\""));
//! obs::set_mode(obs::Mode::Off);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricSnapshot, Registry};
pub use span::{
    budget_charge, budget_charges_enabled, budget_exhausted, events, mode, phases, reset, set_mode,
    EventKind, Mode, PhaseStat, Span, SpanEvent,
};
pub use trace::{chrome_trace, chrome_trace_of, write_chrome_trace};
