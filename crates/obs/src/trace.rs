//! The Chrome-trace sink: renders the collected event stream as a
//! `chrome://tracing` / Perfetto-compatible JSON document.
//!
//! Output contract:
//!
//! - valid JSON, and a **parse fixpoint** under the daemon's
//!   dependency-free parser (`crates/daemon/src/json.rs`): parsing the
//!   document and re-serializing it through that writer round-trips to
//!   the same value (property-tested in
//!   `crates/obs/tests/properties.rs`);
//! - deterministic given the event stream: events are sorted by
//!   `(start, tid, depth)` before rendering;
//! - spans render as complete events (`"ph":"X"`, microsecond `ts` and
//!   `dur`), budget-exhaustion markers as thread-scoped instants
//!   (`"ph":"i"`).

use std::io::{self, Write as _};
use std::path::Path;

use crate::span::{events, EventKind, SpanEvent};

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_event(e: &SpanEvent, out: &mut String) {
    out.push_str("{\"name\":\"");
    escape(e.name, out);
    out.push_str("\",\"cat\":\"strtaint\",\"ph\":\"");
    match e.kind {
        EventKind::Span => out.push('X'),
        EventKind::Instant => out.push('i'),
    }
    out.push_str("\",\"ts\":");
    out.push_str(&e.start_us.to_string());
    if e.kind == EventKind::Span {
        out.push_str(",\"dur\":");
        out.push_str(&e.dur_us.to_string());
    } else {
        // Thread-scoped instant marker.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&e.tid.to_string());
    out.push_str(",\"args\":{\"detail\":\"");
    escape(&e.detail, out);
    out.push_str("\",\"depth\":");
    out.push_str(&e.depth.to_string());
    out.push_str("}}");
}

/// Renders `events` as a Chrome trace document.
pub fn chrome_trace_of(mut events: Vec<SpanEvent>) -> String {
    events.sort_by(|a, b| {
        (a.start_us, a.tid, a.depth, a.name).cmp(&(b.start_us, b.tid, b.depth, b.name))
    });
    let mut out = String::with_capacity(events.len() * 128 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        write_event(e, &mut out);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the globally collected event stream ([`crate::events`]) as
/// a Chrome trace document.
pub fn chrome_trace() -> String {
    chrome_trace_of(events())
}

/// Writes [`chrome_trace`] to `path`.
///
/// # Errors
///
/// Propagates the underlying file I/O error.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace().as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, detail: &str, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name,
            detail: detail.to_owned(),
            tid: 0,
            depth: 0,
            start_us: start,
            dur_us: dur,
            kind: EventKind::Span,
        }
    }

    #[test]
    fn renders_sorted_complete_events() {
        let trace = chrome_trace_of(vec![
            event("emit", "b.php", 20, 5),
            event("lower", "a.php", 10, 3),
        ]);
        let lower = trace.find("\"name\":\"lower\"").expect("lower present");
        let emit = trace.find("\"name\":\"emit\"").expect("emit present");
        assert!(lower < emit, "events sorted by start time");
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"dur\":5"));
    }

    #[test]
    fn escapes_detail_strings() {
        let trace = chrome_trace_of(vec![event("check", "a\"b\\c\nd", 0, 1)]);
        assert!(trace.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn instants_have_scope_not_duration() {
        let mut e = event("budget_exhausted", "fuel", 7, 0);
        e.kind = EventKind::Instant;
        let trace = chrome_trace_of(vec![e]);
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"s\":\"t\""));
        assert!(!trace.contains("\"dur\""));
    }

    #[test]
    fn empty_stream_is_still_a_document() {
        let trace = chrome_trace_of(Vec::new());
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.trim_end().ends_with('}'));
    }
}
