//! The metrics registry: named counters, gauges, and fixed-boundary
//! histograms with a lock-free hot path.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a short
//! write-lock once per name; after that, callers hold an `Arc` to the
//! metric and every update is a single atomic operation. This is what
//! lets the daemon count requests and the budget count charges without
//! serializing workers.
//!
//! One [`Registry`] can be process-global ([`global`]) for code that
//! cannot thread a handle (budget charges, exhaustion attribution), or
//! instance-owned (each `DaemonState` owns one, so a daemon restart
//! starts its metrics from zero while the artifact cache replays
//! verdicts — the "reset correctly" half of the durability story).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Write stripes per [`Counter`]. A handful is enough: stripes only
/// need to spread *simultaneous* writers, and the engine's worker pool
/// is sized to the machine's cores.
const COUNTER_STRIPES: usize = 16;

/// One cache line per stripe, so two threads bumping the same counter
/// never invalidate each other's line.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(AtomicU64);

/// Round-robin stripe assignment, fixed per thread on first use.
fn stripe_index() -> usize {
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let v = (NEXT.fetch_add(1, Ordering::Relaxed) as usize) % COUNTER_STRIPES;
        s.set(v);
        v
    })
}

/// A monotonically increasing counter.
///
/// Writes are sharded across cache-line-padded stripes (each thread
/// sticks to one stripe), because counters sit on genuinely hot paths —
/// the budget charges fuel through one on every worklist pop — where a
/// single shared atomic would ping-pong its cache line between the
/// parallel hotspot workers. Reads sum the stripes.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; COUNTER_STRIPES],
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (sum over stripes).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Default histogram boundaries for microsecond durations: 50µs to
/// 10s, roughly ×2.5 per step. Fixed boundaries keep merges and
/// snapshots trivially consistent.
pub const DURATION_US_BOUNDS: &[u64] = &[
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
];

/// A histogram over fixed bucket boundaries.
///
/// `bounds` are upper bucket edges, strictly increasing; an implicit
/// overflow bucket catches everything above the last edge. Buckets
/// store per-bucket counts; [`Histogram::cumulative`] renders the
/// Prometheus-style cumulative view (monotone by construction — the
/// property test in `crates/obs/tests/properties.rs` pins this).
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Builds a histogram over `bounds` (sorted and deduplicated
    /// defensively; an empty slice yields a single overflow bucket).
    pub fn new(bounds: &[u64]) -> Histogram {
        let mut bounds: Vec<u64> = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket boundaries (upper edges, excluding the overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative `(upper_edge, count_le)` pairs; `None` is the +∞
    /// overflow edge, whose count equals [`Histogram::count`].
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), acc));
        }
        out
    }

    /// Upper bound on the `q`-quantile (0.0–1.0) of the observed
    /// distribution: the smallest bucket edge whose cumulative count
    /// covers `q` of the observations. `None` when the histogram is
    /// empty or the quantile falls in the +∞ overflow bucket. Bucket
    /// resolution bounds the error — the true quantile lies at or
    /// below the returned edge; this is what the daemon reports as p99
    /// request latency.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // ceil(q * total) observations must fall at or below the edge.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        for (edge, count_le) in self.cumulative() {
            if count_le >= rank {
                return edge;
            }
        }
        None
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time rendering of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram: observation count, sum, and cumulative buckets
    /// (`None` edge = +∞).
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Cumulative `(upper_edge, count_le)` pairs.
        buckets: Vec<(Option<u64>, u64)>,
    },
}

/// A named collection of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    slots: RwLock<BTreeMap<String, Slot>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. If `name` is already registered as a different
    /// metric kind (a programming error), a detached counter is
    /// returned so updates are lost rather than panicking.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Slot::Counter(c)) = self.lookup(name) {
            return c;
        }
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Counter(Arc::new(Counter::default())))
        {
            Slot::Counter(c) => Arc::clone(c),
            _ => {
                debug_assert!(false, "metric {name:?} registered with another kind");
                Arc::new(Counter::default())
            }
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use (same kind-mismatch contract as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Slot::Gauge(g)) = self.lookup(name) {
            return g;
        }
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Gauge(Arc::new(Gauge::default())))
        {
            Slot::Gauge(g) => Arc::clone(g),
            _ => {
                debug_assert!(false, "metric {name:?} registered with another kind");
                Arc::new(Gauge::default())
            }
        }
    }

    /// Returns the histogram registered under `name`, creating it over
    /// `bounds` on first use (same kind-mismatch contract as
    /// [`Registry::counter`]; bounds of an existing histogram win).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(Slot::Histogram(h)) = self.lookup(name) {
            return h;
        }
        let mut slots = self.slots.write().unwrap_or_else(|p| p.into_inner());
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Slot::Histogram(h) => Arc::clone(h),
            _ => {
                debug_assert!(false, "metric {name:?} registered with another kind");
                Arc::new(Histogram::new(bounds))
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.slots
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
    }

    /// Snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let slots = self.slots.read().unwrap_or_else(|p| p.into_inner());
        slots
            .iter()
            .map(|(name, slot)| {
                let snap = match slot {
                    Slot::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Slot::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Slot::Histogram(h) => MetricSnapshot::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.cumulative(),
                    },
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// Zeroes every registered metric (names and handed-out `Arc`s
    /// stay valid).
    pub fn reset(&self) {
        let slots = self.slots.read().unwrap_or_else(|p| p.into_inner());
        for slot in slots.values() {
            match slot {
                Slot::Counter(c) => c.reset(),
                Slot::Gauge(g) => g.v.store(0, Ordering::Relaxed),
                Slot::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-global registry, for instrumentation that cannot thread
/// a handle (budget charges, exhaustion attribution).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a");
        c.inc();
        c.add(2);
        assert_eq!(r.counter("a").get(), 3, "same name, same counter");
        let g = r.gauge("b");
        g.set(7);
        g.set(4);
        assert_eq!(r.gauge("b").get(), 4);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1122);
        let cum = h.cumulative();
        assert_eq!(cum, vec![(Some(10), 2), (Some(100), 4), (None, 5)]);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let h = Histogram::new(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.99), None, "empty histogram has no quantile");
        for v in [1, 2, 3, 50, 60, 70, 80, 90, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(10), "min falls in the first bucket");
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(0.9), Some(1000));
        assert_eq!(h.quantile(0.99), None, "p99 is the overflow observation");
        assert_eq!(h.quantile(1.5), None, "out-of-range q rejected");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z").inc();
        r.gauge("a").set(1);
        r.histogram("m", &[5]).observe(3);
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let r = Registry::new();
        let c = r.counter("a");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("a").get(), 1);
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_metric() {
        let r = Registry::new();
        r.counter("x").inc();
        // Do not panic in release builds; the gauge is detached.
        #[cfg(not(debug_assertions))]
        {
            let g = r.gauge("x");
            g.set(5);
            assert_eq!(r.counter("x").get(), 1);
        }
    }
}
