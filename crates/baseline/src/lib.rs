//! A classic **binary taint analysis** baseline — the approach the
//! paper's introduction argues against (WebSSARI / Pixy style).
//!
//! Data is either *tainted* or *untainted*; a fixed list of functions
//! are *sanitizers* whose results are always untainted; a hotspot with
//! a tainted argument is a finding. This captures the two failure
//! modes the paper highlights:
//!
//! - **False negatives**: `addslashes` is on the sanitizer list, so a
//!   query using escaped input in an *unquoted numeric* position is
//!   declared safe — but it is exploitable (`WHERE id=$id` with
//!   `$id = addslashes($_GET['id'])`). The grammar-based analysis
//!   catches this because its policy knows the query's structure.
//! - **False positives**: a regex *test* (`preg_match('/^[0-9]+$/',…)`)
//!   does not change the value, so binary taint cannot credit it; code
//!   the grammar analysis verifies stays flagged.
//!
//! # Examples
//!
//! ```
//! use strtaint_analysis::Vfs;
//! use strtaint_baseline::taint_analyze;
//!
//! let mut vfs = Vfs::new();
//! vfs.add("a.php", r#"<?php
//! $id = addslashes($_GET['id']);
//! $r = $DB->query("SELECT * FROM t WHERE id=$id");
//! "#);
//! // The baseline misses the unquoted-numeric vulnerability:
//! let report = taint_analyze(&vfs, "a.php");
//! assert!(report.findings.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use strtaint_analysis::vfs::{normalize, Vfs};
use strtaint_php::ast::*;
use strtaint_php::token::StrPart;
use strtaint_php::{parse, Span};

/// A taint-analysis finding: a hotspot receiving tainted data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineFinding {
    /// File containing the hotspot.
    pub file: String,
    /// Call site.
    pub span: Span,
    /// Hotspot label (`->query`, `mysql_query`, …).
    pub label: String,
}

/// Result of the baseline analysis.
#[derive(Debug, Default)]
pub struct BaselineReport {
    /// Hotspots that received tainted data.
    pub findings: Vec<BaselineFinding>,
    /// Number of hotspots seen.
    pub hotspots: usize,
}

impl fmt::Display for BaselineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "baseline: {}/{} hotspots flagged",
            self.findings.len(),
            self.hotspots
        )
    }
}

/// Functions whose return value classic taint checkers consider clean.
const SANITIZERS: &[&str] = &[
    "addslashes",
    "mysql_real_escape_string",
    "mysql_escape_string",
    "mysqli_real_escape_string",
    "pg_escape_string",
    "sqlite_escape_string",
    "htmlspecialchars",
    "htmlentities",
    "intval",
    "floatval",
    "doubleval",
    "count",
    "strlen",
    "md5",
    "sha1",
    "crc32",
    "time",
    "rand",
    "mt_rand",
    "date",
    "urlencode",
    "rawurlencode",
    "number_format",
    "strip_tags",
];

const DIRECT_SOURCES: &[&str] = &["_GET", "_POST", "_REQUEST", "_COOKIE", "_SERVER"];

const HOTSPOT_METHODS: &[&str] = &["query", "sql_query", "prepare"];
const HOTSPOT_FUNCTIONS: &[&str] = &[
    "mysql_query",
    "mysqli_query",
    "mysql_db_query",
    "pg_query",
    "sqlite_query",
    "db_query",
];

/// Runs the binary taint analysis on one page.
pub fn taint_analyze(vfs: &Vfs, entry: &str) -> BaselineReport {
    let mut a = TaintWalker {
        vfs,
        report: BaselineReport::default(),
        functions: HashMap::new(),
        vars: HashMap::new(),
        call_depth: 0,
        cur_file: normalize(entry),
        returns: Vec::new(),
    };
    let Some(src) = vfs.get(entry) else {
        return a.report;
    };
    let Ok(file) = parse(src) else {
        return a.report;
    };
    a.register(&file.stmts);
    a.stmts(&file.stmts);
    a.report
}

struct TaintWalker<'a> {
    vfs: &'a Vfs,
    report: BaselineReport,
    functions: HashMap<String, Rc<FuncDecl>>,
    vars: HashMap<String, bool>,
    call_depth: usize,
    cur_file: String,
    returns: Vec<bool>,
}

impl TaintWalker<'_> {
    fn register(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            if let StmtKind::FuncDecl(d) = &s.kind {
                self.functions
                    .entry(d.name.clone())
                    .or_insert_with(|| Rc::new(d.clone()));
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => {
                self.eval(e);
            }
            StmtKind::Echo(es) | StmtKind::Unset(es) => {
                for e in es {
                    self.eval(e);
                }
            }
            StmtKind::If {
                cond,
                then,
                elifs,
                els,
            } => {
                // Conservative join: a variable stays tainted if it is
                // tainted on any path (classic taint tools cannot use
                // branch conditions to untaint).
                self.eval(cond);
                let base = self.vars.clone();
                let mut merged = base.clone();
                let mut run_branch = |w: &mut Self, body: &[Stmt]| {
                    w.vars = base.clone();
                    w.stmts(body);
                    for (k, &v) in w.vars.iter() {
                        let e = merged.entry(k.clone()).or_insert(false);
                        *e = *e || v;
                    }
                };
                run_branch(self, then);
                for (c, b) in elifs {
                    self.vars = base.clone();
                    self.eval(c);
                    run_branch(self, b);
                }
                if let Some(b) = els {
                    run_branch(self, b);
                }
                self.vars = merged;
            }
            StmtKind::While { cond, body } => {
                self.eval(cond);
                self.stmts(body);
                // Re-run once so loop-carried taint stabilizes.
                self.stmts(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.stmts(body);
                self.stmts(body);
                self.eval(cond);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.eval(e);
                }
                if let Some(c) = cond {
                    self.eval(c);
                }
                self.stmts(body);
                for e in step {
                    self.eval(e);
                }
                self.stmts(body);
            }
            StmtKind::Foreach {
                subject,
                key,
                value,
                body,
            } => {
                let t = self.eval(subject);
                if let Some(k) = key {
                    self.vars.insert(k.clone(), t);
                }
                self.vars.insert(value.clone(), t);
                self.stmts(body);
                self.stmts(body);
            }
            StmtKind::Switch { subject, cases } => {
                self.eval(subject);
                for (l, b) in cases {
                    if let Some(l) = l {
                        self.eval(l);
                    }
                    self.stmts(b);
                }
            }
            StmtKind::Return(v) => {
                let t = v.as_ref().map(|e| self.eval(e)).unwrap_or(false);
                if let Some(frame) = self.returns.last_mut() {
                    *frame = *frame || t;
                }
            }
            StmtKind::Exit(v) => {
                if let Some(e) = v {
                    self.eval(e);
                }
            }
            StmtKind::FuncDecl(d) => {
                self.functions
                    .entry(d.name.clone())
                    .or_insert_with(|| Rc::new(d.clone()));
            }
            StmtKind::ClassDecl(c) => {
                for m in &c.methods {
                    self.functions
                        .entry(m.name.clone())
                        .or_insert_with(|| Rc::new(m.clone()));
                }
            }
            StmtKind::Include { arg, .. } => {
                self.eval(arg);
                // Resolve literal includes only (classic tools require
                // user assistance for dynamic ones — paper §1.1).
                if let Some(path) = literal_path(arg) {
                    let norm = normalize(&path);
                    if let Some(src) = self.vfs.get(&norm) {
                        if let Ok(file) = parse(src) {
                            let prev = std::mem::replace(&mut self.cur_file, norm);
                            self.register(&file.stmts);
                            self.stmts(&file.stmts);
                            self.cur_file = prev;
                        }
                    }
                }
            }
            StmtKind::Block(b) => self.stmts(b),
            _ => {}
        }
    }

    fn eval(&mut self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Null
            | ExprKind::Bool(_)
            | ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::ConstFetch(_) => false,
            ExprKind::Interp(parts) => {
                let mut t = false;
                for p in parts {
                    match p {
                        StrPart::Lit(_) => {}
                        StrPart::Var(v) => t |= self.var(v),
                        StrPart::Index(v, _) | StrPart::Prop(v, _) => {
                            t |= self.var(v) || is_source(v)
                        }
                    }
                }
                t
            }
            ExprKind::Var(v) => self.var(v),
            ExprKind::Index(base, idx) => {
                if let Some(i) = idx {
                    self.eval(i);
                }
                if let ExprKind::Var(v) = &base.kind {
                    if is_source(v) {
                        return true;
                    }
                }
                self.eval(base)
            }
            ExprKind::Prop(base, _) => self.eval(base),
            ExprKind::Assign(lhs, op, rhs) => {
                let t = self.eval(rhs);
                if let Some(name) = lvalue_name(lhs) {
                    // Compound `.=` keeps prior taint.
                    let prior = self.vars.get(&name).copied().unwrap_or(false);
                    let keep = op.is_some() && prior;
                    self.vars.insert(name, t || keep);
                }
                t
            }
            ExprKind::Ternary(c, t, f) => {
                let ct = self.eval(c);
                let tt = t.as_ref().map(|x| self.eval(x)).unwrap_or(ct);
                let ft = self.eval(f);
                tt || ft
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.eval(a);
                let tb = self.eval(b);
                match op {
                    BinOp::Concat => ta || tb,
                    _ => false, // arithmetic/comparison yield untainted
                }
            }
            ExprKind::Unary(_, a) | ExprKind::Suppress(a) | ExprKind::Empty(a) => {
                self.eval(a);
                false
            }
            ExprKind::Cast(kind, a) => {
                let t = self.eval(a);
                match kind {
                    CastKind::Int | CastKind::Float | CastKind::Bool => false,
                    _ => t,
                }
            }
            ExprKind::IncDec { target, .. } => {
                self.eval(target);
                false
            }
            ExprKind::Isset(args) => {
                for a in args {
                    self.eval(a);
                }
                false
            }
            ExprKind::Array(items) => {
                let mut t = false;
                for (k, v) in items {
                    if let Some(k) = k {
                        self.eval(k);
                    }
                    t |= self.eval(v);
                }
                t
            }
            ExprKind::New(_, args) => {
                for a in args {
                    self.eval(a);
                }
                false
            }
            ExprKind::Call(name, args) => self.call(name, args, e.span, false),
            ExprKind::MethodCall(obj, m, args) => {
                self.eval(obj);
                self.call(m, args, e.span, true)
            }
        }
    }

    fn var(&self, v: &str) -> bool {
        if is_source(v) {
            return true;
        }
        self.vars.get(v).copied().unwrap_or(false)
    }

    fn call(&mut self, name: &str, args: &[Expr], span: Span, is_method: bool) -> bool {
        let arg_taints: Vec<bool> = args.iter().map(|a| self.eval(a)).collect();
        let any_tainted = arg_taints.iter().any(|&t| t);
        let is_hotspot = if is_method {
            HOTSPOT_METHODS.contains(&name)
        } else {
            HOTSPOT_FUNCTIONS.contains(&name)
        };
        if is_hotspot {
            self.report.hotspots += 1;
            if arg_taints.first().copied().unwrap_or(false) {
                self.report.findings.push(BaselineFinding {
                    file: self.cur_file.clone(),
                    span,
                    label: if is_method {
                        format!("->{name}")
                    } else {
                        name.to_owned()
                    },
                });
            }
            return false;
        }
        if SANITIZERS.contains(&name) {
            return false;
        }
        if !is_method {
            if let Some(decl) = self.functions.get(name).cloned() {
                if self.call_depth < 8 {
                    let saved: Vec<(String, Option<bool>)> = decl
                        .params
                        .iter()
                        .map(|p| (p.name.clone(), self.vars.get(&p.name).copied()))
                        .collect();
                    for (i, p) in decl.params.iter().enumerate() {
                        self.vars
                            .insert(p.name.clone(), arg_taints.get(i).copied().unwrap_or(false));
                    }
                    self.call_depth += 1;
                    self.returns.push(false);
                    self.stmts(&decl.body);
                    let ret = self.returns.pop().unwrap_or(false);
                    self.call_depth -= 1;
                    for (name, old) in saved {
                        match old {
                            Some(t) => {
                                self.vars.insert(name, t);
                            }
                            None => {
                                self.vars.remove(&name);
                            }
                        }
                    }
                    return ret;
                }
            }
        }
        // Unknown function: taint flows through.
        any_tainted
    }
}

fn is_source(v: &str) -> bool {
    DIRECT_SOURCES.contains(&v)
}

fn lvalue_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Var(v) => Some(v.clone()),
        ExprKind::Index(b, _) | ExprKind::Prop(b, _) => lvalue_name(b),
        _ => None,
    }
}

fn literal_path(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Str(s) => Some(String::from_utf8_lossy(s).into_owned()),
        ExprKind::Binary(BinOp::Concat, a, b) => {
            Some(format!("{}{}", literal_path(a)?, literal_path(b)?))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> BaselineReport {
        let mut vfs = Vfs::new();
        vfs.add("a.php", src);
        taint_analyze(&vfs, "a.php")
    }

    #[test]
    fn flags_raw_get() {
        let r = run(r#"<?php $id = $_GET['id']; $DB->query("SELECT * FROM t WHERE id='$id'");"#);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.hotspots, 1);
    }

    #[test]
    fn trusts_sanitizers_blindly_false_negative() {
        // The paper's motivating blind spot: escaped but unquoted.
        let r = run(
            r#"<?php $id = addslashes($_GET['id']); $DB->query("SELECT * FROM t WHERE id=$id");"#,
        );
        assert!(r.findings.is_empty(), "baseline misses the numeric-context bug");
    }

    #[test]
    fn cannot_credit_regex_checks_false_positive() {
        // Verified safe by the grammar analysis; still flagged here.
        let r = run(
            r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit; }
$DB->query("SELECT * FROM t WHERE id='$id'");"#,
        );
        assert_eq!(r.findings.len(), 1, "binary taint cannot model checks");
    }

    #[test]
    fn user_function_taint_flows() {
        let r = run(
            r#"<?php
function wrap($x) { return '[' . $x . ']'; }
$v = wrap($_POST['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");"#,
        );
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn user_sanitizer_wrapper_clean() {
        let r = run(
            r#"<?php
function clean($x) { return addslashes($x); }
$v = clean($_POST['v']);
$DB->query("SELECT * FROM t WHERE v='$v'");"#,
        );
        assert!(r.findings.is_empty());
    }

    #[test]
    fn literal_includes_followed() {
        let mut vfs = Vfs::new();
        vfs.add(
            "lib.php",
            r#"<?php function get($i) { global $DB; return $DB->query("SELECT * FROM t WHERE i='" . $i . "'"); }"#,
        );
        vfs.add("a.php", r#"<?php include('lib.php'); get($_GET['x']);"#);
        let r = taint_analyze(&vfs, "a.php");
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn loop_carried_taint() {
        let r = run(
            r#"<?php
$acc = '';
for ($i = 0; $i < 3; $i++) { $acc .= $_GET['p']; }
$DB->query("SELECT * FROM t WHERE x='$acc'");"#,
        );
        assert_eq!(r.findings.len(), 1);
    }
}
