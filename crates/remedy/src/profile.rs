//! Guard-profile export: per-hotspot query-skeleton allowlists as a
//! versioned, content-hash-keyed JSON artifact (the SQLBlock idea: a
//! runtime proxy that only admits queries matching a learned skeleton
//! refuses injected ones, because injection by definition changes the
//! query's shape).
//!
//! The renderer is a deterministic manual writer over plain data, and
//! the skeleton-byte → display-string conversion happens exactly once,
//! in `HotspotReport::skeleton_strings` — so a profile built cold from
//! in-memory reports and one rebuilt by the daemon from persisted
//! verdict artifacts are byte-identical, which is what makes the
//! artifact's content hash a stable cache key across replay.

use strtaint::render::json_escape;
use strtaint::report::PageReport;

/// Profile format tag; bump on any layout change.
pub const PROFILE_FORMAT: &str = "strtaint-profile/1";

/// One hotspot's allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileHotspot {
    /// File containing the sink call.
    pub file: String,
    /// 1-based line of the sink call.
    pub line: u32,
    /// 1-based column of the sink call.
    pub col: u32,
    /// Sink label (e.g. `mysql_query`).
    pub label: String,
    /// Policy id of the sink.
    pub policy: String,
    /// Whether the skeleton set covers every labeled nonterminal; a
    /// runtime guard must treat an incomplete set as advisory.
    pub complete: bool,
    /// The allowlisted skeletons (marker rendered as `?`).
    pub skeletons: Vec<String>,
}

/// One page's allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePage {
    /// The page entry.
    pub entry: String,
    /// Hotspot allowlists in program order.
    pub hotspots: Vec<ProfileHotspot>,
}

/// Builds profile pages from in-memory analysis reports (the cold
/// path; the daemon rebuilds the same shape from persisted verdicts).
pub fn profile_pages(reports: &[PageReport]) -> Vec<ProfilePage> {
    reports
        .iter()
        .map(|p| ProfilePage {
            entry: p.entry.clone(),
            hotspots: p
                .hotspots
                .iter()
                .map(|(h, r)| ProfileHotspot {
                    file: h.file.clone(),
                    line: h.span.line,
                    col: h.span.col,
                    label: h.label.clone(),
                    policy: h.policy.clone(),
                    complete: r.skeletons_complete,
                    skeletons: r.skeleton_strings(),
                })
                .collect(),
        })
        .collect()
}

/// Renders the versioned profile artifact. The `content_hash` member
/// is an FNV-1a 64 digest of the `pages` fragment, so two profiles
/// with identical allowlists key identically regardless of where they
/// were rendered.
pub fn render_profile(pages: &[ProfilePage]) -> String {
    let body = render_pages(pages);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"format\": \"{PROFILE_FORMAT}\",\n"));
    out.push_str(&format!(
        "  \"engine\": \"{}\",\n",
        strtaint_checker::engine_version()
    ));
    out.push_str(&format!(
        "  \"content_hash\": \"{:016x}\",\n",
        fnv1a64(body.as_bytes())
    ));
    out.push_str("  \"pages\": ");
    out.push_str(&body);
    out.push_str("\n}\n");
    out
}

fn render_pages(pages: &[ProfilePage]) -> String {
    let mut out = String::new();
    out.push_str("[\n");
    for (pi, p) in pages.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"entry\": \"{}\",\n",
            json_escape(&p.entry)
        ));
        out.push_str("      \"hotspots\": [\n");
        for (hi, h) in p.hotspots.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"label\": \"{}\", \"policy\": \"{}\", \"complete\": {}, \"allow\": [",
                json_escape(&h.file),
                h.line,
                h.col,
                json_escape(&h.label),
                json_escape(&h.policy),
                h.complete
            ));
            for (si, s) in h.skeletons.iter().enumerate() {
                if si > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(s)));
            }
            out.push_str(&format!(
                "]}}{}\n",
                if hi + 1 < p.hotspots.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 < pages.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    out
}

/// FNV-1a, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ProfilePage> {
        vec![ProfilePage {
            entry: "index.php".into(),
            hotspots: vec![ProfileHotspot {
                file: "index.php".into(),
                line: 3,
                col: 1,
                label: "mysql_query".into(),
                policy: "sql".into(),
                complete: true,
                skeletons: vec!["SELECT * FROM t WHERE id='?'".into()],
            }],
        }]
    }

    #[test]
    fn render_is_deterministic_and_hash_keyed() {
        let a = render_profile(&sample());
        let b = render_profile(&sample());
        assert_eq!(a, b);
        assert!(a.contains(PROFILE_FORMAT));
        assert!(a.contains(strtaint_checker::engine_version()));
        assert!(a.contains("\"content_hash\": \""));
    }

    #[test]
    fn hash_tracks_allowlist_content() {
        let a = render_profile(&sample());
        let mut changed = sample();
        changed[0].hotspots[0].skeletons[0].push('X');
        let b = render_profile(&changed);
        let key = |s: &str| {
            s.lines()
                .find(|l| l.contains("content_hash"))
                .map(String::from)
        };
        assert_ne!(key(&a), key(&b));
    }
}
