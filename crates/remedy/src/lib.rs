//! **strtaint-remedy** — the remediation subsystem: from
//! counterexamples to actions.
//!
//! The analyzer's headline artifact is evidence: a witness string, a
//! spliced example query, and the hotspot's canonical query skeletons.
//! This crate consumes that evidence and produces the two artifact
//! kinds downstream consumers can act on:
//!
//! 1. **Fix suggestions** ([`plan`], [`apply`]) — per finding, a
//!    deterministic rewrite plan drawn from the per-policy
//!    [`FixTemplate`](strtaint_policy::FixTemplate) table: wrap the
//!    tainted source read in the policy's context-correct sanitizer
//!    (quoted SQL position → `addslashes`, numeric position →
//!    `intval`, HTML output → `htmlspecialchars`), or insert an
//!    anchored allowlist guard ahead of shell/path/eval sinks. Plans
//!    render as SARIF `fixes` and, in apply mode, are proven: the
//!    repaired tree is re-analyzed and a fix only counts as discharged
//!    when the finding is gone.
//! 2. **Guard profiles** ([`profile`]) — each hotspot's skeleton set
//!    exported as a versioned, content-hash-keyed JSON allowlist a
//!    runtime proxy can enforce, byte-identical whether built cold or
//!    replayed from the daemon's persisted verdicts.
//!
//! Ambiguity is first-class: a finding whose source cannot be mapped
//! to exactly one textual read, or whose skeletons prove no single
//! query context, yields an explicit reason instead of a guessed edit
//! (DESIGN.md §13 states the soundness argument).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apply;
pub mod plan;
pub mod profile;

pub use apply::{apply_plans, run_fix, FixOutcome};
pub use plan::{plan_fixes, to_result_fixes, Edit, FixPlan, Strategy};
pub use profile::{profile_pages, render_profile, ProfileHotspot, ProfilePage, PROFILE_FORMAT};
