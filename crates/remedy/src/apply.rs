//! Applying fix plans to a copy of the tree and proving findings
//! discharged by re-analysis.
//!
//! Application never mutates the caller's [`Vfs`]: plans are applied
//! to a clone, the clone is re-analyzed with a fresh checker under the
//! same configuration, and a plan only counts as *discharged* when the
//! re-analysis reports no finding for the same source under the same
//! policy on its page. The original analysis is the accuser; the
//! re-analysis is the proof.

use std::collections::HashMap;

use strtaint::report::PageReport;
use strtaint::{
    analyze_page_policies_cached, AnalyzeError, CheckOptions, Config, PolicyChecker, SummaryCache,
    Vfs,
};

use crate::plan::{plan_fixes, Edit, FixPlan};

/// The full dry-run/apply outcome for one set of pages.
#[derive(Debug)]
pub struct FixOutcome {
    /// Reports of the original (accusing) analysis, in entry order.
    pub reports: Vec<PageReport>,
    /// One plan per finding, in report order.
    pub plans: Vec<FixPlan>,
    /// Whether each plan's edits made it into the fixed tree (identical
    /// duplicate plans count as applied; conflicting overlaps do not).
    pub applied: Vec<bool>,
    /// Whether re-analysis proved each plan's finding gone.
    pub discharged: Vec<bool>,
    /// The repaired tree (a modified clone; untouched files are
    /// byte-identical to the input).
    pub fixed_vfs: Vfs,
    /// Reports of the re-analysis over `fixed_vfs`, in entry order.
    pub reanalyzed: Vec<PageReport>,
}

impl FixOutcome {
    /// Total findings still reported after the repair pass.
    pub fn remaining_findings(&self) -> usize {
        self.reanalyzed.iter().map(|r| r.findings().count()).sum()
    }
}

/// Applies every applicable plan to a clone of `vfs`. Returns the
/// repaired tree and, per plan, whether its edits were applied.
/// Identical plans (two entries flowing through one shared read) apply
/// once and all count applied; non-identical overlapping edits
/// conflict and the later plan is left unapplied.
pub fn apply_plans(vfs: &Vfs, plans: &[FixPlan]) -> (Vfs, Vec<bool>) {
    let mut applied = vec![false; plans.len()];
    let mut accepted: Vec<Vec<Edit>> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        if !plan.is_applicable() {
            continue;
        }
        if accepted.contains(&plan.edits) {
            applied[i] = true;
            continue;
        }
        let conflicts = accepted.iter().flatten().any(|e| {
            plan.edits
                .iter()
                .any(|n| n.file == e.file && overlaps(n, e))
        });
        if conflicts {
            continue;
        }
        applied[i] = true;
        accepted.push(plan.edits.clone());
    }

    let mut by_file: HashMap<&str, Vec<&Edit>> = HashMap::new();
    for e in accepted.iter().flatten() {
        by_file.entry(&e.file).or_default().push(e);
    }
    let mut fixed = vfs.clone();
    for (file, mut edits) in by_file {
        let Some(bytes) = vfs.get(file) else { continue };
        let mut contents = bytes.to_vec();
        // Right-to-left application keeps earlier offsets valid.
        edits.sort_by_key(|e| std::cmp::Reverse((e.start, e.end)));
        for e in edits {
            if e.end <= contents.len() {
                contents.splice(e.start..e.end, e.insert.bytes());
            }
        }
        fixed.add(file, contents);
    }
    (fixed, applied)
}

/// `true` when two edits to the same file cannot compose: their ranges
/// intersect, or both insert at the same position (order ambiguous).
fn overlaps(a: &Edit, b: &Edit) -> bool {
    match (a.start == a.end, b.start == b.end) {
        (true, true) => a.start == b.start,
        // An insertion strictly inside the other edit's replaced
        // region lands in text that is being rewritten.
        (true, false) => b.start < a.start && a.start < b.end,
        (false, true) => a.start < b.start && b.start < a.end,
        (false, false) => a.start.max(b.start) < a.end.min(b.end),
    }
}

/// The end-to-end fix pipeline: analyze `entries`, plan a fix per
/// finding, apply the unambiguous plans to a clone of the tree, and
/// re-analyze that clone to prove each finding discharged.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if any entry is missing or fails to parse
/// (in either pass).
pub fn run_fix(vfs: &Vfs, entries: &[String], config: &Config) -> Result<FixOutcome, AnalyzeError> {
    let checker = PolicyChecker::with_options(CheckOptions::default());
    let summaries = SummaryCache::new();
    let mut reports = Vec::new();
    for entry in entries {
        reports.push(analyze_page_policies_cached(
            vfs, entry, config, &checker, &summaries,
        )?);
    }
    let plans = plan_fixes(vfs, &reports);
    let (fixed_vfs, applied) = apply_plans(vfs, &plans);

    // Fresh checker and summary cache: the proof must not replay any
    // verdict derived from the unrepaired tree.
    let checker2 = PolicyChecker::with_options(CheckOptions::default());
    let summaries2 = SummaryCache::new();
    let mut reanalyzed = Vec::new();
    for entry in entries {
        reanalyzed.push(analyze_page_policies_cached(
            &fixed_vfs, entry, config, &checker2, &summaries2,
        )?);
    }

    let discharged = plans
        .iter()
        .zip(&applied)
        .map(|(plan, &ok)| {
            if !ok {
                return false;
            }
            let Some(report) = reanalyzed.iter().find(|r| r.entry == plan.entry) else {
                return false;
            };
            !report.hotspots.iter().any(|(h, r)| {
                h.policy == plan.policy && r.findings.iter().any(|f| f.name == plan.source)
            })
        })
        .collect();

    Ok(FixOutcome {
        reports,
        plans,
        applied,
        discharged,
        fixed_vfs,
        reanalyzed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edit(file: &str, start: usize, end: usize, insert: &str) -> Edit {
        Edit {
            file: file.into(),
            start,
            end,
            insert: insert.into(),
        }
    }

    fn plan(edits: Vec<Edit>) -> FixPlan {
        FixPlan {
            entry: "a.php".into(),
            page: 0,
            hotspot: 0,
            finding: 0,
            policy: "sql".into(),
            source: "_GET[id]".into(),
            rule: "r".into(),
            strategy: None,
            edits,
            ambiguous: None,
        }
    }

    #[test]
    fn identical_plans_apply_once() {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "abcdef");
        let p = plan(vec![edit("a.php", 1, 3, "X")]);
        let (fixed, applied) = apply_plans(&vfs, &[p.clone(), p]);
        assert_eq!(applied, vec![true, true]);
        assert_eq!(fixed.get("a.php"), Some(b"aXdef" as &[u8]));
    }

    #[test]
    fn conflicting_overlap_skips_later_plan() {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "abcdef");
        let p1 = plan(vec![edit("a.php", 1, 4, "X")]);
        let p2 = plan(vec![edit("a.php", 2, 5, "Y")]);
        let (fixed, applied) = apply_plans(&vfs, &[p1, p2]);
        assert_eq!(applied, vec![true, false]);
        assert_eq!(fixed.get("a.php"), Some(b"aXef" as &[u8]));
    }

    #[test]
    fn disjoint_edits_compose() {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "abcdef");
        let p1 = plan(vec![edit("a.php", 0, 1, "A")]);
        let p2 = plan(vec![edit("a.php", 5, 6, "F"), edit("a.php", 3, 3, "-")]);
        let (fixed, applied) = apply_plans(&vfs, &[p1, p2]);
        assert_eq!(applied, vec![true, true]);
        assert_eq!(fixed.get("a.php"), Some(b"Abc-deF" as &[u8]));
    }

    #[test]
    fn ambiguous_plans_touch_nothing() {
        let mut vfs = Vfs::new();
        vfs.add("a.php", "abcdef");
        let mut p = plan(vec![edit("a.php", 0, 1, "A")]);
        p.ambiguous = Some("reason".into());
        let (fixed, applied) = apply_plans(&vfs, &[p]);
        assert_eq!(applied, vec![false]);
        assert_eq!(fixed.get("a.php"), Some(b"abcdef" as &[u8]));
    }
}
