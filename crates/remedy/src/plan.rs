//! Fix planning: turning one finding plus its checker evidence into a
//! deterministic rewrite plan — or an explicit reason why no
//! unambiguous rewrite exists.
//!
//! A plan is *unambiguous* when three textual facts hold (see
//! DESIGN.md §13): the finding's source name parses back to a literal
//! superglobal read (`$_GET['id']`, not a dynamic index), that read
//! has exactly one textual occurrence across the page's input files,
//! and the policy's fix template resolves — for the SQL class this
//! needs the hotspot's complete skeleton set to prove one consistent
//! marker context (quoted everywhere or unquoted everywhere).
//! Everything else is reported as [`FixPlan::ambiguous`] with the
//! failing fact, never guessed at.

use strtaint::report::PageReport;
use strtaint::Vfs;
use strtaint_policy::{fix_template, CheckKind, FixKind};

/// One textual edit: replace `[start, end)` of `file` with `insert`
/// (byte offsets into the original contents; `start == end` is a pure
/// insertion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Project-relative path of the edited file.
    pub file: String,
    /// Byte offset of the replaced region's start.
    pub start: usize,
    /// Byte offset of the replaced region's end (exclusive).
    pub end: usize,
    /// Replacement text.
    pub insert: String,
}

/// The repair shape a plan applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Wrap the source read in `function(...)`.
    Sanitize {
        /// The sanitizer function name.
        function: String,
    },
    /// Insert `if (!preg_match(pattern, $var)) { exit; }` ahead of the
    /// sink (hoisting the read into `$var` first when it was inline).
    Guard {
        /// The anchored allowlist pattern.
        pattern: String,
        /// The guarded variable name (no `$`).
        var: String,
    },
}

/// A deterministic rewrite plan for one finding.
#[derive(Debug, Clone)]
pub struct FixPlan {
    /// Entry of the page the finding was reported on.
    pub entry: String,
    /// Index of the page in the planned report slice.
    pub page: usize,
    /// Index of the hotspot within the page.
    pub hotspot: usize,
    /// Index of the finding within the hotspot.
    pub finding: usize,
    /// Policy id of the hotspot.
    pub policy: String,
    /// The finding's source name (e.g. `_GET[id]`).
    pub source: String,
    /// SARIF rule id of the finding.
    pub rule: String,
    /// The resolved repair shape, when unambiguous.
    pub strategy: Option<Strategy>,
    /// The edits realizing the strategy (empty when ambiguous).
    pub edits: Vec<Edit>,
    /// Why no unambiguous fix exists, when `edits` is empty.
    pub ambiguous: Option<String>,
}

impl FixPlan {
    /// `true` when the plan carries edits the apply step may use.
    pub fn is_applicable(&self) -> bool {
        self.ambiguous.is_none() && !self.edits.is_empty()
    }
}

/// Plans a fix for every finding of every report. Plans come back in
/// report order, one per finding, ambiguous ones included — callers
/// render the full list so a human sees *why* a finding was skipped.
pub fn plan_fixes(vfs: &Vfs, reports: &[PageReport]) -> Vec<FixPlan> {
    let mut plans = Vec::new();
    for (pi, p) in reports.iter().enumerate() {
        for (hi, (h, r)) in p.hotspots.iter().enumerate() {
            for (fi, f) in r.findings.iter().enumerate() {
                let mut plan = FixPlan {
                    entry: p.entry.clone(),
                    page: pi,
                    hotspot: hi,
                    finding: fi,
                    policy: h.policy.clone(),
                    source: f.name.clone(),
                    rule: f.kind.rule_id().to_owned(),
                    strategy: None,
                    edits: Vec::new(),
                    ambiguous: None,
                };
                if let Err(reason) = plan_one(vfs, p, &h.policy, f, r.skeletons_complete, &r.skeletons, &mut plan)
                {
                    plan.ambiguous = Some(reason);
                    plan.strategy = None;
                    plan.edits.clear();
                }
                plans.push(plan);
            }
        }
    }
    plans
}

fn plan_one(
    vfs: &Vfs,
    page: &PageReport,
    policy: &str,
    finding: &strtaint::Finding,
    skeletons_complete: bool,
    skeletons: &[Vec<u8>],
    plan: &mut FixPlan,
) -> Result<(), String> {
    if matches!(finding.kind, CheckKind::BudgetExhausted) {
        return Err("budget-exhausted finding carries no witness evidence to repair".into());
    }
    let (var, key) = parse_source(&finding.name)
        .ok_or_else(|| format!("source {} is not a literal superglobal read", finding.name))?;
    let occ = locate_occurrence(vfs, page, &var, &key)?;
    let template = fix_template(policy)
        .ok_or_else(|| format!("policy {policy} has no fix template"))?;
    match template.kind {
        FixKind::Sanitize { function } => {
            plan.strategy = Some(Strategy::Sanitize {
                function: function.to_owned(),
            });
            plan.edits = vec![wrap_edit(&occ, function)];
        }
        FixKind::SanitizeByContext { quoted, unquoted } => {
            if !skeletons_complete {
                return Err("skeleton evidence is incomplete; query context unknown".into());
            }
            let function = match marker_context(skeletons) {
                Some(SqlContext::Quoted) => quoted,
                Some(SqlContext::Unquoted) => unquoted,
                None => {
                    return Err(
                        "skeletons place the source in mixed or no query contexts".into()
                    )
                }
            };
            plan.strategy = Some(Strategy::Sanitize {
                function: function.to_owned(),
            });
            plan.edits = vec![wrap_edit(&occ, function)];
        }
        FixKind::Guard { pattern } => {
            let (edits, guard_var) = guard_edits(&occ, &key, pattern)?;
            plan.strategy = Some(Strategy::Guard {
                pattern: pattern.to_owned(),
                var: guard_var,
            });
            plan.edits = edits;
        }
    }
    Ok(())
}

/// Parses a checker source name (`_GET[id]`) back to a superglobal and
/// a literal key. Whole-array (`_GET[*]`) and dynamic-index sources
/// have no single textual read to rewrite and return `None`.
fn parse_source(name: &str) -> Option<(String, String)> {
    const SUPERGLOBALS: [&str; 5] = ["_GET", "_POST", "_REQUEST", "_COOKIE", "_SERVER"];
    let (var, rest) = name.split_once('[')?;
    let key = rest.strip_suffix(']')?;
    if !SUPERGLOBALS.contains(&var) {
        return None;
    }
    if key.is_empty()
        || !key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_')
    {
        return None;
    }
    Some((var.to_owned(), key.to_owned()))
}

/// One located source read.
struct Occurrence {
    file: String,
    contents: String,
    start: usize,
    len: usize,
}

impl Occurrence {
    fn text(&self) -> &str {
        &self.contents[self.start..self.start + self.len]
    }
}

/// Finds the single textual occurrence of `$VAR['key']` (either quote
/// style) across the page's input files. Zero or multiple occurrences
/// make the fix ambiguous: rewriting one of several reads repairs only
/// one dataflow and silently leaves the rest.
fn locate_occurrence(
    vfs: &Vfs,
    page: &PageReport,
    var: &str,
    key: &str,
) -> Result<Occurrence, String> {
    let needles = [
        format!("${var}['{key}']"),
        format!("${var}[\"{key}\"]"),
    ];
    let mut files: Vec<&str> = page.inputs.iter().map(String::as_str).collect();
    if files.is_empty() {
        files.push(&page.entry);
    }
    let mut found: Vec<Occurrence> = Vec::new();
    for file in files {
        let Some(bytes) = vfs.get(file) else { continue };
        let contents = String::from_utf8_lossy(bytes).into_owned();
        for needle in &needles {
            let mut from = 0;
            while let Some(pos) = contents[from..].find(needle.as_str()) {
                found.push(Occurrence {
                    file: file.to_owned(),
                    contents: contents.clone(),
                    start: from + pos,
                    len: needle.len(),
                });
                from += pos + needle.len();
            }
        }
    }
    match found.len() {
        0 => Err(format!(
            "no textual occurrence of ${var}['{key}'] in the page's input files"
        )),
        1 => Ok(found.remove(0)),
        n => Err(format!(
            "{n} textual occurrences of ${var}['{key}']; rewriting one would miss the others"
        )),
    }
}

fn wrap_edit(occ: &Occurrence, function: &str) -> Edit {
    Edit {
        file: occ.file.clone(),
        start: occ.start,
        end: occ.start + occ.len,
        insert: format!("{function}({})", occ.text()),
    }
}

/// Builds the guard-insertion edits. When the occurrence is already
/// the whole right-hand side of a simple assignment, the guard goes
/// after that statement on the assigned variable; otherwise the read
/// is hoisted into a fresh variable first.
fn guard_edits(occ: &Occurrence, key: &str, pattern: &str) -> Result<(Vec<Edit>, String), String> {
    let src = &occ.contents;
    let line_start = src[..occ.start].rfind('\n').map_or(0, |p| p + 1);
    let line_end = src[occ.start..]
        .find('\n')
        .map_or(src.len(), |p| occ.start + p);
    let line = &src[line_start..line_end];
    let indent: String = line
        .chars()
        .take_while(|c| *c == ' ' || *c == '\t')
        .collect();

    if let Some(var) = assignment_lhs(line, occ.text()) {
        // `$var = $_GET['k'];` — guard the existing variable.
        let mut guard = format!(
            "{indent}if (!preg_match('{pattern}', ${var})) {{\n{indent}    exit;\n{indent}}}\n"
        );
        let at = if line_end < src.len() {
            line_end + 1
        } else {
            // Assignment line is the last line and unterminated; open
            // a new line for the guard.
            guard.insert(0, '\n');
            src.len()
        };
        return Ok((
            vec![Edit {
                file: occ.file.clone(),
                start: at,
                end: at,
                insert: guard,
            }],
            var,
        ));
    }

    // Inline read — hoist it into a fresh variable ahead of the sink
    // statement, then guard that variable.
    let var = fresh_var(src, key)?;
    let hoist = format!(
        "{indent}${var} = {};\n{indent}if (!preg_match('{pattern}', ${var})) {{\n{indent}    exit;\n{indent}}}\n",
        occ.text()
    );
    Ok((
        vec![
            Edit {
                file: occ.file.clone(),
                start: line_start,
                end: line_start,
                insert: hoist,
            },
            Edit {
                file: occ.file.clone(),
                start: occ.start,
                end: occ.start + occ.len,
                insert: format!("${var}"),
            },
        ],
        var,
    ))
}

/// When `line` is exactly `$var = <occ>;`, returns `var`.
fn assignment_lhs(line: &str, occ_text: &str) -> Option<String> {
    let t = line.trim();
    let rest = t.strip_prefix('$')?;
    let var: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if var.is_empty() {
        return None;
    }
    let after = rest[var.len()..].trim_start();
    let rhs = after.strip_prefix('=')?.trim_start();
    let body = rhs.strip_suffix(';')?.trim_end();
    (body == occ_text).then_some(var)
}

/// Picks a variable name derived from the source key that does not yet
/// occur in the file.
fn fresh_var(src: &str, key: &str) -> Result<String, String> {
    let base: String = key
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let base = if base.starts_with(|c: char| c.is_ascii_digit()) {
        format!("v{base}")
    } else {
        base
    };
    for cand in [base.clone(), format!("{base}_ok"), format!("{base}_checked")] {
        if !src.contains(&format!("${cand}")) {
            return Ok(cand);
        }
    }
    Err(format!("no fresh variable name derivable from key {key}"))
}

/// Lowers the applicable plans into the SARIF fix descriptors the core
/// renderer attaches to results (`fixes` / `artifactChanges` /
/// `replacements`). Regions are computed against the *original* file
/// contents in `vfs` — SARIF consumers apply fixes to the unrepaired
/// tree.
pub fn to_result_fixes(vfs: &Vfs, plans: &[FixPlan]) -> Vec<strtaint::render::ResultFix> {
    let mut out = Vec::new();
    for plan in plans.iter().filter(|p| p.is_applicable()) {
        let description = match &plan.strategy {
            Some(Strategy::Sanitize { function }) => {
                format!("Wrap the tainted read of {} in {}()", plan.source, function)
            }
            Some(Strategy::Guard { pattern, var }) => format!(
                "Insert an anchored allowlist guard {} on ${} before the sink",
                pattern, var
            ),
            None => continue,
        };
        let mut changes: Vec<strtaint::render::FixChange> = Vec::new();
        for e in &plan.edits {
            let Some(bytes) = vfs.get(&e.file) else { continue };
            let (sl, sc) = line_col(bytes, e.start);
            let (el, ec) = line_col(bytes, e.end);
            let replacement = strtaint::render::FixReplacement {
                start_line: sl,
                start_col: sc,
                end_line: el,
                end_col: ec,
                text: e.insert.clone(),
            };
            match changes.iter_mut().find(|c| c.file == e.file) {
                Some(c) => c.replacements.push(replacement),
                None => changes.push(strtaint::render::FixChange {
                    file: e.file.clone(),
                    replacements: vec![replacement],
                }),
            }
        }
        out.push(strtaint::render::ResultFix {
            page: plan.page,
            hotspot: plan.hotspot,
            finding: plan.finding,
            description,
            changes,
        });
    }
    out
}

/// 1-based `(line, column)` of a byte offset.
fn line_col(src: &[u8], offset: usize) -> (u32, u32) {
    let mut line = 1u32;
    let mut col = 1u32;
    for &b in &src[..offset.min(src.len())] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// The SQL query context a hotspot's skeletons prove for the marker.
enum SqlContext {
    Quoted,
    Unquoted,
}

/// Scans every skeleton, tracking single-quote string state (with
/// backslash escapes), and classifies the marker positions. `None`
/// when the contexts disagree or no marker appears.
fn marker_context(skeletons: &[Vec<u8>]) -> Option<SqlContext> {
    let mut quoted = false;
    let mut unquoted = false;
    for sk in skeletons {
        let mut in_str = false;
        let mut esc = false;
        for &b in sk {
            if esc {
                esc = false;
                continue;
            }
            match b {
                b'\\' if in_str => esc = true,
                b'\'' => in_str = !in_str,
                m if m == strtaint_sql::VAR_MARKER => {
                    if in_str {
                        quoted = true;
                    } else {
                        unquoted = true;
                    }
                }
                _ => {}
            }
        }
    }
    match (quoted, unquoted) {
        (true, false) => Some(SqlContext::Quoted),
        (false, true) => Some(SqlContext::Unquoted),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_names_parse() {
        assert_eq!(
            parse_source("_GET[id]"),
            Some(("_GET".into(), "id".into()))
        );
        assert!(parse_source("_GET[*]").is_none());
        assert!(parse_source("index").is_none());
        assert!(parse_source("_GET[a'b]").is_none());
        assert!(parse_source("local").is_none());
    }

    #[test]
    fn marker_context_classifies() {
        let m = strtaint_sql::VAR_MARKER;
        let quoted = vec![[b"SELECT '" as &[u8], &[m], b"'"].concat()];
        assert!(matches!(marker_context(&quoted), Some(SqlContext::Quoted)));
        let bare = vec![[b"SELECT " as &[u8], &[m]].concat()];
        assert!(matches!(marker_context(&bare), Some(SqlContext::Unquoted)));
        let mixed = vec![quoted[0].clone(), bare[0].clone()];
        assert!(marker_context(&mixed).is_none());
        assert!(marker_context(&[b"SELECT 1".to_vec()]).is_none());
    }

    #[test]
    fn assignment_lhs_detects_simple_statements() {
        assert_eq!(
            assignment_lhs("$f = $_GET['f'];", "$_GET['f']"),
            Some("f".into())
        );
        assert_eq!(
            assignment_lhs("  $page = $_GET['p'];  ", "$_GET['p']"),
            Some("page".into())
        );
        assert!(assignment_lhs("$f = trim($_GET['f']);", "$_GET['f']").is_none());
        assert!(assignment_lhs("system($_GET['f']);", "$_GET['f']").is_none());
    }
}
