//! **strtaint** — a sound and precise static analysis for SQL command
//! injection vulnerabilities in PHP web applications.
//!
//! This crate is the public entry point of a from-scratch reproduction
//! of *Sound and Precise Analysis of Web Applications for Injection
//! Vulnerabilities* (Wassermann & Su, PLDI 2007). The pipeline has the
//! paper's two phases:
//!
//! 1. **String-taint analysis** (`strtaint-analysis`): conservatively
//!    characterizes the SQL query strings a page can generate as a
//!    context-free grammar whose nonterminals carry `direct`/`indirect`
//!    taint labels, modeling sanitizers as finite-state transducers and
//!    regex conditionals as grammar–automaton intersections.
//! 2. **Policy conformance** (`strtaint-checker`): checks that every
//!    tainted subgrammar is *syntactically confined* — derivable from a
//!    single symbol of the reference SQL grammar in every query context
//!    (Definition 2.3). Violations are reported with witness strings;
//!    no reports means the page is verified (Theorem 3.4).
//!
//! # Examples
//!
//! The paper's Figure 2 vulnerability end to end:
//!
//! ```
//! use strtaint::{analyze_page, Config, Vfs};
//!
//! let mut vfs = Vfs::new();
//! vfs.add("useredit.php", r#"<?php
//! isset($_GET['userid']) ?
//!     $userid = $_GET['userid'] : $userid = '';
//! if (!eregi('[0-9]+', $userid)) {
//!     exit;
//! }
//! $getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
//! "#);
//! let report = analyze_page(&vfs, "useredit.php", &Config::default()).unwrap();
//! assert!(!report.is_verified(), "the unanchored eregi is a SQLCIV");
//!
//! // With the anchored check the same page verifies:
//! let mut fixed = Vfs::new();
//! fixed.add("useredit.php", r#"<?php
//! isset($_GET['userid']) ?
//!     $userid = $_GET['userid'] : $userid = '';
//! if (!preg_match('/^[0-9]+$/', $userid)) {
//!     exit;
//! }
//! $getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
//! "#);
//! let report = analyze_page(&fixed, "useredit.php", &Config::default()).unwrap();
//! assert!(report.is_verified());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;

use std::time::Instant;

pub use strtaint_analysis::{AnalyzeError, Config, Hotspot, Vfs};
pub use strtaint_checker::{CheckKind, CheckOptions, Checker, Finding, HotspotReport};
pub use strtaint_grammar::{Cfg, NtId, Taint};

pub use report::{AppReport, PageReport};

/// Analyzes one web page (top-level PHP file) and checks every hotspot.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse. Problems in included files become warnings on the report.
pub fn analyze_page(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
) -> Result<PageReport, AnalyzeError> {
    analyze_page_with(vfs, entry, config, &Checker::new())
}

/// Like [`analyze_page`], reusing a prebuilt [`Checker`] (its automata
/// are page-independent).
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_with(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    checker: &Checker,
) -> Result<PageReport, AnalyzeError> {
    let t0 = Instant::now();
    let analysis = strtaint_analysis::analyze(vfs, entry, config)?;
    let analysis_time = t0.elapsed();

    let t1 = Instant::now();
    let mut hotspots = Vec::new();
    for h in &analysis.hotspots {
        let r = checker.check_hotspot(&analysis.cfg, h.root);
        hotspots.push((h.clone(), r));
    }
    let check_time = t1.elapsed();

    // Grammar size restricted to the query grammars (Table 1 columns).
    let mut reachable = vec![false; analysis.cfg.num_nonterminals()];
    for h in &analysis.hotspots {
        for (i, r) in analysis.cfg.reachable(h.root).into_iter().enumerate() {
            reachable[i] = reachable[i] || r;
        }
    }
    let grammar_nonterminals = reachable.iter().filter(|&&b| b).count();
    let grammar_productions = analysis
        .cfg
        .nonterminals()
        .filter(|id| reachable[id.index()])
        .map(|id| analysis.cfg.productions(id).len())
        .sum();

    Ok(PageReport {
        entry: entry.to_owned(),
        hotspots,
        grammar_nonterminals,
        grammar_productions,
        analysis_time,
        check_time,
        warnings: analysis.warnings,
        unmodeled: analysis.unmodeled.into_iter().collect(),
        files_analyzed: analysis.files_analyzed,
    })
}

/// Analyzes one web page for **cross-site scripting**: every `echo`
/// sink's emitted HTML language is checked for tainted substrings that
/// can introduce markup — the same technique as the SQLCIV analysis
/// with an HTML-context automaton in place of the SQL machinery (the
/// extension the paper names as future work, §7).
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_xss(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
) -> Result<PageReport, AnalyzeError> {
    let t0 = Instant::now();
    let analysis = strtaint_analysis::analyze(vfs, entry, config)?;
    let analysis_time = t0.elapsed();

    let t1 = Instant::now();
    let checker = strtaint_checker::XssChecker::new();
    let mut hotspots = Vec::new();
    for h in &analysis.echo_sinks {
        let r = checker.check_echo(&analysis.cfg, h.root);
        hotspots.push((h.clone(), r));
    }
    let check_time = t1.elapsed();

    let mut reachable = vec![false; analysis.cfg.num_nonterminals()];
    for h in &analysis.echo_sinks {
        for (i, r) in analysis.cfg.reachable(h.root).into_iter().enumerate() {
            reachable[i] = reachable[i] || r;
        }
    }
    let grammar_nonterminals = reachable.iter().filter(|&&b| b).count();
    let grammar_productions = analysis
        .cfg
        .nonterminals()
        .filter(|id| reachable[id.index()])
        .map(|id| analysis.cfg.productions(id).len())
        .sum();

    Ok(PageReport {
        entry: entry.to_owned(),
        hotspots,
        grammar_nonterminals,
        grammar_productions,
        analysis_time,
        check_time,
        warnings: analysis.warnings,
        unmodeled: analysis.unmodeled.into_iter().collect(),
        files_analyzed: analysis.files_analyzed,
    })
}

/// Analyzes a whole application: each entry is a page's top-level file
/// (the paper analyzes every page of each subject).
///
/// Pages that fail to parse are skipped with a synthetic warning page.
pub fn analyze_app(name: &str, vfs: &Vfs, entries: &[&str], config: &Config) -> AppReport {
    let checker = Checker::new();
    let mut pages = Vec::new();
    for &e in entries {
        match analyze_page_with(vfs, e, config, &checker) {
            Ok(p) => pages.push(p),
            Err(err) => pages.push(PageReport {
                entry: e.to_owned(),
                hotspots: Vec::new(),
                grammar_nonterminals: 0,
                grammar_productions: 0,
                analysis_time: Default::default(),
                check_time: Default::default(),
                warnings: vec![format!("page skipped: {err}")],
                unmodeled: Vec::new(),
                files_analyzed: 0,
            }),
        }
    }
    AppReport {
        name: name.to_owned(),
        files: vfs.len(),
        lines: vfs.total_lines(),
        pages,
    }
}

/// Like [`analyze_app`], analyzing pages on worker threads — the
/// "concurrent executions of the analyzer" speedup the paper suggests
/// in §5.3 (pages are independent; each re-analyzes its includes).
pub fn analyze_app_parallel(
    name: &str,
    vfs: &Vfs,
    entries: &[&str],
    config: &Config,
    workers: usize,
) -> AppReport {
    let checker = Checker::new();
    let workers = workers.max(1).min(entries.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<PageReport>> = Vec::new();
    slots.resize_with(entries.len(), || None);
    let slots = std::sync::Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= entries.len() {
                    break;
                }
                let page = match analyze_page_with(vfs, entries[i], config, &checker) {
                    Ok(p) => p,
                    Err(err) => PageReport {
                        entry: entries[i].to_owned(),
                        hotspots: Vec::new(),
                        grammar_nonterminals: 0,
                        grammar_productions: 0,
                        analysis_time: Default::default(),
                        check_time: Default::default(),
                        warnings: vec![format!("page skipped: {err}")],
                        unmodeled: Vec::new(),
                        files_analyzed: 0,
                    },
                };
                slots.lock().expect("no panics while holding the lock")[i] = Some(page);
            });
        }
    });

    let pages = slots
        .into_inner()
        .expect("workers finished")
        .into_iter()
        .map(|p| p.expect("every slot filled"))
        .collect();
    AppReport {
        name: name.to_owned(),
        files: vfs.len(),
        lines: vfs.total_lines(),
        pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_safe_page() {
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            "<?php $r = $DB->query(\"SELECT * FROM t WHERE id=1\");",
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(r.is_verified());
        assert_eq!(r.hotspots.len(), 1);
    }

    #[test]
    fn unsanitized_get_is_reported() {
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$id = $_GET['id'];
$r = $DB->query("SELECT * FROM t WHERE id='$id'");
"#,
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(!r.is_verified());
        let findings: Vec<_> = r.findings().collect();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.taint.is_direct());
    }

    #[test]
    fn addslashes_in_quotes_verifies() {
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$name = addslashes($_POST['name']);
$r = $DB->query("SELECT * FROM u WHERE name='$name'");
"#,
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(r.is_verified(), "{r}");
    }

    #[test]
    fn addslashes_unquoted_numeric_context_reported() {
        // The taint-analysis blind spot from the paper's introduction:
        // escape_quotes-style sanitization does NOT protect an unquoted
        // numeric position.
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$id = addslashes($_GET['id']);
$r = $DB->query("SELECT * FROM t WHERE id=$id");
"#,
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(!r.is_verified(), "escaped-but-unquoted must be flagged");
    }

    #[test]
    fn missing_entry_errors() {
        let vfs = Vfs::new();
        assert!(analyze_page(&vfs, "nope.php", &Config::default()).is_err());
    }

    #[test]
    fn app_aggregation_dedups() {
        let mut vfs = Vfs::new();
        vfs.add(
            "lib.php",
            r#"<?php
function get_user($id) {
    global $DB;
    return $DB->query("SELECT * FROM u WHERE id='" . $id . "'");
}
"#,
        );
        for page in ["p1.php", "p2.php"] {
            vfs.add(
                page,
                r#"<?php
include('lib.php');
$u = get_user($_GET['id']);
"#,
            );
        }
        let app = analyze_app("demo", &vfs, &["p1.php", "p2.php"], &Config::default());
        // Same vulnerable hotspot (lib.php) reached from two pages:
        // counted once.
        assert_eq!(app.distinct_findings().len(), 1);
        assert_eq!(app.direct_findings().len(), 1);
        assert!(app.indirect_findings().is_empty());
    }
}
