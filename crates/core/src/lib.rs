//! **strtaint** — a sound and precise static analysis for SQL command
//! injection vulnerabilities in PHP web applications.
//!
//! This crate is the public entry point of a from-scratch reproduction
//! of *Sound and Precise Analysis of Web Applications for Injection
//! Vulnerabilities* (Wassermann & Su, PLDI 2007). The pipeline has the
//! paper's two phases:
//!
//! 1. **String-taint analysis** (`strtaint-analysis`): conservatively
//!    characterizes the SQL query strings a page can generate as a
//!    context-free grammar whose nonterminals carry `direct`/`indirect`
//!    taint labels, modeling sanitizers as finite-state transducers and
//!    regex conditionals as grammar–automaton intersections.
//! 2. **Policy conformance** (`strtaint-checker`): checks that every
//!    tainted subgrammar is *syntactically confined* — derivable from a
//!    single symbol of the reference SQL grammar in every query context
//!    (Definition 2.3). Violations are reported with witness strings;
//!    no reports means the page is verified (Theorem 3.4).
//!
//! # Examples
//!
//! The paper's Figure 2 vulnerability end to end:
//!
//! ```
//! use strtaint::{analyze_page, Config, Vfs};
//!
//! let mut vfs = Vfs::new();
//! vfs.add("useredit.php", r#"<?php
//! isset($_GET['userid']) ?
//!     $userid = $_GET['userid'] : $userid = '';
//! if (!eregi('[0-9]+', $userid)) {
//!     exit;
//! }
//! $getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
//! "#);
//! let report = analyze_page(&vfs, "useredit.php", &Config::default()).unwrap();
//! assert!(!report.is_verified(), "the unanchored eregi is a SQLCIV");
//!
//! // With the anchored check the same page verifies:
//! let mut fixed = Vfs::new();
//! fixed.add("useredit.php", r#"<?php
//! isset($_GET['userid']) ?
//!     $userid = $_GET['userid'] : $userid = '';
//! if (!preg_match('/^[0-9]+$/', $userid)) {
//!     exit;
//! }
//! $getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
//! "#);
//! let report = analyze_page(&fixed, "useredit.php", &Config::default()).unwrap();
//! assert!(report.is_verified());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod render;
pub mod report;

use std::time::Instant;

pub use strtaint_analysis::{AnalyzeError, Config, Hotspot, Provenance, SummaryCache, Vfs};
pub use strtaint_checker::{
    CheckKind, CheckOptions, Checker, EngineStats, Finding, HotspotReport, PolicyChecker,
};
pub use strtaint_grammar::{Budget, Cfg, DegradeAction, Degradation, NtId, Resource, Taint};
pub use strtaint_policy as policy;

/// Worker-thread count for checking the hotspots of one page — the
/// machine's available parallelism (hotspots are independent given the
/// immutable grammar; see `Checker::check_hotspots_with`).
fn hotspot_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub use report::{AppReport, PageReport};

/// Analyzes one web page (top-level PHP file) and checks every hotspot.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse. Problems in included files become warnings on the report.
pub fn analyze_page(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
) -> Result<PageReport, AnalyzeError> {
    analyze_page_with(vfs, entry, config, &Checker::new())
}

/// Like [`analyze_page`], reusing a prebuilt [`Checker`] (its automata
/// are page-independent).
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_with(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    checker: &Checker,
) -> Result<PageReport, AnalyzeError> {
    let summaries = SummaryCache::new();
    analyze_page_cached(vfs, entry, config, checker, &summaries)
}

/// Like [`analyze_page_with`], sharing a caller-owned [`SummaryCache`]
/// so AST→IR lowering of files reached by many pages (shared includes)
/// happens once per app instead of once per page. The app drivers
/// ([`analyze_app`], [`analyze_app_parallel`]) use this internally; the
/// reports are identical to the uncached path.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_cached(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    checker: &Checker,
    summaries: &SummaryCache,
) -> Result<PageReport, AnalyzeError> {
    // One budget covers both phases: the deadline clock starts here and
    // the fuel pool is shared between analysis and checking.
    let _span = strtaint_obs::Span::enter("page", entry);
    let budget = config.page_budget();
    let t0 = Instant::now();
    let analysis = strtaint_analysis::analyze_cached(vfs, entry, config, &budget, summaries)?;
    let analysis_time = t0.elapsed();

    let t1 = Instant::now();
    // All hotspots of the page are checked in one parallel batch
    // sharing a prepared-grammar cache; reports come back in program
    // order, identical to the serial loop. The cross-page query cache
    // is namespaced by the config fingerprint so memoized verdicts
    // never leak across configs (same rule the artifact store applies).
    checker.set_query_scope(config.fingerprint());
    let roots: Vec<NtId> = analysis.hotspots.iter().map(|h| h.root).collect();
    let reports = checker.check_hotspots_with(&analysis.cfg, &roots, &budget, hotspot_workers());
    let mut hotspots = Vec::new();
    for (h, mut r) in analysis.hotspots.iter().zip(reports) {
        if let Some(span) = h.provenance.arg_span {
            for f in &mut r.findings {
                f.at = Some((span.line, span.col));
            }
        }
        // Skeleton evidence rides on every report (fix planning and
        // guard profiles consume it downstream); the prepared memo
        // makes this a warm lookup after the check above.
        let (skeletons, complete) = checker.skeletons_for(&analysis.cfg, h.root);
        r.skeletons = skeletons;
        r.skeletons_complete = complete;
        hotspots.push((h.clone(), r));
    }
    let check_time = t1.elapsed();

    // Grammar size restricted to the query grammars (Table 1 columns).
    let mut reachable = vec![false; analysis.cfg.num_nonterminals()];
    for h in &analysis.hotspots {
        for (i, r) in analysis.cfg.reachable(h.root).into_iter().enumerate() {
            reachable[i] = reachable[i] || r;
        }
    }
    let grammar_nonterminals = reachable.iter().filter(|&&b| b).count();
    let grammar_productions = analysis
        .cfg
        .nonterminals()
        .filter(|id| reachable[id.index()])
        .map(|id| analysis.cfg.productions(id).len())
        .sum();

    Ok(PageReport {
        entry: entry.to_owned(),
        hotspots,
        grammar_nonterminals,
        grammar_productions,
        analysis_time,
        check_time,
        warnings: analysis.warnings,
        unmodeled: analysis.unmodeled.into_iter().collect(),
        files_analyzed: analysis.files_analyzed,
        inputs: analysis.inputs.into_iter().collect(),
        degradations: analysis.degradations,
        skipped: None,
    })
}

/// Analyzes one web page against the **enabled policy set**
/// (`Config::policies`): every sink the analysis recognized — SQL
/// hotspots, shell/path/eval sinks, and (when the `xss` policy is
/// enabled) `echo` sinks — is checked by the cascade its policy
/// defines, all in one parallel batch. With the default policy set
/// (`["sql"]`) this matches [`analyze_page`] finding for finding.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_policies(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
) -> Result<PageReport, AnalyzeError> {
    let summaries = SummaryCache::new();
    analyze_page_policies_cached(vfs, entry, config, &PolicyChecker::new(), &summaries)
}

/// Like [`analyze_page_policies`], reusing a prebuilt [`PolicyChecker`]
/// and a caller-owned [`SummaryCache`] across pages.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_policies_cached(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    checker: &PolicyChecker,
    summaries: &SummaryCache,
) -> Result<PageReport, AnalyzeError> {
    let _span = strtaint_obs::Span::enter("page", entry);
    let budget = config.page_budget();
    let t0 = Instant::now();
    let analysis = strtaint_analysis::analyze_cached(vfs, entry, config, &budget, summaries)?;
    let analysis_time = t0.elapsed();

    let t1 = Instant::now();
    // Sink sites in program order, echo sinks after (they are collected
    // separately by the analysis and only checked when `xss` is on).
    let mut sites: Vec<Hotspot> = analysis.hotspots.clone();
    if config.policies.iter().any(|p| p == policy::XSS_POLICY) {
        sites.extend(analysis.echo_sinks.iter().cloned());
    }
    let items: Vec<(NtId, String)> =
        sites.iter().map(|h| (h.root, h.policy.clone())).collect();
    // Namespace the cross-page query caches by config fingerprint
    // (see `analyze_page_cached`).
    checker.set_query_scope(config.fingerprint());
    let reports = checker.check_hotspots_with(&analysis.cfg, &items, &budget, hotspot_workers());
    let mut hotspots = Vec::new();
    for (h, mut r) in sites.iter().zip(reports) {
        if let Some(span) = h.provenance.arg_span {
            for f in &mut r.findings {
                f.at = Some((span.line, span.col));
            }
        }
        let (skeletons, complete) = checker.skeletons_for(&h.policy, &analysis.cfg, h.root);
        r.skeletons = skeletons;
        r.skeletons_complete = complete;
        hotspots.push((h.clone(), r));
    }
    let check_time = t1.elapsed();

    let mut reachable = vec![false; analysis.cfg.num_nonterminals()];
    for h in &sites {
        for (i, r) in analysis.cfg.reachable(h.root).into_iter().enumerate() {
            reachable[i] = reachable[i] || r;
        }
    }
    let grammar_nonterminals = reachable.iter().filter(|&&b| b).count();
    let grammar_productions = analysis
        .cfg
        .nonterminals()
        .filter(|id| reachable[id.index()])
        .map(|id| analysis.cfg.productions(id).len())
        .sum();

    Ok(PageReport {
        entry: entry.to_owned(),
        hotspots,
        grammar_nonterminals,
        grammar_productions,
        analysis_time,
        check_time,
        warnings: analysis.warnings,
        unmodeled: analysis.unmodeled.into_iter().collect(),
        files_analyzed: analysis.files_analyzed,
        inputs: analysis.inputs.into_iter().collect(),
        degradations: analysis.degradations,
        skipped: None,
    })
}

/// Analyzes one web page for **cross-site scripting**: every `echo`
/// sink's emitted HTML language is checked for tainted substrings that
/// can introduce markup — the same technique as the SQLCIV analysis
/// with an HTML-context automaton in place of the SQL machinery (the
/// extension the paper names as future work, §7).
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_xss(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
) -> Result<PageReport, AnalyzeError> {
    let summaries = SummaryCache::new();
    analyze_page_xss_cached(vfs, entry, config, &summaries)
}

/// Like [`analyze_page_xss`], sharing a caller-owned [`SummaryCache`]
/// across pages.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or fails to
/// parse.
pub fn analyze_page_xss_cached(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    summaries: &SummaryCache,
) -> Result<PageReport, AnalyzeError> {
    let _span = strtaint_obs::Span::enter("page", entry);
    let budget = config.page_budget();
    let t0 = Instant::now();
    let analysis = strtaint_analysis::analyze_cached(vfs, entry, config, &budget, summaries)?;
    let analysis_time = t0.elapsed();

    let t1 = Instant::now();
    let checker = strtaint_checker::XssChecker::new();
    checker.set_query_scope(config.fingerprint());
    let roots: Vec<NtId> = analysis.echo_sinks.iter().map(|h| h.root).collect();
    let reports = checker.check_echoes_with(&analysis.cfg, &roots, &budget, hotspot_workers());
    let mut hotspots = Vec::new();
    for (h, mut r) in analysis.echo_sinks.iter().zip(reports) {
        if let Some(span) = h.provenance.arg_span {
            for f in &mut r.findings {
                f.at = Some((span.line, span.col));
            }
        }
        let (skeletons, complete) = checker.skeletons_for(&analysis.cfg, h.root);
        r.skeletons = skeletons;
        r.skeletons_complete = complete;
        hotspots.push((h.clone(), r));
    }
    let check_time = t1.elapsed();

    let mut reachable = vec![false; analysis.cfg.num_nonterminals()];
    for h in &analysis.echo_sinks {
        for (i, r) in analysis.cfg.reachable(h.root).into_iter().enumerate() {
            reachable[i] = reachable[i] || r;
        }
    }
    let grammar_nonterminals = reachable.iter().filter(|&&b| b).count();
    let grammar_productions = analysis
        .cfg
        .nonterminals()
        .filter(|id| reachable[id.index()])
        .map(|id| analysis.cfg.productions(id).len())
        .sum();

    Ok(PageReport {
        entry: entry.to_owned(),
        hotspots,
        grammar_nonterminals,
        grammar_productions,
        analysis_time,
        check_time,
        warnings: analysis.warnings,
        unmodeled: analysis.unmodeled.into_iter().collect(),
        files_analyzed: analysis.files_analyzed,
        inputs: analysis.inputs.into_iter().collect(),
        degradations: analysis.degradations,
        skipped: None,
    })
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one page analysis with panic isolation: a panic inside the
/// analyzer or checker becomes a skipped page, not a crashed run.
fn isolated<F>(entry: &str, analyze: F) -> PageReport
where
    F: FnOnce() -> Result<PageReport, AnalyzeError> + std::panic::UnwindSafe,
{
    match std::panic::catch_unwind(analyze) {
        Ok(Ok(p)) => p,
        Ok(Err(err)) => PageReport::skipped_page(entry, format!("page skipped: {err}")),
        Err(payload) => PageReport::skipped_page(
            entry,
            format!("page skipped: analyzer panicked: {}", panic_message(&*payload)),
        ),
    }
}

/// Analyzes a whole application: each entry is a page's top-level file
/// (the paper analyzes every page of each subject).
///
/// Pages that fail to parse — or whose analysis panics — are skipped
/// with a synthetic report ([`PageReport::skipped_page`]); skipped
/// pages are never counted verified.
pub fn analyze_app(name: &str, vfs: &Vfs, entries: &[&str], config: &Config) -> AppReport {
    let checker = Checker::new();
    let summaries = SummaryCache::new();
    let pages = entries
        .iter()
        .map(|&e| {
            isolated(e, std::panic::AssertUnwindSafe(|| {
                analyze_page_cached(vfs, e, config, &checker, &summaries)
            }))
        })
        .collect();
    AppReport {
        name: name.to_owned(),
        files: vfs.len(),
        lines: vfs.total_lines(),
        pages,
        summary_hits: summaries.hits(),
        summary_misses: summaries.misses(),
    }
}

/// Like [`analyze_app`], analyzing pages on worker threads — the
/// "concurrent executions of the analyzer" speedup the paper suggests
/// in §5.3 (pages are independent; each re-analyzes its includes).
///
/// Fault isolation: each page runs under `catch_unwind`, so a panic in
/// one page yields a skipped [`PageReport`] for that page while every
/// other page completes normally. No lock is held across page analyses
/// (workers buffer results locally), so a worker fault can never poison
/// shared state.
pub fn analyze_app_parallel(
    name: &str,
    vfs: &Vfs,
    entries: &[&str],
    config: &Config,
    workers: usize,
) -> AppReport {
    let summaries = SummaryCache::new();
    analyze_app_parallel_cached(name, vfs, entries, config, workers, &summaries)
}

/// Like [`analyze_app_parallel`], sharing a caller-owned
/// [`SummaryCache`]: each file reached from several pages is parsed and
/// lowered to IR once, then instantiated per page. The cache is
/// thread-safe (lowering happens outside its lock), and the report's
/// `summary_hits`/`summary_misses` expose its effectiveness.
pub fn analyze_app_parallel_cached(
    name: &str,
    vfs: &Vfs,
    entries: &[&str],
    config: &Config,
    workers: usize,
    summaries: &SummaryCache,
) -> AppReport {
    let checker = Checker::new();
    let mut app = analyze_app_parallel_with(name, vfs, entries, workers, |vfs, entry| {
        analyze_page_cached(vfs, entry, config, &checker, summaries)
    });
    app.summary_hits = summaries.hits();
    app.summary_misses = summaries.misses();
    app
}

/// The engine behind [`analyze_app_parallel`], generic over the
/// per-page analysis so callers (and fault-injection tests) can
/// substitute their own. `analyze` runs under `catch_unwind`; a panic
/// or error produces a skipped page report in that page's slot.
pub fn analyze_app_parallel_with<F>(
    name: &str,
    vfs: &Vfs,
    entries: &[&str],
    workers: usize,
    analyze: F,
) -> AppReport
where
    F: Fn(&Vfs, &str) -> Result<PageReport, AnalyzeError> + Sync,
{
    let workers = workers.max(1).min(entries.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let analyze = &analyze;

    // Workers buffer (index, report) pairs locally; results are merged
    // after joining. No shared mutable state, hence nothing to poison.
    let mut produced: Vec<(usize, PageReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= entries.len() {
                            break;
                        }
                        let page = isolated(
                            entries[i],
                            std::panic::AssertUnwindSafe(|| analyze(vfs, entries[i])),
                        );
                        local.push((i, page));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker death is unreachable in practice (pages are
            // caught individually), but must not take down the run:
            // its pages fall through to the skipped-page backfill.
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });

    produced.sort_by_key(|&(i, _)| i);
    let mut pages: Vec<PageReport> = Vec::with_capacity(entries.len());
    let mut produced = produced.into_iter().peekable();
    for (i, &entry) in entries.iter().enumerate() {
        match produced.peek() {
            Some(&(j, _)) if j == i => {
                pages.push(produced.next().map(|(_, p)| p).expect("peeked entry exists"));
            }
            _ => pages.push(PageReport::skipped_page(
                entry,
                "page skipped: worker thread terminated abnormally".to_owned(),
            )),
        }
    }

    AppReport {
        name: name.to_owned(),
        files: vfs.len(),
        lines: vfs.total_lines(),
        pages,
        summary_hits: 0,
        summary_misses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_safe_page() {
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            "<?php $r = $DB->query(\"SELECT * FROM t WHERE id=1\");",
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(r.is_verified());
        assert_eq!(r.hotspots.len(), 1);
    }

    #[test]
    fn unsanitized_get_is_reported() {
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$id = $_GET['id'];
$r = $DB->query("SELECT * FROM t WHERE id='$id'");
"#,
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(!r.is_verified());
        let findings: Vec<_> = r.findings().collect();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].1.taint.is_direct());
    }

    #[test]
    fn addslashes_in_quotes_verifies() {
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$name = addslashes($_POST['name']);
$r = $DB->query("SELECT * FROM u WHERE name='$name'");
"#,
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(r.is_verified(), "{r}");
    }

    #[test]
    fn addslashes_unquoted_numeric_context_reported() {
        // The taint-analysis blind spot from the paper's introduction:
        // escape_quotes-style sanitization does NOT protect an unquoted
        // numeric position.
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$id = addslashes($_GET['id']);
$r = $DB->query("SELECT * FROM t WHERE id=$id");
"#,
        );
        let r = analyze_page(&vfs, "a.php", &Config::default()).unwrap();
        assert!(!r.is_verified(), "escaped-but-unquoted must be flagged");
    }

    #[test]
    fn missing_entry_errors() {
        let vfs = Vfs::new();
        assert!(analyze_page(&vfs, "nope.php", &Config::default()).is_err());
    }

    #[test]
    fn app_aggregation_dedups() {
        let mut vfs = Vfs::new();
        vfs.add(
            "lib.php",
            r#"<?php
function get_user($id) {
    global $DB;
    return $DB->query("SELECT * FROM u WHERE id='" . $id . "'");
}
"#,
        );
        for page in ["p1.php", "p2.php"] {
            vfs.add(
                page,
                r#"<?php
include('lib.php');
$u = get_user($_GET['id']);
"#,
            );
        }
        let app = analyze_app("demo", &vfs, &["p1.php", "p2.php"], &Config::default());
        // Same vulnerable hotspot (lib.php) reached from two pages:
        // counted once.
        assert_eq!(app.distinct_findings().len(), 1);
        assert_eq!(app.direct_findings().len(), 1);
        assert!(app.indirect_findings().is_empty());
    }

    #[test]
    fn missing_page_is_skipped_not_verified() {
        let mut vfs = Vfs::new();
        vfs.add("ok.php", "<?php $r = $DB->query(\"SELECT 1\");");
        let app = analyze_app("demo", &vfs, &["ok.php", "nope.php"], &Config::default());
        assert_eq!(app.pages.len(), 2);
        assert!(app.pages[0].is_verified());
        assert!(app.pages[1].skipped.is_some());
        assert!(!app.pages[1].is_verified(), "skipped is never verified");
        assert_eq!(app.skipped_pages(), 1);
        assert_eq!(app.files_analyzed(), 1, "skipped pages analyze no files");
    }

    #[test]
    fn worker_panic_isolated_to_its_page() {
        let mut vfs = Vfs::new();
        for p in ["a.php", "b.php", "c.php"] {
            vfs.add(p, "<?php $r = $DB->query(\"SELECT 1\");");
        }
        let config = Config::default();
        let checker = Checker::new();
        let app = analyze_app_parallel_with(
            "demo",
            &vfs,
            &["a.php", "b.php", "c.php"],
            2,
            |vfs, entry| {
                if entry == "b.php" {
                    panic!("injected fault for {entry}");
                }
                analyze_page_with(vfs, entry, &config, &checker)
            },
        );
        assert_eq!(app.pages.len(), 3);
        assert!(app.pages[0].is_verified());
        assert!(app.pages[2].is_verified());
        let skipped = app.pages[1].skipped.as_deref().expect("b.php skipped");
        assert!(skipped.contains("injected fault"), "{skipped}");
        assert!(!app.pages[1].is_verified());
        assert_eq!(app.skipped_pages(), 1);
    }

    #[test]
    fn fuel_exhaustion_never_verifies() {
        // This page verifies under an unlimited budget (see
        // `addslashes_in_quotes_verifies`); proving it costs fuel, so a
        // tiny budget trips mid-proof.
        let mut vfs = Vfs::new();
        vfs.add(
            "a.php",
            r#"<?php
$name = addslashes($_POST['name']);
$r = $DB->query("SELECT * FROM u WHERE name='$name'");
"#,
        );
        let config = Config {
            fuel: Some(5),
            ..Config::default()
        };
        let r = analyze_page(&vfs, "a.php", &config).unwrap();
        // The page is actually safe, but fuel ran out before the proof
        // finished: it must NOT be reported verified.
        assert!(!r.is_verified(), "budget trip must not claim verified");
        assert!(r.is_degraded(), "exhaustion must surface as a degradation");
        assert!(
            r.findings().count() > 0,
            "an unproven hotspot must carry a conservative finding"
        );
    }
}
