//! Report renderers shared by the CLI and the test suite.
//!
//! The SARIF and JSON writers live here (rather than in the CLI
//! binary) so the differential test `tests/obs_invariance.rs` can
//! render the same bytes the CLI would print and compare them across
//! tracing modes, and so the remediation layer can attach SARIF
//! `fixes` without re-implementing the result writer.

use crate::report::PageReport;
use std::fmt::Write as _;

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One SARIF replacement: delete the (possibly empty) region and
/// insert `text`. Lines and columns are 1-based; an insertion uses an
/// empty region (`start == end`).
#[derive(Debug, Clone)]
pub struct FixReplacement {
    /// 1-based start line of the deleted region.
    pub start_line: u32,
    /// 1-based start column of the deleted region.
    pub start_col: u32,
    /// 1-based end line of the deleted region (exclusive position).
    pub end_line: u32,
    /// 1-based end column of the deleted region (exclusive position).
    pub end_col: u32,
    /// The inserted content.
    pub text: String,
}

/// All replacements a fix applies to one artifact.
#[derive(Debug, Clone)]
pub struct FixChange {
    /// The artifact (project-relative path) the replacements edit.
    pub file: String,
    /// The replacements, in document order.
    pub replacements: Vec<FixReplacement>,
}

/// A rendered fix attached to one result, keyed by the result's
/// position in the report stream. The remediation layer lowers its
/// rewrite plans into this shape; keeping the type here avoids a
/// core → remedy dependency cycle.
#[derive(Debug, Clone)]
pub struct ResultFix {
    /// Index of the page in the rendered report slice.
    pub page: usize,
    /// Index of the hotspot within the page.
    pub hotspot: usize,
    /// Index of the finding within the hotspot.
    pub finding: usize,
    /// Human-readable description of the repair.
    pub description: String,
    /// The artifact changes, one per edited file.
    pub changes: Vec<FixChange>,
}

/// Renders `reports` as a SARIF 2.1.0 document (one run, one result
/// per finding) so findings annotate pull requests in standard CI
/// tooling. The CLI's `--sarif` prints exactly this string.
pub fn sarif(reports: &[PageReport]) -> String {
    sarif_with_fixes(reports, &[])
}

/// Like [`sarif`], attaching each entry of `fixes` to its result as a
/// SARIF `fixes` array (`artifactChanges`/`replacements`), the shape
/// editors and CI bots consume to offer one-click repairs. Fixes that
/// name a `(page, hotspot, finding)` triple not present in `reports`
/// are ignored.
pub fn sarif_with_fixes(reports: &[PageReport], fixes: &[ResultFix]) -> String {
    let mut out = String::new();
    let mut line = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    line("{");
    line("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",");
    line("  \"version\": \"2.1.0\",");
    line("  \"runs\": [{");
    line("    \"tool\": {\"driver\": {\"name\": \"strtaint\", \"informationUri\": \"https://example.invalid/strtaint\", \"version\": \"0.1.0\"}},");
    line("    \"results\": [");
    // Flatten findings with their (page, hotspot, finding) coordinates
    // so fixes can be keyed to results positionally.
    let mut all = Vec::new();
    for (pi, p) in reports.iter().enumerate() {
        for (hi, (h, r)) in p.hotspots.iter().enumerate() {
            for (fi, f) in r.findings.iter().enumerate() {
                all.push((pi, hi, fi, h, f));
            }
        }
    }
    for (i, (pi, hi, fi, h, f)) in all.iter().enumerate() {
        let msg = format!(
            "{} at {}: tainted source {} — {}{}",
            h.label,
            h.span,
            f.name,
            f.kind,
            f.witness
                .as_deref()
                .map(|w| {
                    // Render a capped witness honestly: the prefix is
                    // not the full counterexample.
                    format!(
                        " (witness: {}{})",
                        String::from_utf8_lossy(w),
                        if f.witness_truncated { "… [truncated]" } else { "" }
                    )
                })
                .unwrap_or_default()
        );
        line("      {");
        line(&format!("        \"ruleId\": \"{}\",", f.kind.rule_id()));
        line("        \"level\": \"error\",");
        line(&format!(
            "        \"message\": {{\"text\": \"{}\"}},",
            json_escape(&msg)
        ));
        // The truncation flag travels as a structured property, not
        // just prose in the message, so downstream tooling can filter
        // capped witnesses without parsing text.
        line(&format!(
            "        \"properties\": {{\"witnessTruncated\": {}}},",
            f.witness_truncated
        ));
        // Prefer the finding's IR provenance (the sink *argument*'s
        // span) over the hotspot's call span when the analysis
        // supplied one.
        let (ln, col) = f.at.unwrap_or((h.span.line, h.span.col));
        let fix = fixes
            .iter()
            .find(|x| x.page == *pi && x.hotspot == *hi && x.finding == *fi);
        line(&format!(
            "        \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {ln}, \"startColumn\": {col}}}}}}}]{}",
            json_escape(&h.file),
            if fix.is_some() { "," } else { "" }
        ));
        if let Some(fix) = fix {
            line("        \"fixes\": [{");
            line(&format!(
                "          \"description\": {{\"text\": \"{}\"}},",
                json_escape(&fix.description)
            ));
            line("          \"artifactChanges\": [");
            for (ci, c) in fix.changes.iter().enumerate() {
                line("            {");
                line(&format!(
                    "              \"artifactLocation\": {{\"uri\": \"{}\"}},",
                    json_escape(&c.file)
                ));
                line("              \"replacements\": [");
                for (ri, r) in c.replacements.iter().enumerate() {
                    line(&format!(
                        "                {{\"deletedRegion\": {{\"startLine\": {}, \"startColumn\": {}, \"endLine\": {}, \"endColumn\": {}}}, \"insertedContent\": {{\"text\": \"{}\"}}}}{}",
                        r.start_line,
                        r.start_col,
                        r.end_line,
                        r.end_col,
                        json_escape(&r.text),
                        if ri + 1 < c.replacements.len() { "," } else { "" }
                    ));
                }
                line("              ]");
                line(&format!(
                    "            }}{}",
                    if ci + 1 < fix.changes.len() { "," } else { "" }
                ));
            }
            line("          ]");
            line("        }]");
        }
        line(&format!(
            "      }}{}",
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    line("    ]");
    line("  }]");
    line("}");
    out
}

/// Renders `reports` as the CLI's `--json` document. The CLI prints
/// exactly this string; it lives here so renderer-agreement tests can
/// compare the JSON, SARIF, and text renderers as library calls.
/// `stats_rows` appends the CLI's `--stats` block when present.
pub fn json_report(reports: &[PageReport], stats_rows: Option<&[(String, u64)]>) -> String {
    let mut out = String::new();
    let mut line = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    line("{\"pages\": [");
    for (pi, p) in reports.iter().enumerate() {
        line("  {");
        line(&format!("    \"entry\": \"{}\",", json_escape(&p.entry)));
        line(&format!("    \"verified\": {},", p.is_verified()));
        line(&format!("    \"degraded\": {},", p.is_degraded()));
        line(&format!(
            "    \"skipped\": {},",
            p.skipped
                .as_deref()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .unwrap_or_else(|| "null".to_owned())
        ));
        line(&format!(
            "    \"grammar_nonterminals\": {},",
            p.grammar_nonterminals
        ));
        line(&format!(
            "    \"grammar_productions\": {},",
            p.grammar_productions
        ));
        line(&format!(
            "    \"analysis_ms\": {:.3},",
            p.analysis_time.as_secs_f64() * 1e3
        ));
        line(&format!(
            "    \"check_ms\": {:.3},",
            p.check_time.as_secs_f64() * 1e3
        ));
        line("    \"findings\": [");
        let findings: Vec<_> = p.findings().collect();
        for (fi, (h, f)) in findings.iter().enumerate() {
            let witness = f
                .witness
                .as_deref()
                .map(|w| format!("\"{}\"", json_escape(&String::from_utf8_lossy(w))))
                .unwrap_or_else(|| "null".to_owned());
            line(&format!(
                "      {{\"file\": \"{}\", \"line\": {}, \"sink\": \"{}\", \
                 \"source\": \"{}\", \"taint\": \"{}\", \"check\": \"{}\", \
                 \"witness\": {}, \"witness_truncated\": {}}}{}",
                json_escape(&h.file),
                h.span.line,
                json_escape(&h.label),
                json_escape(&f.name),
                f.taint,
                f.kind,
                witness,
                f.witness_truncated,
                if fi + 1 < findings.len() { "," } else { "" }
            ));
        }
        line("    ],");
        line("    \"degradations\": [");
        let degs: Vec<_> = p.all_degradations().collect();
        for (di, d) in degs.iter().enumerate() {
            line(&format!(
                "      {{\"site\": \"{}\", \"resource\": \"{}\", \"action\": \"{}\"}}{}",
                json_escape(&d.site),
                d.resource,
                d.action,
                if di + 1 < degs.len() { "," } else { "" }
            ));
        }
        line("    ],");
        line("    \"warnings\": [");
        for (wi, w) in p.warnings.iter().enumerate() {
            line(&format!(
                "      \"{}\"{}",
                json_escape(w),
                if wi + 1 < p.warnings.len() { "," } else { "" }
            ));
        }
        line("    ]");
        line(&format!(
            "  }}{}",
            if pi + 1 < reports.len() { "," } else { "" }
        ));
    }
    match stats_rows {
        None => line("]}"),
        Some(rows) => {
            line("],");
            line("\"stats\": {");
            for (i, (name, value)) in rows.iter().enumerate() {
                line(&format!(
                    "  \"{name}\": {value}{}",
                    if i + 1 < rows.len() { "," } else { "" }
                ));
            }
            line("}}");
        }
    }
    out
}
