//! Report renderers shared by the CLI and the test suite.
//!
//! The SARIF writer lives here (rather than in the CLI binary) so the
//! differential test `tests/obs_invariance.rs` can render the same
//! bytes the CLI would print and compare them across tracing modes.

use crate::report::PageReport;
use std::fmt::Write as _;

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `reports` as a SARIF 2.1.0 document (one run, one result
/// per finding) so findings annotate pull requests in standard CI
/// tooling. The CLI's `--sarif` prints exactly this string.
pub fn sarif(reports: &[PageReport]) -> String {
    let mut out = String::new();
    let mut line = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    line("{");
    line("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",");
    line("  \"version\": \"2.1.0\",");
    line("  \"runs\": [{");
    line("    \"tool\": {\"driver\": {\"name\": \"strtaint\", \"informationUri\": \"https://example.invalid/strtaint\", \"version\": \"0.1.0\"}},");
    line("    \"results\": [");
    let all: Vec<_> = reports.iter().flat_map(|p| p.findings()).collect();
    for (i, (h, f)) in all.iter().enumerate() {
        let msg = format!(
            "{} at {}: tainted source {} — {}{}",
            h.label,
            h.span,
            f.name,
            f.kind,
            f.witness
                .as_deref()
                .map(|w| {
                    // Render a capped witness honestly: the prefix is
                    // not the full counterexample.
                    format!(
                        " (witness: {}{})",
                        String::from_utf8_lossy(w),
                        if f.witness_truncated { "… [truncated]" } else { "" }
                    )
                })
                .unwrap_or_default()
        );
        line("      {");
        line(&format!("        \"ruleId\": \"{}\",", f.kind.rule_id()));
        line("        \"level\": \"error\",");
        line(&format!(
            "        \"message\": {{\"text\": \"{}\"}},",
            json_escape(&msg)
        ));
        // Prefer the finding's IR provenance (the sink *argument*'s
        // span) over the hotspot's call span when the analysis
        // supplied one.
        let (ln, col) = f.at.unwrap_or((h.span.line, h.span.col));
        line(&format!(
            "        \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {ln}, \"startColumn\": {col}}}}}}}]",
            json_escape(&h.file)
        ));
        line(&format!(
            "      }}{}",
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    line("    ]");
    line("  }]");
    line("}");
    out
}
