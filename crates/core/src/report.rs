//! End-to-end report types.

use std::fmt;
use std::time::Duration;

use strtaint_analysis::Hotspot;
use strtaint_checker::{Finding, HotspotReport};

/// Analysis + checking results for one web page (one top-level PHP
/// file, the unit of analysis in the paper §5.3).
#[derive(Debug)]
pub struct PageReport {
    /// The page's top-level file.
    pub entry: String,
    /// Per-hotspot conformance reports, in program order.
    pub hotspots: Vec<(Hotspot, HotspotReport)>,
    /// `|V|` of the query grammars (nonterminals reachable from any
    /// hotspot root — the paper's Table 1 "Grammar Size" column).
    pub grammar_nonterminals: usize,
    /// `|R|` of the query grammars.
    pub grammar_productions: usize,
    /// Wall-clock time of the string-taint analysis phase.
    pub analysis_time: Duration,
    /// Wall-clock time of the SQLCIV checking phase.
    pub check_time: Duration,
    /// Analyzer warnings (unresolved includes, widenings, …).
    pub warnings: Vec<String>,
    /// Builtins that fell back to Σ*.
    pub unmodeled: Vec<String>,
    /// Files traversed (recounting repeated includes).
    pub files_analyzed: usize,
}

impl PageReport {
    /// `true` if every hotspot on the page was verified.
    pub fn is_verified(&self) -> bool {
        self.hotspots.iter().all(|(_, r)| r.is_safe())
    }

    /// Iterates over all findings with their hotspots.
    pub fn findings(&self) -> impl Iterator<Item = (&Hotspot, &Finding)> {
        self.hotspots
            .iter()
            .flat_map(|(h, r)| r.findings.iter().map(move |f| (h, f)))
    }
}

impl fmt::Display for PageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} hotspot(s), |V|={}, |R|={}, analysis {:?}, check {:?}",
            self.entry,
            self.hotspots.len(),
            self.grammar_nonterminals,
            self.grammar_productions,
            self.analysis_time,
            self.check_time
        )?;
        for (h, r) in &self.hotspots {
            if r.is_safe() {
                writeln!(f, "  {} @ {}:{} — verified", h.label, h.file, h.span)?;
            } else {
                writeln!(f, "  {} @ {}:{} — {}", h.label, h.file, h.span, r)?;
            }
        }
        Ok(())
    }
}

/// Aggregated results for a whole application (many pages) — one row
/// of the paper's Table 1.
#[derive(Debug, Default)]
pub struct AppReport {
    /// Application name.
    pub name: String,
    /// Number of files in the project.
    pub files: usize,
    /// Total source lines.
    pub lines: usize,
    /// Per-page reports.
    pub pages: Vec<PageReport>,
}

impl AppReport {
    /// Distinct findings across pages, deduplicated by hotspot site and
    /// source name (one vulnerability may be reachable from several
    /// pages).
    pub fn distinct_findings(&self) -> Vec<(&Hotspot, &Finding)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for p in &self.pages {
            for (h, f) in p.findings() {
                let key = (h.file.clone(), h.span.line, f.name.clone());
                if seen.insert(key) {
                    out.push((h, f));
                }
            }
        }
        out
    }

    /// Findings whose taint includes `direct` (Table 1's "direct"
    /// errors; direct wins over indirect when both are set).
    pub fn direct_findings(&self) -> Vec<(&Hotspot, &Finding)> {
        self.distinct_findings()
            .into_iter()
            .filter(|(_, f)| f.taint.is_direct())
            .collect()
    }

    /// Findings whose taint is indirect only.
    pub fn indirect_findings(&self) -> Vec<(&Hotspot, &Finding)> {
        self.distinct_findings()
            .into_iter()
            .filter(|(_, f)| f.taint.is_indirect() && !f.taint.is_direct())
            .collect()
    }

    /// Summed grammar size across pages (`|V|`, `|R|`).
    pub fn grammar_size(&self) -> (usize, usize) {
        (
            self.pages.iter().map(|p| p.grammar_nonterminals).sum(),
            self.pages.iter().map(|p| p.grammar_productions).sum(),
        )
    }

    /// Total string-analysis time.
    pub fn analysis_time(&self) -> Duration {
        self.pages.iter().map(|p| p.analysis_time).sum()
    }

    /// Total checking time.
    pub fn check_time(&self) -> Duration {
        self.pages.iter().map(|p| p.check_time).sum()
    }
}

impl fmt::Display for AppReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (v, r) = self.grammar_size();
        writeln!(
            f,
            "{}: {} files, {} lines, |V|={v}, |R|={r}, analysis {:?}, check {:?}",
            self.name,
            self.files,
            self.lines,
            self.analysis_time(),
            self.check_time()
        )?;
        writeln!(
            f,
            "  direct findings: {}, indirect findings: {}",
            self.direct_findings().len(),
            self.indirect_findings().len()
        )
    }
}
