//! End-to-end report types.

use std::fmt;
use std::time::Duration;

use strtaint_analysis::Hotspot;
use strtaint_checker::{EngineStats, Finding, HotspotReport};
use strtaint_grammar::Degradation;

/// Analysis + checking results for one web page (one top-level PHP
/// file, the unit of analysis in the paper §5.3).
#[derive(Debug)]
pub struct PageReport {
    /// The page's top-level file.
    pub entry: String,
    /// Per-hotspot conformance reports, in program order.
    pub hotspots: Vec<(Hotspot, HotspotReport)>,
    /// `|V|` of the query grammars (nonterminals reachable from any
    /// hotspot root — the paper's Table 1 "Grammar Size" column).
    pub grammar_nonterminals: usize,
    /// `|R|` of the query grammars.
    pub grammar_productions: usize,
    /// Wall-clock time of the string-taint analysis phase.
    pub analysis_time: Duration,
    /// Wall-clock time of the SQLCIV checking phase.
    pub check_time: Duration,
    /// Analyzer warnings (unresolved includes, widenings, …).
    pub warnings: Vec<String>,
    /// Builtins that fell back to Σ*.
    pub unmodeled: Vec<String>,
    /// Files traversed (recounting repeated includes).
    pub files_analyzed: usize,
    /// Distinct files whose contents the analysis read (entry plus
    /// every resolved include), sorted. This is the page's transitive
    /// input set — what the daemon's verdict cache keys replay on.
    /// Empty for skipped pages. Under `Config::backward_slice` the
    /// relevance pre-pass reads the whole tree, so consumers must widen
    /// this to every project file.
    pub inputs: Vec<String>,
    /// Precision losses from budget trips during grammar construction
    /// (hotspot-level losses live on each [`HotspotReport`]).
    pub degradations: Vec<Degradation>,
    /// `Some(reason)` when the page could not be analyzed at all
    /// (parse error, missing entry, analyzer panic). A skipped page is
    /// **never** verified.
    pub skipped: Option<String>,
}

impl PageReport {
    /// A synthetic report for a page that could not be analyzed.
    ///
    /// The page carries the reason in both `skipped` and `warnings`,
    /// counts zero files analyzed, and reports `is_verified() == false`
    /// — skipping may only lose precision, never soundness.
    pub fn skipped_page(entry: &str, reason: String) -> PageReport {
        PageReport {
            entry: entry.to_owned(),
            hotspots: Vec::new(),
            grammar_nonterminals: 0,
            grammar_productions: 0,
            analysis_time: Duration::default(),
            check_time: Duration::default(),
            warnings: vec![reason.clone()],
            unmodeled: Vec::new(),
            files_analyzed: 0,
            inputs: Vec::new(),
            degradations: Vec::new(),
            skipped: Some(reason),
        }
    }

    /// `true` if the page was analyzed and every hotspot was verified.
    ///
    /// Skipped pages are *not* verified — nothing was proven about
    /// them.
    pub fn is_verified(&self) -> bool {
        self.skipped.is_none() && self.hotspots.iter().all(|(_, r)| r.is_safe())
    }

    /// `true` if any precision was lost to budget trips, on the page
    /// or inside any of its hotspot checks.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
            || self.hotspots.iter().any(|(_, r)| !r.degradations.is_empty())
    }

    /// All degradations: page-level, then per-hotspot.
    pub fn all_degradations(&self) -> impl Iterator<Item = &Degradation> {
        self.degradations
            .iter()
            .chain(self.hotspots.iter().flat_map(|(_, r)| r.degradations.iter()))
    }

    /// Intersection-engine work counters summed over the page's
    /// hotspots.
    pub fn engine_stats(&self) -> EngineStats {
        let mut acc = EngineStats::default();
        for (_, r) in &self.hotspots {
            acc.merge(&r.engine);
        }
        acc
    }

    /// Iterates over all findings with their hotspots.
    pub fn findings(&self) -> impl Iterator<Item = (&Hotspot, &Finding)> {
        self.hotspots
            .iter()
            .flat_map(|(h, r)| r.findings.iter().map(move |f| (h, f)))
    }
}

impl fmt::Display for PageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} hotspot(s), |V|={}, |R|={}, analysis {:?}, check {:?}",
            self.entry,
            self.hotspots.len(),
            self.grammar_nonterminals,
            self.grammar_productions,
            self.analysis_time,
            self.check_time
        )?;
        if let Some(reason) = &self.skipped {
            writeln!(f, "  SKIPPED: {reason}")?;
        }
        for (h, r) in &self.hotspots {
            if r.is_safe() {
                writeln!(f, "  {} @ {}:{} — verified", h.label, h.file, h.span)?;
            } else {
                writeln!(f, "  {} @ {}:{} — {}", h.label, h.file, h.span, r)?;
            }
        }
        for d in &self.degradations {
            writeln!(f, "  ~ degraded: {d}")?;
        }
        Ok(())
    }
}

/// Aggregated results for a whole application (many pages) — one row
/// of the paper's Table 1.
#[derive(Debug, Default)]
pub struct AppReport {
    /// Application name.
    pub name: String,
    /// Number of files in the project.
    pub files: usize,
    /// Total source lines.
    pub lines: usize,
    /// Per-page reports.
    pub pages: Vec<PageReport>,
    /// Summary-cache hits: pages that reused another page's AST→IR
    /// lowering for a file (shared includes). Zero when the driver did
    /// not share a cache.
    pub summary_hits: u64,
    /// Summary-cache misses: files actually parsed and lowered.
    pub summary_misses: u64,
}

impl AppReport {
    /// Distinct findings across pages, deduplicated by hotspot site and
    /// source name (one vulnerability may be reachable from several
    /// pages).
    pub fn distinct_findings(&self) -> Vec<(&Hotspot, &Finding)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for p in &self.pages {
            for (h, f) in p.findings() {
                let key = (h.file.clone(), h.span.line, f.name.clone());
                if seen.insert(key) {
                    out.push((h, f));
                }
            }
        }
        out
    }

    /// Findings whose taint includes `direct` (Table 1's "direct"
    /// errors; direct wins over indirect when both are set).
    pub fn direct_findings(&self) -> Vec<(&Hotspot, &Finding)> {
        self.distinct_findings()
            .into_iter()
            .filter(|(_, f)| f.taint.is_direct())
            .collect()
    }

    /// Findings whose taint is indirect only.
    pub fn indirect_findings(&self) -> Vec<(&Hotspot, &Finding)> {
        self.distinct_findings()
            .into_iter()
            .filter(|(_, f)| f.taint.is_indirect() && !f.taint.is_direct())
            .collect()
    }

    /// Summed grammar size across pages (`|V|`, `|R|`).
    pub fn grammar_size(&self) -> (usize, usize) {
        (
            self.pages.iter().map(|p| p.grammar_nonterminals).sum(),
            self.pages.iter().map(|p| p.grammar_productions).sum(),
        )
    }

    /// Total string-analysis time.
    pub fn analysis_time(&self) -> Duration {
        self.pages.iter().map(|p| p.analysis_time).sum()
    }

    /// Total checking time.
    pub fn check_time(&self) -> Duration {
        self.pages.iter().map(|p| p.check_time).sum()
    }

    /// Number of pages that could not be analyzed (parse error, panic,
    /// missing entry). These pages are never counted verified.
    pub fn skipped_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.skipped.is_some()).count()
    }

    /// Number of pages whose results lost precision to budget trips.
    pub fn degraded_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_degraded()).count()
    }

    /// Files actually traversed by the analyzer, summed over pages
    /// (repeated includes recounted, skipped pages contributing zero) —
    /// unlike `files`, which counts every file in the project tree.
    pub fn files_analyzed(&self) -> usize {
        self.pages.iter().map(|p| p.files_analyzed).sum()
    }

    /// Intersection-engine work counters summed over all pages.
    pub fn engine_stats(&self) -> EngineStats {
        let mut acc = EngineStats::default();
        for p in &self.pages {
            acc.merge(&p.engine_stats());
        }
        acc
    }
}

impl fmt::Display for AppReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (v, r) = self.grammar_size();
        writeln!(
            f,
            "{}: {} files, {} lines, |V|={v}, |R|={r}, analysis {:?}, check {:?}",
            self.name,
            self.files,
            self.lines,
            self.analysis_time(),
            self.check_time()
        )?;
        writeln!(
            f,
            "  direct findings: {}, indirect findings: {}",
            self.direct_findings().len(),
            self.indirect_findings().len()
        )?;
        let (skipped, degraded) = (self.skipped_pages(), self.degraded_pages());
        if skipped > 0 || degraded > 0 {
            writeln!(
                f,
                "  pages skipped: {skipped}, pages degraded: {degraded} (neither counts verified)"
            )?;
        }
        if self.summary_hits > 0 || self.summary_misses > 0 {
            writeln!(
                f,
                "  summary cache: {} hit(s), {} lowering(s)",
                self.summary_hits, self.summary_misses
            )?;
        }
        Ok(())
    }
}
