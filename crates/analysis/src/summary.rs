//! Per-file IR summaries keyed by content hash.
//!
//! A [`SummaryCache`] memoizes [`Frontend`] lowering so a file shared
//! by many pages (a common `config.php` include, say) is parsed and
//! lowered once per app analysis instead of once per page. The cache
//! key is `(content_hash, config_fingerprint, frontend_fingerprint)`:
//!
//! - **content hash** — a hash of the raw file bytes, so any edit
//!   invalidates the summary;
//! - **config fingerprint** — a hash of every [`crate::Config`] field
//!   that lowering *could* observe. Lowering is deliberately
//!   config-independent today (all config consultation happens at
//!   emit), so the fingerprint is defensive: if lowering ever grows a
//!   config dependency, the fingerprint must cover that field or the
//!   cache would serve stale IR across configs;
//! - **frontend fingerprint** — [`Frontend::fingerprint`] of the
//!   frontend that lowers the file, so two languages (or two lowering
//!   versions of one language) never share a summary even for
//!   identical source bytes.
//!
//! Summaries are path-free (an include records only its source line;
//! the path is supplied by the emitter), which is what makes one
//! summary valid for every page and every include site that mentions
//! the file. Parse *failures* are not cached: the original analyzer
//! re-parses (and re-warns) at every include occurrence, and the warm
//! path must be warning-identical to the cold path.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::Config;
use crate::frontend::{Frontend, FrontendError};
use crate::ir::FileSummary;

/// Hashes raw file bytes into a summary-cache content key.
pub fn content_hash(src: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    src.hash(&mut h);
    h.finish()
}

/// Hashes the config fields that lowering could observe (see module
/// docs — currently none are actually read during lowering, but the
/// name lists below are the ones adjacent passes consume and are the
/// plausible candidates for a future lowering dependency).
pub fn config_fingerprint(config: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    let mut sorted: Vec<&String>;
    macro_rules! hash_names {
        ($set:expr) => {
            sorted = $set.iter().collect();
            sorted.sort();
            sorted.hash(&mut h);
        };
    }
    hash_names!(&config.direct_superglobals);
    hash_names!(&config.indirect_globals);
    hash_names!(&config.hotspot_functions);
    hash_names!(&config.hotspot_methods);
    hash_names!(&config.fetch_functions);
    h.finish()
}

/// A shared, thread-safe cache of lowered file summaries.
///
/// One cache is created per app analysis (or handed in by the caller
/// via the `*_cached` entry points) and shared across worker threads;
/// pages analyzed against the same cache reuse each other's lowering
/// work. Hit/miss counters feed `AppReport` and the ≥30%-fewer-
/// lowerings acceptance test.
#[derive(Debug, Default)]
pub struct SummaryCache {
    map: Mutex<HashMap<(u64, u64, u64), Arc<FileSummary>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SummaryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the lowered summary for `src` under `frontend`,
    /// lowering (and caching) it on a miss. Parse errors are returned
    /// verbatim and never cached.
    pub fn get_or_lower(
        &self,
        frontend: &dyn Frontend,
        src: &[u8],
        config: &Config,
    ) -> Result<Arc<FileSummary>, FrontendError> {
        let _span = strtaint_obs::Span::enter("summary", "");
        let key = (
            content_hash(src),
            config_fingerprint(config),
            frontend.fingerprint(),
        );
        if let Some(hit) = self
            .map
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&key)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Parse + lower outside the lock: lowering a large file must
        // not serialize the other worker threads. Two threads may race
        // to lower the same file; both produce identical summaries and
        // the second insert is a harmless overwrite.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let summary = {
            let _lower = strtaint_obs::Span::enter("lower", "");
            Arc::new(FileSummary {
                body: frontend.lower(src)?,
                content_hash: key.0,
            })
        };
        self.map
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, Arc::clone(&summary));
        Ok(summary)
    }

    /// Number of summaries currently resident (distinct
    /// `(content, config, frontend)` keys) — surfaced by the daemon's
    /// `status`.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// `true` when no summary has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses (files actually lowered) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
