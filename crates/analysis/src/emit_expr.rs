//! Expression emission: IR expressions → grammar nonterminals.
//!
//! The companion to [`crate::emit`], holding the expression half of the
//! [`Emitter`](crate::emit::Emitter): literals, interpolation, variable
//! and source lookups, assignment forms, and the full call pipeline
//! (hotspots, fetch sources, user functions, builtin models). String
//! functions whose models need constant arguments ([`CallPrep`]) reuse
//! the transducers prepared once at lowering instead of rebuilding them
//! per call site.

use std::collections::HashSet;
use std::sync::Arc;

use strtaint_grammar::{NtId, Symbol, Taint};
use strtaint_php::Span;

use crate::builder::{Hotspot, Provenance};
use crate::builtins::{self, Model};
use crate::emit::{root_var, Emitter, FnEntry};
use crate::env::{Env, KEY_SEP};
use crate::ir::*;

impl Emitter<'_> {
    pub(crate) fn eval(&mut self, e: &IrExpr, env: &mut Env) -> NtId {
        match e {
            IrExpr::Empty => self.empty_nt,
            IrExpr::Const(bytes) => self.literal_nt(bytes),
            IrExpr::Interp(parts) => {
                let mut rhs: Vec<Symbol> = Vec::new();
                for p in parts {
                    match p {
                        IrPart::Lit(bytes) => {
                            rhs.extend(bytes.iter().map(|&b| Symbol::T(b)));
                        }
                        IrPart::Expr(sub) => {
                            let nt = self.eval(sub, env);
                            rhs.push(Symbol::N(nt));
                        }
                    }
                }
                let nt = self.cfg.add_nonterminal("interp");
                self.cfg.add_production(nt, rhs);
                nt
            }
            IrExpr::Var(v) => {
                if let Some(nt) = env.get(v) {
                    return nt;
                }
                if self.config.direct_superglobals.iter().any(|s| s == v) {
                    let nt = self.source_nt(format!("{v}[*]"), Taint::DIRECT);
                    env.set(v.clone(), nt);
                    return nt;
                }
                if self.config.indirect_globals.iter().any(|s| s == v) {
                    let nt = self.source_nt(format!("{v}[*]"), Taint::INDIRECT);
                    env.set(v.clone(), nt);
                    return nt;
                }
                self.empty_nt
            }
            IrExpr::ConstFetch(name) => {
                if let Some(&nt) = self.constants.get(name) {
                    return nt;
                }
                match name.as_str() {
                    "PHP_EOL" => self.literal_nt(b"\n"),
                    _ => self.literal_nt(name.as_bytes()),
                }
            }
            IrExpr::Index { side, key, base } => {
                // Evaluate dynamic indexes for side effects.
                if let Some(s) = side {
                    self.eval(s, env);
                }
                if let Some((full, base_key)) = key {
                    if let Some(nt) = env.get(full) {
                        return nt;
                    }
                    let root = root_var(full);
                    if self.config.direct_superglobals.iter().any(|s| s == root) {
                        let display = crate::env::clean_key(full);
                        let nt = self.source_nt(display, Taint::DIRECT);
                        env.set(full.clone(), nt);
                        return nt;
                    }
                    if self.config.indirect_globals.iter().any(|s| s == root) {
                        let display = crate::env::clean_key(full);
                        let nt = self.source_nt(display, Taint::INDIRECT);
                        env.set(full.clone(), nt);
                        return nt;
                    }
                    // Unknown element of a known array: join all known
                    // elements plus the array binding.
                    if full.ends_with(&format!("{KEY_SEP}*")) {
                        return self.elements_of(base, env);
                    }
                    // Element of an array-valued binding (fetch rows,
                    // explode results): the collapsed representation
                    // stores the element language on the array variable.
                    if let Some(base_nt) = env.get(base_key) {
                        if base_nt != self.empty_nt {
                            env.set(full.clone(), base_nt);
                            return base_nt;
                        }
                    }
                    return self.empty_nt;
                }
                // Indexing a computed value: keep taint, widen.
                let base_nt = self.eval(base, env);
                let t = self.reachable_taint(base_nt);
                self.any_with_taint("index", t)
            }
            IrExpr::Prop { key, base } => {
                if let Some(key) = key {
                    if let Some(nt) = env.get(key) {
                        return nt;
                    }
                    let root = root_var(key);
                    if self.config.indirect_globals.iter().any(|s| s == root) {
                        let nt = self.source_nt(key.clone(), Taint::INDIRECT);
                        env.set(key.clone(), nt);
                        return nt;
                    }
                    return self.empty_nt;
                }
                let base_nt = self.eval(base, env);
                let t = self.reachable_taint(base_nt);
                self.any_with_taint("prop", t)
            }
            IrExpr::AssignList { keys, rhs } => {
                // list($a, $b) = expr — each variable receives the
                // collapsed element language (array order is lost, as
                // with explode, paper §3.1.3).
                let rv = self.eval(rhs, env);
                for k in keys.iter().flatten() {
                    env.set(k.clone(), rv);
                }
                rv
            }
            IrExpr::AssignArrayLit { base_key, items } => {
                self.assign_array_lit(base_key, items, env)
            }
            IrExpr::Assign { key, op, rhs } => {
                // Relevance hint: expensive operations in the RHS keep
                // precision only when the assigned variable may reach a
                // query (paper §7 backward slice).
                let pushed = if self.relevance.is_some() {
                    match key {
                        Some(k) => {
                            self.push_hint_for_lvalue(k);
                            true
                        }
                        None => false,
                    }
                } else {
                    false
                };
                let rv = self.eval(rhs, env);
                if pushed {
                    self.hint_stack.pop();
                }
                let value = match op {
                    AssignOp::Plain => rv,
                    AssignOp::Concat => {
                        let old = match key {
                            Some(k) => env.get(k).unwrap_or(self.empty_nt),
                            None => self.empty_nt,
                        };
                        let nt = self.cfg.add_nonterminal("concat=");
                        self.cfg
                            .add_production(nt, vec![Symbol::N(old), Symbol::N(rv)]);
                        nt
                    }
                    AssignOp::Arith => {
                        let t = self.reachable_taint(rv);
                        self.numeric_result(t)
                    }
                };
                self.assign_lvalue_key(key.as_deref(), value, env);
                value
            }
            IrExpr::IncDec { key } => {
                let t = match key {
                    Some(k) => env
                        .get(k)
                        .map(|nt| self.reachable_taint(nt))
                        .unwrap_or(Taint::NONE),
                    None => Taint::NONE,
                };
                let nt = self.numeric_result(t);
                self.assign_lvalue_key(key.as_deref(), nt, env);
                nt
            }
            IrExpr::Ternary { cond, then, els } => {
                let cond_nt = self.eval(&cond.pre, env);
                let mut t_env = env.clone();
                self.apply_refine(&cond.refine, &mut t_env, true);
                let t_nt = match then {
                    Some(t) => self.eval(t, &mut t_env),
                    None => cond_nt,
                };
                let mut e_env = env.clone();
                self.apply_refine(&cond.refine, &mut e_env, false);
                let e_nt = self.eval(els, &mut e_env);
                *env = Env::join(&mut self.cfg, &t_env, &e_env, self.empty_nt);
                if t_nt == e_nt {
                    t_nt
                } else {
                    let j = self.cfg.add_nonterminal("ternary");
                    self.cfg.add_production(j, vec![Symbol::N(t_nt)]);
                    self.cfg.add_production(j, vec![Symbol::N(e_nt)]);
                    j
                }
            }
            IrExpr::Concat(a, b) => {
                let na = self.eval(a, env);
                let nb = self.eval(b, env);
                let nt = self.cfg.add_nonterminal("concat");
                self.cfg.add_production(nt, vec![Symbol::N(na), Symbol::N(nb)]);
                nt
            }
            IrExpr::Numeric(args) => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                self.numeric_result(t)
            }
            IrExpr::BoolOf(args) => {
                for a in args {
                    self.eval(a, env);
                }
                self.lang_nt("bool")
            }
            IrExpr::ArrayLit(items) => {
                let mut parts: Vec<NtId> = Vec::new();
                for (k, v) in items {
                    if let Some(key) = k {
                        self.eval(key, env);
                    }
                    parts.push(self.eval(v, env));
                }
                parts.sort();
                parts.dedup();
                match parts.as_slice() {
                    [] => self.empty_nt,
                    [one] => *one,
                    many => {
                        let j = self.cfg.add_nonterminal("array");
                        for &p in many {
                            self.cfg.add_production(j, vec![Symbol::N(p)]);
                        }
                        j
                    }
                }
            }
            IrExpr::New(args) => {
                // Constructors are not inlined; the object value itself
                // carries no string language.
                for a in args {
                    self.eval(a, env);
                }
                self.any_nt
            }
            IrExpr::Call(c) => self.eval_call(c, env),
            IrExpr::MethodCall(m) => {
                self.eval(&m.obj, env);
                self.eval_sink_or_fetch(
                    &format!("->{}", m.method),
                    &m.method,
                    &m.args,
                    &m.arg_keys,
                    m.span,
                    m.arg_span,
                    None,
                    env,
                )
            }
        }
    }

    fn assign_array_lit(
        &mut self,
        base_key: &str,
        items: &[(String, IrExpr)],
        env: &mut Env,
    ) -> NtId {
        // Clear prior elements.
        for k in env.element_keys(base_key) {
            env.unset(&k);
        }
        env.unset(base_key);
        let mut parts: Vec<NtId> = Vec::new();
        for (key, v) in items {
            let nt = self.eval(v, env);
            parts.push(nt);
            env.set(format!("{base_key}{KEY_SEP}{key}"), nt);
        }
        parts.sort();
        parts.dedup();
        let joined = match parts.as_slice() {
            [] => self.empty_nt,
            [one] => *one,
            many => {
                let j = self.cfg.add_nonterminal(format!("arraylit:{base_key}"));
                for &p in many {
                    self.cfg.add_production(j, vec![Symbol::N(p)]);
                }
                j
            }
        };
        if self.call_stack.is_empty() {
            self.global_sets
                .entry(base_key.to_owned())
                .or_default()
                .push(joined);
        }
        joined
    }

    // ------------------------------------------------------ calls

    fn eval_call(&mut self, c: &CallIr, env: &mut Env) -> NtId {
        // define() tracks program constants.
        if let CallPrep::Define(cname) = &c.prep {
            if let Some(a1) = c.args.get(1) {
                let nt = self.eval(a1, env);
                let cname = cname.clone();
                self.constants.insert(cname, nt);
                return self.lang_nt("bool");
            }
        }
        // User-defined functions take precedence over builtins, as in
        // PHP (redefinition of builtins is an error, so order rarely
        // matters; applications define helpers like unp_msg()).
        if let Some(entry) = self.functions.get(&c.name).cloned() {
            return self.eval_user_call(&entry, &c.args, &c.arg_keys, env);
        }
        self.eval_sink_or_fetch(
            &c.name,
            &c.name,
            &c.args,
            &c.arg_keys,
            c.span,
            c.arg_span,
            Some(&c.prep),
            env,
        )
    }

    /// Shared path for free functions and method calls: hotspots,
    /// fetch sources, then builtins.
    #[allow(clippy::too_many_arguments)]
    fn eval_sink_or_fetch(
        &mut self,
        label: &str,
        bare: &str,
        args: &[IrExpr],
        arg_keys: &[Option<String>],
        span: Span,
        arg_span: Option<Span>,
        prep: Option<&CallPrep>,
        env: &mut Env,
    ) -> NtId {
        if let Some(entry) = self.sinks.lookup(label.starts_with("->"), bare) {
            // Sink arguments are always relevance-precise.
            self.hint_stack.push(true);
            let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            self.hint_stack.pop();
            if entry.policy == strtaint_policy::SQL_POLICY {
                if let Some(&q) = arg_nts.first() {
                    let file = self.cur_file.clone();
                    self.hotspots.push(Hotspot {
                        file,
                        span,
                        label: label.to_owned(),
                        root: q,
                        policy: entry.policy.to_owned(),
                        provenance: Provenance {
                            summary: self.cur_summary,
                            arg_span,
                        },
                    });
                }
                return self.cfg.add_nonterminal("dbresult");
            }
            if let Some(&q) = arg_nts.get(entry.arg) {
                let file = self.cur_file.clone();
                self.hotspots.push(Hotspot {
                    file,
                    span,
                    label: label.to_owned(),
                    root: q,
                    policy: entry.policy.to_owned(),
                    provenance: Provenance {
                        summary: self.cur_summary,
                        arg_span,
                    },
                });
            }
            // Non-SQL sinks return shell output / file contents / eval
            // results: widen, keeping the arguments' taint.
            let t = self.args_taint(&arg_nts);
            return self.any_with_taint(bare, t);
        }
        if self.config.fetch_functions.iter().any(|m| m == bare) {
            for a in args {
                self.eval(a, env);
            }
            return self.source_nt(format!("fetch:{label}"), Taint::INDIRECT);
        }
        if label.starts_with("->") {
            // Application-defined methods: dispatch by bare name (the
            // classless over-approximation; real receivers are rarely
            // ambiguous in this code base style).
            if let Some(entry) = self.methods.get(bare).cloned() {
                return self.eval_user_call(&entry, args, arg_keys, env);
            }
            for a in args {
                self.eval(a, env);
            }
            // Unknown method: widen, untainted (configured methods cover
            // the DB layer; others are application objects).
            self.unmodeled.insert(label.to_owned());
            return self.any_nt;
        }
        self.eval_builtin(bare, args, prep, span, env)
    }

    fn eval_user_call(
        &mut self,
        entry: &FnEntry,
        args: &[IrExpr],
        arg_keys: &[Option<String>],
        env: &mut Env,
    ) -> NtId {
        let decl = &entry.ir;
        if self.call_stack.len() >= self.config.max_call_depth
            || self.call_stack.iter().any(|n| n == &decl.name)
        {
            let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&arg_nts);
            self.warn(format!(
                "call to {} widened (recursion or depth limit)",
                decl.name
            ));
            return self.any_with_taint(&decl.name, t);
        }
        let mut callee_env = Env::new();
        let mut ref_backs: Vec<(usize, String)> = Vec::new();
        for (i, p) in decl.params.iter().enumerate() {
            let nt = match args.get(i) {
                Some(a) => {
                    let nt = self.eval(a, env);
                    if p.by_ref {
                        if let Some(k) = arg_keys.get(i).and_then(|k| k.clone()) {
                            ref_backs.push((i, k));
                        }
                    }
                    nt
                }
                None => match &p.default {
                    Some(d) => self.eval(d, env),
                    None => self.empty_nt,
                },
            };
            callee_env.set(p.name.clone(), nt);
        }
        // Extra args evaluated for effects.
        for a in args.iter().skip(decl.params.len()) {
            self.eval(a, env);
        }
        self.call_stack.push(decl.name.clone());
        self.return_stack.push(Vec::new());
        self.declared_globals.push(HashSet::new());
        // Hotspots inside the body belong to the file that defines the
        // function, not the calling page.
        let prev_file = std::mem::replace(&mut self.cur_file, entry.file.clone());
        let prev_summary = std::mem::replace(&mut self.cur_summary, entry.summary);
        self.emit_stmts(&decl.body, &mut callee_env);
        self.cur_file = prev_file;
        self.cur_summary = prev_summary;
        self.declared_globals.pop();
        let returns = self.return_stack.pop().expect("frame pushed");
        self.call_stack.pop();
        for (i, key) in ref_backs {
            if let Some(nt) = callee_env.get(&decl.params[i].name) {
                env.set(key, nt);
            }
        }
        match returns.as_slice() {
            [] => self.empty_nt,
            [one] => *one,
            many => {
                let j = self.cfg.add_nonterminal(format!("ret:{}", decl.name));
                let mut uniq = many.to_vec();
                uniq.sort();
                uniq.dedup();
                for nt in uniq {
                    self.cfg.add_production(j, vec![Symbol::N(nt)]);
                }
                j
            }
        }
    }

    fn eval_builtin(
        &mut self,
        name: &str,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        span: Span,
        env: &mut Env,
    ) -> NtId {
        let model = builtins::lookup(name);
        let Some(model) = model else {
            let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&arg_nts);
            self.unmodeled.insert(name.to_owned());
            return self.any_with_taint(name, t);
        };
        match model {
            Model::Identity => match args.first() {
                Some(a) => self.eval(a, env),
                None => self.empty_nt,
            },
            Model::Transducer(kind) => {
                let nt = match args.first() {
                    Some(a) => self.eval(a, env),
                    None => self.empty_nt,
                };
                for a in args.iter().skip(1) {
                    self.eval(a, env);
                }
                // The lowered call carries the transducer; rebuild only
                // if this call reached us without one (method path).
                match prep {
                    Some(CallPrep::Apply(fst)) => {
                        let fst = Arc::clone(fst);
                        self.apply_fst(nt, &fst, name)
                    }
                    _ => {
                        let fst = builtins::transducer_fst(kind);
                        self.apply_fst(nt, &fst, name)
                    }
                }
            }
            Model::Numeric => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                self.numeric_result(t)
            }
            Model::HexToken => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                let hex = self.lang_nt("hex");
                self.wrap_lang(hex, t, "hex†")
            }
            Model::Base64 => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                let b = self.lang_nt("b64");
                self.wrap_lang(b, t, "b64†")
            }
            Model::UrlSafe => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                let u = self.lang_nt("urlsafe");
                self.wrap_lang(u, t, "urlsafe†")
            }
            Model::AnyKeepTaint => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                self.any_with_taint(name, t)
            }
            Model::AnyUntainted => {
                for a in args {
                    self.eval(a, env);
                }
                self.any_nt
            }
            Model::ConstEmpty => {
                for a in args {
                    self.eval(a, env);
                }
                self.empty_nt
            }
            Model::Bool => {
                for a in args {
                    self.eval(a, env);
                }
                self.lang_nt("bool")
            }
            Model::StrReplace => self.eval_str_replace(args, prep, env),
            Model::PregReplace { .. } => self.eval_preg_replace(args, prep, span, env),
            Model::Sprintf => self.eval_sprintf(args, prep, env),
            Model::Implode => self.eval_implode(args, prep, env),
            Model::Explode => self.eval_explode(args, prep, env),
            Model::StrRepeat => self.eval_str_repeat(args, prep, env),
        }
    }

    fn eval_str_replace(
        &mut self,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        env: &mut Env,
    ) -> NtId {
        if args.len() < 3 {
            return self.empty_nt;
        }
        let subj = self.eval(&args[2], env);
        // PHP semantics: pattern i is replaced by replacement i (or ""
        // / the scalar); the chain was prepared at lowering and applies
        // sequentially.
        if let Some(CallPrep::ReplaceChain(Some(chain))) = prep {
            let mut cur = subj;
            for fst in chain.iter() {
                cur = self.apply_fst(cur, fst, "str_replace");
            }
            return cur;
        }
        self.eval(&args[0], env);
        self.eval(&args[1], env);
        let t = self.reachable_taint(subj);
        self.any_with_taint("str_replace", t)
    }

    fn eval_preg_replace(
        &mut self,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        span: Span,
        env: &mut Env,
    ) -> NtId {
        if args.len() < 3 {
            return self.empty_nt;
        }
        let subj = self.eval(&args[2], env);
        // The deprecated `/e` modifier evaluates the replacement as PHP
        // with match captures substituted in — an eval-class sink on the
        // subject string (only when the eval policy is enabled).
        if let Some(policy) = self.sinks.preg_replace_e {
            if let IrExpr::Const(pat) = &args[0] {
                if crate::sinks::pattern_has_e_modifier(pat) {
                    self.hotspots.push(Hotspot {
                        file: self.cur_file.clone(),
                        span,
                        label: "preg_replace/e".to_owned(),
                        root: subj,
                        policy: policy.to_owned(),
                        provenance: Provenance {
                            summary: self.cur_summary,
                            arg_span: None,
                        },
                    });
                }
            }
        }
        if let Some(CallPrep::RegexReplace(Some(fst))) = prep {
            return self.apply_fst(subj, &Arc::clone(fst), "preg_replace");
        }
        self.eval(&args[0], env);
        self.eval(&args[1], env);
        let t = self.reachable_taint(subj);
        self.any_with_taint("preg_replace", t)
    }

    fn eval_sprintf(
        &mut self,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        env: &mut Env,
    ) -> NtId {
        let plan = match prep {
            Some(CallPrep::Sprintf(Some(p))) => p.clone(),
            _ => {
                let nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&nts);
                return self.any_with_taint("sprintf", t);
            }
        };
        let mut rhs: Vec<Symbol> = Vec::new();
        for part in &plan.parts {
            match part {
                SprintfPart::Lit(bytes) => {
                    rhs.extend(bytes.iter().map(|&b| Symbol::T(b)));
                }
                SprintfPart::Str(idx) => {
                    let nt = match args.get(*idx) {
                        Some(a) => self.eval(a, env),
                        None => self.empty_nt,
                    };
                    rhs.push(Symbol::N(nt));
                }
                SprintfPart::Num(idx) => {
                    let t = match args.get(*idx) {
                        Some(a) => {
                            let nt = self.eval(a, env);
                            self.reachable_taint(nt)
                        }
                        None => Taint::NONE,
                    };
                    let nt = self.numeric_result(t);
                    rhs.push(Symbol::N(nt));
                }
                SprintfPart::Hex(idx) => {
                    if let Some(a) = args.get(*idx) {
                        self.eval(a, env);
                    }
                    let nt = self.lang_nt("hex");
                    rhs.push(Symbol::N(nt));
                }
            }
        }
        if !plan.ok {
            // Malformed directive: re-evaluate everything (matching the
            // single-pass scan, which bails mid-format) and widen.
            let nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&nts);
            return self.any_with_taint("sprintf", t);
        }
        // Remaining args: evaluate for effects.
        for a in args.iter().skip(plan.consumed.max(1)) {
            self.eval(a, env);
        }
        let nt = self.cfg.add_nonterminal("sprintf");
        self.cfg.add_production(nt, rhs);
        nt
    }

    fn eval_implode(
        &mut self,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        env: &mut Env,
    ) -> NtId {
        if args.len() < 2 {
            if let Some(a) = args.first() {
                let nt = self.eval(a, env);
                let t = self.reachable_taint(nt);
                return self.any_with_taint("implode", t);
            }
            return self.empty_nt;
        }
        let glue = match prep {
            Some(CallPrep::Implode(g)) => g.clone(),
            _ => None,
        };
        let elems = self.elements_of(&args[1], env);
        let Some(glue) = glue else {
            self.eval(&args[0], env);
            let t = self.reachable_taint(elems);
            return self.any_with_taint("implode", t);
        };
        // R → E | E glue R  (any count, order lost — like the paper's
        // explode treatment).
        let r = self.cfg.add_nonterminal("implode");
        self.cfg.add_production(r, vec![Symbol::N(elems)]);
        let mut rhs = vec![Symbol::N(elems)];
        rhs.extend(glue.iter().map(|&b| Symbol::T(b)));
        rhs.push(Symbol::N(r));
        self.cfg.add_production(r, rhs);
        r
    }

    fn eval_explode(
        &mut self,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        env: &mut Env,
    ) -> NtId {
        if args.len() < 2 {
            return self.empty_nt;
        }
        let subj = self.eval(&args[1], env);
        if let Some(CallPrep::Explode(Some(fst))) = prep {
            return self.apply_fst(subj, &Arc::clone(fst), "explode");
        }
        self.eval(&args[0], env);
        let t = self.reachable_taint(subj);
        self.any_with_taint("explode", t)
    }

    fn eval_str_repeat(
        &mut self,
        args: &[IrExpr],
        prep: Option<&CallPrep>,
        env: &mut Env,
    ) -> NtId {
        if args.len() < 2 {
            return self.empty_nt;
        }
        let base = self.eval(&args[0], env);
        // Constant small counts unroll exactly; anything else becomes
        // "any number of repetitions" (a recursive production) — an
        // over-approximation that preserves the alphabet and taint.
        match prep {
            Some(CallPrep::Repeat(Some(n))) => {
                let nt = self.cfg.add_nonterminal("str_repeat");
                self.cfg.add_production(nt, vec![Symbol::N(base); *n]);
                nt
            }
            _ => {
                self.eval(&args[1], env);
                let nt = self.cfg.add_nonterminal("str_repeat*");
                self.cfg.add_production(nt, vec![]);
                self.cfg
                    .add_production(nt, vec![Symbol::N(base), Symbol::N(nt)]);
                nt
            }
        }
    }
}
