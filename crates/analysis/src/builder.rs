//! The string-taint analysis: PHP AST → annotated CFG (paper §3.1).
//!
//! The walker evaluates every string expression to a grammar
//! nonterminal, maintaining a flow-sensitive [`Env`]. Assignments and
//! concatenation become grammar productions (paper Fig. 5); control
//! flow joins become alternative productions; loops become recursive
//! productions closed after one body pass; string library calls apply
//! transducer images; regex conditionals intersect grammars
//! (§3.1.2); `include` statements are resolved through the grammar of
//! their argument and the filesystem layout (§4).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use strtaint_automata::{Dfa, Fst, Nfa, Regex};
use strtaint_grammar::budget::{Budget, BudgetExceeded, DegradeAction, Degradation};
use strtaint_grammar::intersect::intersect_with;
use strtaint_grammar::image::image_with;
use strtaint_grammar::lang::bounded_language;
use strtaint_grammar::{Cfg, NtId, Symbol, Taint};
use strtaint_php::ast::*;
use strtaint_php::token::StrPart;
use strtaint_php::{parse, Span};

use crate::builtins::{self, Model};
use crate::config::Config;
use crate::env::{Env, KEY_SEP};
use crate::relevance::{self, Relevance};
use crate::vfs::{normalize, Vfs};

/// A query-construction site and the grammar root for the values that
/// flow into it.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// File containing the call.
    pub file: String,
    /// Location of the call.
    pub span: Span,
    /// Call label, e.g. `$DB->query` or `mysql_query`.
    pub label: String,
    /// Grammar root deriving every query string this site may send.
    pub root: NtId,
}

/// Result of the string-taint analysis phase.
#[derive(Debug)]
pub struct Analysis {
    /// The program-wide annotated grammar.
    pub cfg: Cfg,
    /// Query hotspots discovered, in program order.
    pub hotspots: Vec<Hotspot>,
    /// HTML output sinks (`echo`/`print` arguments), for the XSS
    /// extension the paper names as future work (§7).
    pub echo_sinks: Vec<Hotspot>,
    /// Non-fatal findings (unresolved includes, parse failures in
    /// included files, widened operations).
    pub warnings: Vec<String>,
    /// Builtin functions that had no model and were widened to Σ*.
    pub unmodeled: BTreeSet<String>,
    /// Number of files analyzed (including re-analysis through
    /// repeated includes, as in the paper's tool).
    pub files_analyzed: usize,
    /// Precision losses from budget trips during grammar construction
    /// (widened transducer images, skipped refinements, unresolved
    /// includes). Each is sound: the degraded grammar derives a
    /// superset of the precise one.
    pub degradations: Vec<Degradation>,
}

/// Fatal analysis errors.
#[derive(Debug)]
pub enum AnalyzeError {
    /// The entry file is missing from the VFS.
    EntryNotFound(String),
    /// The entry file failed to parse.
    Parse(strtaint_php::ParsePhpError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::EntryNotFound(p) => write!(f, "entry file not found: {p}"),
            AnalyzeError::Parse(e) => write!(f, "entry file failed to parse: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Runs the string-taint analysis on `entry` within `vfs`.
///
/// # Errors
///
/// Returns [`AnalyzeError`] if the entry file is missing or does not
/// parse; problems in *included* files are demoted to warnings, like
/// the paper's tool.
pub fn analyze(vfs: &Vfs, entry: &str, config: &Config) -> Result<Analysis, AnalyzeError> {
    analyze_with(vfs, entry, config, &config.page_budget())
}

/// Budgeted form of [`analyze`]: grammar-level operations charge
/// `budget`, and on exhaustion degrade soundly (tainted-Σ* widening,
/// skipped refinement, unresolved include) with a record in
/// [`Analysis::degradations`].
///
/// The same budget should be passed on to the checker so one page has
/// one resource envelope.
pub fn analyze_with(
    vfs: &Vfs,
    entry: &str,
    config: &Config,
    budget: &Budget,
) -> Result<Analysis, AnalyzeError> {
    let mut a = Analyzer::new(vfs, config, budget.clone());
    if config.backward_slice {
        a.relevance = Some(relevance::compute(vfs, config));
    }
    let src = vfs
        .get(entry)
        .ok_or_else(|| AnalyzeError::EntryNotFound(entry.to_owned()))?;
    let file = parse(src).map_err(AnalyzeError::Parse)?;
    let file = Rc::new(file);
    a.parsed.insert(normalize(entry), Rc::clone(&file));
    let mut env = Env::new();
    a.cur_file = normalize(entry);
    a.files_analyzed += 1;
    a.register_functions(&file.stmts);
    a.analyze_stmts(&file.stmts, &mut env);
    Ok(Analysis {
        cfg: a.cfg,
        hotspots: a.hotspots,
        echo_sinks: a.echo_sinks,
        warnings: a.warnings,
        unmodeled: a.unmodeled,
        files_analyzed: a.files_analyzed,
        degradations: a.degradations,
    })
}

/// Control flow outcome of a statement sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Falls through.
    Cont,
    /// Terminates (exit/return) — the branch's environment does not
    /// join back. This is what makes `if (!check($x)) exit;` refine
    /// `$x` on the fall-through path (crucial for Figure 2 precision).
    Term,
}

pub(crate) struct Analyzer<'a> {
    vfs: &'a Vfs,
    pub(crate) config: &'a Config,
    pub(crate) cfg: Cfg,
    functions: HashMap<String, (Rc<FuncDecl>, String)>,
    /// Class methods, dispatched by bare method name (classless
    /// over-approximation; clashes merge conservatively by first
    /// registration).
    methods: HashMap<String, (Rc<FuncDecl>, String)>,
    parsed: HashMap<String, Rc<strtaint_php::File>>,
    hotspots: Vec<Hotspot>,
    echo_sinks: Vec<Hotspot>,
    pub(crate) warnings: Vec<String>,
    unmodeled: BTreeSet<String>,
    lit_cache: HashMap<Vec<u8>, NtId>,
    lang_cache: HashMap<&'static str, NtId>,
    pub(crate) any_nt: NtId,
    pub(crate) empty_nt: NtId,
    include_once: HashSet<String>,
    call_stack: Vec<String>,
    return_stack: Vec<Vec<NtId>>,
    declared_globals: Vec<HashSet<String>>,
    pub(crate) open_headers: Vec<NtId>,
    global_sets: HashMap<String, Vec<NtId>>,
    constants: HashMap<String, NtId>,
    cur_file: String,
    files_analyzed: usize,
    layout: Option<Rc<Dfa>>,
    /// Shared resource budget for this page's grammar operations.
    budget: Budget,
    /// Sound precision losses from budget trips.
    degradations: Vec<Degradation>,
    /// Backward-slice facts (None when `Config::backward_slice` is off).
    relevance: Option<Relevance>,
    /// Relevance hints for the expression currently being evaluated;
    /// `true` (or empty stack) = may reach a query, keep precision.
    hint_stack: Vec<bool>,
}

impl<'a> Analyzer<'a> {
    fn new(vfs: &'a Vfs, config: &'a Config, budget: Budget) -> Self {
        let mut cfg = Cfg::new();
        let any_nt = cfg.any_string_nt();
        let empty_nt = cfg.add_nonterminal("ε");
        cfg.add_production(empty_nt, vec![]);
        Analyzer {
            vfs,
            config,
            cfg,
            functions: HashMap::new(),
            methods: HashMap::new(),
            parsed: HashMap::new(),
            hotspots: Vec::new(),
            echo_sinks: Vec::new(),
            warnings: Vec::new(),
            unmodeled: BTreeSet::new(),
            lit_cache: HashMap::new(),
            lang_cache: HashMap::new(),
            any_nt,
            empty_nt,
            include_once: HashSet::new(),
            call_stack: Vec::new(),
            return_stack: Vec::new(),
            declared_globals: Vec::new(),
            open_headers: Vec::new(),
            global_sets: HashMap::new(),
            constants: HashMap::new(),
            cur_file: String::new(),
            files_analyzed: 0,
            layout: None,
            budget,
            degradations: Vec::new(),
            relevance: None,
            hint_stack: Vec::new(),
        }
    }

    fn warn(&mut self, msg: impl Into<String>) {
        self.warnings.push(format!("{}: {}", self.cur_file, msg.into()));
    }

    /// Records a budget trip and the sound fallback applied at `what`.
    fn degrade(&mut self, err: BudgetExceeded, what: &str, action: DegradeAction) {
        let site = format!("{}@{}", what, self.cur_file);
        self.warn(format!("{what}: {err}; {action}"));
        self.degradations.push(Degradation {
            resource: err.resource,
            site,
            action,
        });
    }

    // ------------------------------------------------------ helpers

    pub(crate) fn literal_nt(&mut self, bytes: &[u8]) -> NtId {
        if let Some(&nt) = self.lit_cache.get(bytes) {
            return nt;
        }
        let name = format!("lit:{:.12}", String::from_utf8_lossy(bytes));
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_literal_production(nt, bytes);
        self.lit_cache.insert(bytes.to_vec(), nt);
        nt
    }

    /// A nonterminal for a fixed regular "result language" such as
    /// numeric literals; cached per language.
    fn lang_nt(&mut self, key: &'static str) -> NtId {
        if let Some(&nt) = self.lang_cache.get(key) {
            return nt;
        }
        let nt = match key {
            "num" => {
                // -? digits (. digits)?
                let digits = self.cfg.add_nonterminal("digits");
                for b in b'0'..=b'9' {
                    self.cfg.add_production(digits, vec![Symbol::T(b)]);
                    self.cfg
                        .add_production(digits, vec![Symbol::T(b), Symbol::N(digits)]);
                }
                let num = self.cfg.add_nonterminal("NUM");
                self.cfg.add_production(num, vec![Symbol::N(digits)]);
                self.cfg
                    .add_production(num, vec![Symbol::T(b'-'), Symbol::N(digits)]);
                self.cfg.add_production(
                    num,
                    vec![Symbol::N(digits), Symbol::T(b'.'), Symbol::N(digits)],
                );
                self.cfg.add_production(
                    num,
                    vec![
                        Symbol::T(b'-'),
                        Symbol::N(digits),
                        Symbol::T(b'.'),
                        Symbol::N(digits),
                    ],
                );
                num
            }
            "hex" => self.charset_star_nt("HEX", |b| {
                b.is_ascii_digit() || (b'a'..=b'f').contains(&b)
            }),
            "b64" => self.charset_star_nt("B64", |b| {
                b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='
            }),
            "urlsafe" => self.charset_star_nt("URLSAFE", |b| {
                b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'%' | b'+')
            }),
            "bool" => {
                let nt = self.cfg.add_nonterminal("BOOL");
                self.cfg.add_production(nt, vec![]);
                self.cfg.add_production(nt, vec![Symbol::T(b'1')]);
                nt
            }
            _ => unreachable!("unknown language key {key}"),
        };
        self.lang_cache.insert(key, nt);
        nt
    }

    fn charset_star_nt(&mut self, name: &str, allow: impl Fn(u8) -> bool) -> NtId {
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_production(nt, vec![]);
        for b in 0..=255u8 {
            if allow(b) {
                self.cfg.add_production(nt, vec![Symbol::T(b), Symbol::N(nt)]);
            }
        }
        nt
    }

    /// A fresh source nonterminal deriving Σ* with the given taint.
    fn source_nt(&mut self, name: String, taint: Taint) -> NtId {
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_production(nt, vec![Symbol::N(self.any_nt)]);
        self.cfg.set_taint(nt, taint);
        nt
    }

    /// Union of taints of all nonterminals reachable from `nt`
    /// (walk proportional to the reachable subgraph, with early exit).
    pub(crate) fn reachable_taint(&self, nt: NtId) -> Taint {
        let mut seen: HashSet<NtId> = HashSet::new();
        let mut stack = vec![nt];
        seen.insert(nt);
        let mut t = Taint::NONE;
        while let Some(id) = stack.pop() {
            t = t.union(self.cfg.taint(id));
            if t.is_direct() && t.is_indirect() {
                break;
            }
            for rhs in self.cfg.productions(id) {
                for s in rhs {
                    if let Symbol::N(sub) = s {
                        if seen.insert(*sub) {
                            stack.push(*sub);
                        }
                    }
                }
            }
        }
        t
    }

    fn args_taint(&self, args: &[NtId]) -> Taint {
        let mut t = Taint::NONE;
        for &a in args {
            t = t.union(self.reachable_taint(a));
        }
        t
    }

    /// Σ* with the union of the given argument taints — the sound
    /// fallback result.
    pub(crate) fn any_with_taint(&mut self, name: &str, taint: Taint) -> NtId {
        if taint.is_empty() {
            return self.any_nt;
        }
        let nt = self.source_nt(format!("widened:{name}"), taint);
        nt
    }

    /// `true` if `nt` can reach a loop header whose back-productions
    /// are not yet closed; transducing or intersecting such a grammar
    /// would under-approximate, so callers must widen instead (this is
    /// the paper's "string operations in cycles must be approximated").
    pub(crate) fn reaches_open_header(&self, nt: NtId) -> bool {
        if self.open_headers.is_empty() {
            return false;
        }
        let mut seen: HashSet<NtId> = HashSet::new();
        let mut stack = vec![nt];
        seen.insert(nt);
        while let Some(id) = stack.pop() {
            if self.open_headers.contains(&id) {
                return true;
            }
            for rhs in self.cfg.productions(id) {
                for s in rhs {
                    if let Symbol::N(sub) = s {
                        if seen.insert(*sub) {
                            stack.push(*sub);
                        }
                    }
                }
            }
        }
        false
    }

    fn hint(&self) -> bool {
        self.hint_stack.last().copied().unwrap_or(true)
    }

    fn push_hint_for_lvalue(&mut self, key: &str) {
        // A context already known irrelevant stays irrelevant inside
        // callees (name-based relevance alone cannot distinguish call
        // sites of a shared helper).
        let h = self.hint()
            && match &self.relevance {
                None => true,
                Some(r) => r.var(Self::root_var(key)),
            };
        self.hint_stack.push(h);
    }

    /// Applies a transducer to the grammar rooted at `nt`, splicing the
    /// image into the arena. Falls back to tainted Σ* inside open loops,
    /// in contexts the backward slice proves query-irrelevant,
    /// or when the operand grammar exceeds the configured size budget
    /// (chained replacements otherwise blow up multiplicatively — the
    /// effect the paper describes for Tiger PHP News System in §5.3).
    pub(crate) fn apply_fst(&mut self, nt: NtId, fst: &Fst, what: &str) -> NtId {
        if self.relevance.is_some() && !self.hint() {
            let t = self.reachable_taint(nt);
            return self.any_with_taint(what, t);
        }
        if self.reaches_open_header(nt) {
            let t = self.reachable_taint(nt);
            self.warn(format!("{what} applied to loop-carried value; widened"));
            return self.any_with_taint(what, t);
        }
        let cap = self.config.max_transducer_grammar;
        if self.cfg.count_reachable_productions(nt, cap) > cap {
            let t = self.reachable_taint(nt);
            self.warn(format!(
                "{what} operand grammar exceeds {cap} productions; widened"
            ));
            return self.any_with_taint(what, t);
        }
        let budget = self.budget.clone();
        match image_with(&self.cfg, nt, fst, &budget) {
            Ok((g2, r2)) => self.cfg.import_from(&g2, r2),
            Err(err) => {
                // Sound widening: Σ* with the operand's taint is a
                // superset of any transducer image of it.
                let t = self.reachable_taint(nt);
                self.degrade(err, what, DegradeAction::WidenedToAny);
                self.any_with_taint(what, t)
            }
        }
    }

    /// Intersects the grammar rooted at `nt` with a DFA, splicing the
    /// result into the arena. Inside open loops, returns `nt`
    /// unrefined (sound).
    pub(crate) fn intersect_nt(&mut self, nt: NtId, dfa: &Dfa, what: &str) -> NtId {
        if self.reaches_open_header(nt) {
            self.warn(format!("{what} refinement on loop-carried value skipped"));
            return nt;
        }
        let budget = self.budget.clone();
        match intersect_with(&self.cfg, nt, dfa, &budget) {
            Ok((g2, r2)) => self.cfg.import_from(&g2, r2),
            Err(err) => {
                // Sound: the unrefined language is a superset of the
                // intersection.
                self.degrade(err, what, DegradeAction::KeptUnrefined);
                nt
            }
        }
    }

    // ------------------------------------------- structure traversal

    fn register_functions(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match &s.kind {
                StmtKind::FuncDecl(d) => {
                    let file = self.cur_file.clone();
                    self.functions
                        .entry(d.name.clone())
                        .or_insert_with(|| (Rc::new(d.clone()), file));
                }
                StmtKind::ClassDecl(c) => {
                    for m in &c.methods {
                        let file = self.cur_file.clone();
                        self.methods
                            .entry(m.name.clone())
                            .or_insert_with(|| (Rc::new(m.clone()), file));
                    }
                }
                _ => {}
            }
        }
    }

    pub(crate) fn analyze_stmts(&mut self, stmts: &[Stmt], env: &mut Env) -> Flow {
        for s in stmts {
            if self.analyze_stmt(s, env) == Flow::Term {
                return Flow::Term;
            }
        }
        Flow::Cont
    }

    fn analyze_stmt(&mut self, stmt: &Stmt, env: &mut Env) -> Flow {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval(e, env);
                Flow::Cont
            }
            StmtKind::Echo(args) => {
                if self.relevance.is_some() {
                    self.hint_stack.push(false);
                }
                for a in args {
                    let nt = self.eval(a, env);
                    let file = self.cur_file.clone();
                    self.echo_sinks.push(Hotspot {
                        file,
                        span: stmt.span,
                        label: "echo".to_owned(),
                        root: nt,
                    });
                }
                if self.relevance.is_some() {
                    self.hint_stack.pop();
                }
                Flow::Cont
            }
            StmtKind::InlineHtml(_) => Flow::Cont,
            StmtKind::Block(body) => self.analyze_stmts(body, env),
            StmtKind::If {
                cond,
                then,
                elifs,
                els,
            } => {
                self.eval(cond, env);
                let mut branches: Vec<Env> = Vec::new();
                let mut then_env = env.clone();
                self.refine(cond, &mut then_env, true);
                if self.analyze_stmts(then, &mut then_env) == Flow::Cont {
                    branches.push(then_env);
                }
                let mut rest = env.clone();
                self.refine(cond, &mut rest, false);
                for (c, body) in elifs {
                    self.eval(c, &mut rest);
                    let mut b_env = rest.clone();
                    self.refine(c, &mut b_env, true);
                    if self.analyze_stmts(body, &mut b_env) == Flow::Cont {
                        branches.push(b_env);
                    }
                    self.refine(c, &mut rest, false);
                }
                match els {
                    Some(body) => {
                        if self.analyze_stmts(body, &mut rest) == Flow::Cont {
                            branches.push(rest);
                        }
                    }
                    None => branches.push(rest),
                }
                if branches.is_empty() {
                    return Flow::Term;
                }
                *env = Env::join_all(&mut self.cfg, &branches, self.empty_nt);
                Flow::Cont
            }
            StmtKind::While { cond, body } => {
                self.loop_body(env, Some(cond), body, &[], None);
                Flow::Cont
            }
            StmtKind::DoWhile { body, cond } => {
                self.loop_body(env, Some(cond), body, &[], None);
                Flow::Cont
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.eval(e, env);
                }
                self.loop_body(env, cond.as_ref(), body, step, None);
                Flow::Cont
            }
            StmtKind::Foreach {
                subject,
                key,
                value,
                body,
            } => {
                let elems = self.elements_of(subject, env);
                let subj_taint = self.reachable_taint(elems);
                if let Some(k) = key {
                    let key_nt = self.any_with_taint("foreach-key", subj_taint);
                    env.set(k.clone(), key_nt);
                }
                // The value variable is re-bound to an element on every
                // iteration — it is not loop-carried, so it gets no
                // widening header (bodies that *reassign* it are caught
                // by the assigned-variable pre-scan).
                env.set(value.clone(), elems);
                self.loop_body(env, None, body, &[], None);
                Flow::Cont
            }
            StmtKind::Switch { subject, cases } => {
                self.eval(subject, env);
                let mut branches: Vec<Env> = Vec::new();
                let mut has_default = false;
                for (label, body) in cases {
                    let mut c_env = env.clone();
                    match label {
                        Some(l) => {
                            self.eval(l, &mut c_env);
                            self.refine_case(subject, l, &mut c_env);
                        }
                        None => has_default = true,
                    }
                    if self.analyze_stmts(body, &mut c_env) == Flow::Cont {
                        branches.push(c_env);
                    }
                }
                if !has_default {
                    branches.push(env.clone());
                }
                if branches.is_empty() {
                    return Flow::Term;
                }
                *env = Env::join_all(&mut self.cfg, &branches, self.empty_nt);
                Flow::Cont
            }
            StmtKind::Return(v) => {
                let nt = match v {
                    Some(e) => self.eval(e, env),
                    None => self.empty_nt,
                };
                if let Some(frame) = self.return_stack.last_mut() {
                    frame.push(nt);
                }
                Flow::Term
            }
            StmtKind::Break | StmtKind::Continue => Flow::Cont,
            StmtKind::Exit(v) => {
                if let Some(e) = v {
                    self.eval(e, env);
                }
                Flow::Term
            }
            StmtKind::FuncDecl(d) => {
                let file = self.cur_file.clone();
                self.functions
                    .entry(d.name.clone())
                    .or_insert_with(|| (Rc::new(d.clone()), file));
                Flow::Cont
            }
            StmtKind::ClassDecl(c) => {
                for m in &c.methods {
                    let file = self.cur_file.clone();
                    self.methods
                        .entry(m.name.clone())
                        .or_insert_with(|| (Rc::new(m.clone()), file));
                }
                Flow::Cont
            }
            StmtKind::Global(names) => {
                for n in names {
                    let sets = self.global_sets.get(n).cloned().unwrap_or_default();
                    let nt = match sets.as_slice() {
                        [] => self.empty_nt,
                        [one] => *one,
                        many => {
                            let j = self.cfg.add_nonterminal(format!("global:{n}"));
                            for &m in many {
                                self.cfg.add_production(j, vec![Symbol::N(m)]);
                            }
                            j
                        }
                    };
                    env.set(n.clone(), nt);
                    if let Some(declared) = self.declared_globals.last_mut() {
                        declared.insert(n.clone());
                    }
                }
                Flow::Cont
            }
            StmtKind::Unset(args) => {
                for a in args {
                    if let Some(key) = self.lvalue_key(a) {
                        env.unset(&key);
                    }
                }
                Flow::Cont
            }
            StmtKind::Include { kind, arg } => {
                self.handle_include(*kind, arg, stmt.span, env);
                Flow::Cont
            }
        }
    }

    /// Analyzes a loop: creates header nonterminals for variables
    /// assigned in the body, runs one body pass, and closes the
    /// recursion with back-productions.
    fn loop_body(
        &mut self,
        env: &mut Env,
        cond: Option<&Expr>,
        body: &[Stmt],
        step: &[Expr],
        extra_var: Option<&str>,
    ) {
        let mut assigned: BTreeSet<String> = BTreeSet::new();
        collect_assigned(body, &mut assigned);
        for e in step {
            collect_assigned_expr(e, &mut assigned);
        }
        if let Some(v) = extra_var {
            assigned.insert(v.to_owned());
        }
        // Create headers.
        let mut headers: Vec<(String, NtId)> = Vec::new();
        for var in &assigned {
            let pre = env.get(var).unwrap_or(self.empty_nt);
            let h = self.cfg.add_nonterminal(format!("{var}@loop"));
            self.cfg.add_production(h, vec![Symbol::N(pre)]);
            env.set(var.clone(), h);
            headers.push((var.clone(), h));
            self.open_headers.push(h);
        }
        if let Some(c) = cond {
            self.eval(c, env);
        }
        let mut body_env = env.clone();
        if let Some(c) = cond {
            self.refine(c, &mut body_env, true);
        }
        let flow = self.analyze_stmts(body, &mut body_env);
        if flow == Flow::Cont {
            for e in step {
                self.eval(e, &mut body_env);
            }
        }
        // Close the recursion.
        for (var, h) in &headers {
            let end = body_env.get(var).unwrap_or(self.empty_nt);
            if end != *h {
                self.cfg.add_production(*h, vec![Symbol::N(end)]);
            }
        }
        for _ in &headers {
            self.open_headers.pop();
        }
        // After the loop the header binding stands for "any number of
        // iterations"; refine with the negated condition.
        if let Some(c) = cond {
            self.refine(c, env, false);
        }
    }

    fn elements_of(&mut self, subject: &Expr, env: &mut Env) -> NtId {
        let nt = self.eval(subject, env);
        if let ExprKind::Var(name) = &subject.kind {
            let keys = env.element_keys(name);
            if !keys.is_empty() {
                let mut parts: Vec<NtId> =
                    keys.iter().filter_map(|k| env.get(k)).collect();
                if env.get(name).is_some() {
                    parts.push(nt);
                }
                parts.sort();
                parts.dedup();
                if parts.len() == 1 {
                    return parts[0];
                }
                let j = self.cfg.add_nonterminal(format!("elems:{name}"));
                for p in parts {
                    self.cfg.add_production(j, vec![Symbol::N(p)]);
                }
                return j;
            }
        }
        nt
    }

    // ------------------------------------------------- expressions

    /// Canonical environment key for an lvalue expression, if it has
    /// one.
    pub(crate) fn lvalue_key(&self, e: &Expr) -> Option<String> {
        match &e.kind {
            ExprKind::Var(v) => Some(v.clone()),
            ExprKind::Index(base, idx) => {
                let base_key = self.lvalue_key(base)?;
                let key = match idx {
                    None => "*".to_owned(),
                    Some(i) => match const_bytes_static(i) {
                        Some(b) => String::from_utf8_lossy(&b).into_owned(),
                        None => "*".to_owned(),
                    },
                };
                Some(format!("{base_key}{KEY_SEP}{key}"))
            }
            ExprKind::Prop(base, p) => {
                let base_key = self.lvalue_key(base)?;
                Some(format!("{base_key}->{p}"))
            }
            _ => None,
        }
    }

    fn root_var(key: &str) -> &str {
        key.split(KEY_SEP)
            .next()
            .unwrap_or(key)
            .split("->")
            .next()
            .unwrap_or(key)
    }

    pub(crate) fn eval(&mut self, e: &Expr, env: &mut Env) -> NtId {
        match &e.kind {
            ExprKind::Null => self.empty_nt,
            ExprKind::Bool(true) => self.literal_nt(b"1"),
            ExprKind::Bool(false) => self.empty_nt,
            ExprKind::Int(i) => {
                let s = i.to_string();
                self.literal_nt(s.as_bytes())
            }
            ExprKind::Float(x) => {
                let s = format!("{x}");
                self.literal_nt(s.as_bytes())
            }
            ExprKind::Str(s) => self.literal_nt(s),
            ExprKind::Interp(parts) => {
                let mut rhs: Vec<Symbol> = Vec::new();
                for p in parts {
                    match p {
                        StrPart::Lit(bytes) => {
                            rhs.extend(bytes.iter().map(|&b| Symbol::T(b)));
                        }
                        StrPart::Var(v) => {
                            let span = e.span;
                            let sub = Expr::new(ExprKind::Var(v.clone()), span);
                            let nt = self.eval(&sub, env);
                            rhs.push(Symbol::N(nt));
                        }
                        StrPart::Index(v, key) => {
                            let span = e.span;
                            let sub = Expr::new(
                                ExprKind::Index(
                                    Box::new(Expr::new(ExprKind::Var(v.clone()), span)),
                                    Some(Box::new(Expr::new(
                                        ExprKind::Str(key.clone()),
                                        span,
                                    ))),
                                ),
                                span,
                            );
                            let nt = self.eval(&sub, env);
                            rhs.push(Symbol::N(nt));
                        }
                        StrPart::Prop(v, p) => {
                            let span = e.span;
                            let sub = Expr::new(
                                ExprKind::Prop(
                                    Box::new(Expr::new(ExprKind::Var(v.clone()), span)),
                                    p.clone(),
                                ),
                                span,
                            );
                            let nt = self.eval(&sub, env);
                            rhs.push(Symbol::N(nt));
                        }
                    }
                }
                let nt = self.cfg.add_nonterminal("interp");
                self.cfg.add_production(nt, rhs);
                nt
            }
            ExprKind::Var(v) => {
                if let Some(nt) = env.get(v) {
                    return nt;
                }
                if self.config.direct_superglobals.iter().any(|s| s == v) {
                    let nt = self.source_nt(format!("{v}[*]"), Taint::DIRECT);
                    env.set(v.clone(), nt);
                    return nt;
                }
                if self.config.indirect_globals.iter().any(|s| s == v) {
                    let nt = self.source_nt(format!("{v}[*]"), Taint::INDIRECT);
                    env.set(v.clone(), nt);
                    return nt;
                }
                self.empty_nt
            }
            ExprKind::ConstFetch(name) => {
                if let Some(&nt) = self.constants.get(name) {
                    return nt;
                }
                match name.as_str() {
                    "PHP_EOL" => self.literal_nt(b"\n"),
                    _ => self.literal_nt(name.as_bytes()),
                }
            }
            ExprKind::Index(base, idx) => {
                if let Some(i) = idx {
                    // Evaluate dynamic indexes for side effects.
                    if const_bytes_static(i).is_none() {
                        self.eval(i, env);
                    }
                }
                if let Some(key) = self.lvalue_key(e) {
                    if let Some(nt) = env.get(&key) {
                        return nt;
                    }
                    let root = Self::root_var(&key);
                    if self.config.direct_superglobals.iter().any(|s| s == root) {
                        let display = crate::env::clean_key(&key);
                        let nt = self.source_nt(display, Taint::DIRECT);
                        env.set(key, nt);
                        return nt;
                    }
                    if self.config.indirect_globals.iter().any(|s| s == root) {
                        let display = crate::env::clean_key(&key);
                        let nt = self.source_nt(display, Taint::INDIRECT);
                        env.set(key, nt);
                        return nt;
                    }
                    // Unknown element of a known array: join all known
                    // elements plus the array binding.
                    if key.ends_with(&format!("{KEY_SEP}*")) {
                        let sub = self.elements_of(base, env);
                        return sub;
                    }
                    // Element of an array-valued binding (fetch rows,
                    // explode results): the collapsed representation
                    // stores the element language on the array variable.
                    if let Some(base_key) = self.lvalue_key(base) {
                        if let Some(base_nt) = env.get(&base_key) {
                            if base_nt != self.empty_nt {
                                env.set(key, base_nt);
                                return base_nt;
                            }
                        }
                    }
                    return self.empty_nt;
                }
                // Indexing a computed value: keep taint, widen.
                let base_nt = self.eval(base, env);
                let t = self.reachable_taint(base_nt);
                self.any_with_taint("index", t)
            }
            ExprKind::Prop(base, _) => {
                if let Some(key) = self.lvalue_key(e) {
                    if let Some(nt) = env.get(&key) {
                        return nt;
                    }
                    let root = Self::root_var(&key);
                    if self.config.indirect_globals.iter().any(|s| s == root) {
                        let nt = self.source_nt(key.clone(), Taint::INDIRECT);
                        env.set(key, nt);
                        return nt;
                    }
                    return self.empty_nt;
                }
                let base_nt = self.eval(base, env);
                let t = self.reachable_taint(base_nt);
                self.any_with_taint("prop", t)
            }
            ExprKind::Assign(lhs, op, rhs) => {
                // list($a, $b) = expr — each variable receives the
                // collapsed element language (array order is lost, as
                // with explode, paper §3.1.3).
                if op.is_none() {
                    if let ExprKind::Call(name, vars) = &lhs.kind {
                        if name == "list" {
                            let vars = vars.clone();
                            let rv = self.eval(rhs, env);
                            for v in &vars {
                                if let Some(key) = self.lvalue_key(v) {
                                    env.set(key, rv);
                                }
                            }
                            return rv;
                        }
                    }
                }
                // Array-literal assignment distributes over elements.
                if op.is_none() {
                    if let (ExprKind::Array(items), Some(base_key)) =
                        (&rhs.kind, self.lvalue_key(lhs))
                    {
                        let items = items.clone();
                        return self.assign_array_literal(&base_key, &items, env, e.span);
                    }
                }
                // Relevance hint: expensive operations in the RHS keep
                // precision only when the assigned variable may reach a
                // query (paper §7 backward slice).
                let pushed = if self.relevance.is_some() {
                    match self.lvalue_key(lhs) {
                        Some(key) => {
                            self.push_hint_for_lvalue(&key);
                            true
                        }
                        None => false,
                    }
                } else {
                    false
                };
                let rv = self.eval(rhs, env);
                if pushed {
                    self.hint_stack.pop();
                }
                let value = match op {
                    None => rv,
                    Some(BinOp::Concat) => {
                        let old = match self.lvalue_key(lhs) {
                            Some(k) => env.get(&k).unwrap_or(self.empty_nt),
                            None => self.empty_nt,
                        };
                        let nt = self.cfg.add_nonterminal("concat=");
                        self.cfg
                            .add_production(nt, vec![Symbol::N(old), Symbol::N(rv)]);
                        nt
                    }
                    Some(_) => {
                        let t = self.reachable_taint(rv);
                        self.numeric_result(t)
                    }
                };
                self.assign_lvalue(lhs, value, env);
                value
            }
            ExprKind::Ternary(cond, then, els) => {
                let cond_nt = self.eval(cond, env);
                let mut t_env = env.clone();
                self.refine(cond, &mut t_env, true);
                let t_nt = match then {
                    Some(t) => self.eval(t, &mut t_env),
                    None => cond_nt,
                };
                let mut e_env = env.clone();
                self.refine(cond, &mut e_env, false);
                let e_nt = self.eval(els, &mut e_env);
                *env = Env::join(&mut self.cfg, &t_env, &e_env, self.empty_nt);
                if t_nt == e_nt {
                    t_nt
                } else {
                    let j = self.cfg.add_nonterminal("ternary");
                    self.cfg.add_production(j, vec![Symbol::N(t_nt)]);
                    self.cfg.add_production(j, vec![Symbol::N(e_nt)]);
                    j
                }
            }
            ExprKind::Binary(op, a, b) => {
                let na = self.eval(a, env);
                let nb = self.eval(b, env);
                match op {
                    BinOp::Concat => {
                        let nt = self.cfg.add_nonterminal("concat");
                        self.cfg
                            .add_production(nt, vec![Symbol::N(na), Symbol::N(nb)]);
                        nt
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        let t = self.args_taint(&[na, nb]);
                        self.numeric_result(t)
                    }
                    _ => self.lang_nt("bool"),
                }
            }
            ExprKind::Unary(op, inner) => {
                let nt = self.eval(inner, env);
                match op {
                    UnaryOp::Not => self.lang_nt("bool"),
                    UnaryOp::Neg => {
                        let t = self.reachable_taint(nt);
                        self.numeric_result(t)
                    }
                }
            }
            ExprKind::Cast(kind, inner) => {
                let nt = self.eval(inner, env);
                match kind {
                    CastKind::Int | CastKind::Float => {
                        let t = self.reachable_taint(nt);
                        self.numeric_result(t)
                    }
                    CastKind::Str => nt,
                    CastKind::Bool => self.lang_nt("bool"),
                    CastKind::Array => nt,
                }
            }
            ExprKind::Suppress(inner) => self.eval(inner, env),
            ExprKind::IncDec { target, .. } => {
                let t = match self.lvalue_key(target) {
                    Some(k) => env
                        .get(&k)
                        .map(|nt| self.reachable_taint(nt))
                        .unwrap_or(Taint::NONE),
                    None => Taint::NONE,
                };
                let nt = self.numeric_result(t);
                self.assign_lvalue(target, nt, env);
                nt
            }
            ExprKind::Isset(args) => {
                for a in args {
                    self.eval(a, env);
                }
                self.lang_nt("bool")
            }
            ExprKind::Empty(inner) => {
                self.eval(inner, env);
                self.lang_nt("bool")
            }
            ExprKind::Array(items) => {
                let mut parts: Vec<NtId> = Vec::new();
                for (k, v) in items {
                    if let Some(key) = k {
                        self.eval(key, env);
                    }
                    parts.push(self.eval(v, env));
                }
                parts.sort();
                parts.dedup();
                match parts.as_slice() {
                    [] => self.empty_nt,
                    [one] => *one,
                    many => {
                        let j = self.cfg.add_nonterminal("array");
                        for &p in many {
                            self.cfg.add_production(j, vec![Symbol::N(p)]);
                        }
                        j
                    }
                }
            }
            ExprKind::New(_, args) => {
                // Constructors are not inlined; the object value itself
                // carries no string language.
                for a in args {
                    self.eval(a, env);
                }
                self.any_nt
            }
            ExprKind::Call(name, args) => self.eval_call(name, args, e.span, env),
            ExprKind::MethodCall(obj, m, args) => {
                self.eval(obj, env);
                self.eval_sink_or_fetch(&format!("->{m}"), m, args, e.span, env)
            }
        }
    }

    fn numeric_result(&mut self, taint: Taint) -> NtId {
        let num = self.lang_nt("num");
        if taint.is_empty() {
            return num;
        }
        let nt = self.cfg.add_nonterminal("num†");
        self.cfg.add_production(nt, vec![Symbol::N(num)]);
        self.cfg.set_taint(nt, taint);
        nt
    }

    fn assign_array_literal(
        &mut self,
        base_key: &str,
        items: &[(Option<Expr>, Expr)],
        env: &mut Env,
        span: Span,
    ) -> NtId {
        // Clear prior elements.
        for k in env.element_keys(base_key) {
            env.unset(&k);
        }
        env.unset(base_key);
        let mut parts: Vec<NtId> = Vec::new();
        let mut auto = 0usize;
        for (k, v) in items {
            let nt = self.eval(v, env);
            parts.push(nt);
            let key = match k {
                Some(ke) => match const_bytes_static(ke) {
                    Some(b) => String::from_utf8_lossy(&b).into_owned(),
                    None => "*".to_owned(),
                },
                None => {
                    let k = auto.to_string();
                    auto += 1;
                    k
                }
            };
            env.set(format!("{base_key}{KEY_SEP}{key}"), nt);
        }
        let _ = span;
        parts.sort();
        parts.dedup();
        let joined = match parts.as_slice() {
            [] => self.empty_nt,
            [one] => *one,
            many => {
                let j = self.cfg.add_nonterminal(format!("arraylit:{base_key}"));
                for &p in many {
                    self.cfg.add_production(j, vec![Symbol::N(p)]);
                }
                j
            }
        };
        if self.call_stack.is_empty() {
            self.global_sets
                .entry(base_key.to_owned())
                .or_default()
                .push(joined);
        }
        joined
    }

    pub(crate) fn assign_lvalue(&mut self, lhs: &Expr, value: NtId, env: &mut Env) {
        let Some(key) = self.lvalue_key(lhs) else {
            self.warn("assignment to unsupported lvalue ignored");
            return;
        };
        // `$a[] = v` / `$a[$dyn] = v` accumulate rather than replace.
        if key.ends_with(&format!("{KEY_SEP}*")) {
            let prior = env.get(&key);
            let nt = match prior {
                Some(p) if p != value => {
                    let j = self.cfg.add_nonterminal("accum");
                    self.cfg.add_production(j, vec![Symbol::N(p)]);
                    self.cfg.add_production(j, vec![Symbol::N(value)]);
                    j
                }
                _ => value,
            };
            env.set(key.clone(), nt);
        } else {
            env.set(key.clone(), value);
        }
        // Record global bindings for `global` declarations in functions.
        let at_top = self.call_stack.is_empty();
        let declared = self
            .declared_globals
            .last()
            .is_some_and(|d| d.contains(Self::root_var(&key)));
        if at_top || declared {
            self.global_sets.entry(key).or_default().push(value);
        }
    }

    // ------------------------------------------------------ calls

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        env: &mut Env,
    ) -> NtId {
        // define() tracks program constants.
        if name == "define" && args.len() >= 2 {
            if let Some(cname) = const_bytes_static(&args[0]) {
                let nt = self.eval(&args[1], env);
                self.constants
                    .insert(String::from_utf8_lossy(&cname).into_owned(), nt);
                return self.lang_nt("bool");
            }
        }
        // User-defined functions take precedence over builtins, as in
        // PHP (redefinition of builtins is an error, so order rarely
        // matters; applications define helpers like unp_msg()).
        if let Some((decl, file)) = self.functions.get(name).cloned() {
            return self.eval_user_call(&decl, &file, args, env);
        }
        self.eval_sink_or_fetch(name, name, args, span, env)
    }

    /// Shared path for free functions and method calls: hotspots,
    /// fetch sources, then builtins.
    fn eval_sink_or_fetch(
        &mut self,
        label: &str,
        bare: &str,
        args: &[Expr],
        span: Span,
        env: &mut Env,
    ) -> NtId {
        let is_hotspot = if label.starts_with("->") {
            self.config.hotspot_methods.iter().any(|m| m == bare)
        } else {
            self.config.hotspot_functions.iter().any(|m| m == bare)
        };
        if is_hotspot {
            // Query arguments are always relevance-precise.
            self.hint_stack.push(true);
            let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            self.hint_stack.pop();
            if let Some(&q) = arg_nts.first() {
                let file = self.cur_file.clone();
                self.hotspots.push(Hotspot {
                    file,
                    span,
                    label: label.to_owned(),
                    root: q,
                });
            }
            return self.cfg.add_nonterminal("dbresult");
        }
        if self.config.fetch_functions.iter().any(|m| m == bare) {
            for a in args {
                self.eval(a, env);
            }
            return self.source_nt(format!("fetch:{label}"), Taint::INDIRECT);
        }
        if label.starts_with("->") {
            // Application-defined methods: dispatch by bare name (the
            // classless over-approximation; real receivers are rarely
            // ambiguous in this code base style).
            if let Some((decl, file)) = self.methods.get(bare).cloned() {
                return self.eval_user_call(&decl, &file, args, env);
            }
            for a in args {
                self.eval(a, env);
            }
            // Unknown method: widen, untainted (configured methods cover
            // the DB layer; others are application objects).
            self.unmodeled.insert(label.to_owned());
            return self.any_nt;
        }
        self.eval_builtin(bare, args, env)
    }

    fn eval_user_call(
        &mut self,
        decl: &Rc<FuncDecl>,
        decl_file: &str,
        args: &[Expr],
        env: &mut Env,
    ) -> NtId {
        if self.call_stack.len() >= self.config.max_call_depth
            || self.call_stack.iter().any(|n| n == &decl.name)
        {
            let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&arg_nts);
            self.warn(format!(
                "call to {} widened (recursion or depth limit)",
                decl.name
            ));
            return self.any_with_taint(&decl.name, t);
        }
        let mut callee_env = Env::new();
        let mut ref_backs: Vec<(usize, String)> = Vec::new();
        for (i, p) in decl.params.iter().enumerate() {
            let nt = match args.get(i) {
                Some(a) => {
                    let nt = self.eval(a, env);
                    if p.by_ref {
                        if let Some(k) = self.lvalue_key(a) {
                            ref_backs.push((i, k));
                        }
                    }
                    nt
                }
                None => match &p.default {
                    Some(d) => self.eval(d, env),
                    None => self.empty_nt,
                },
            };
            callee_env.set(p.name.clone(), nt);
        }
        // Extra args evaluated for effects.
        for a in args.iter().skip(decl.params.len()) {
            self.eval(a, env);
        }
        self.call_stack.push(decl.name.clone());
        self.return_stack.push(Vec::new());
        self.declared_globals.push(HashSet::new());
        // Hotspots inside the body belong to the file that defines the
        // function, not the calling page.
        let prev_file = std::mem::replace(&mut self.cur_file, decl_file.to_owned());
        self.analyze_stmts(&decl.body, &mut callee_env);
        self.cur_file = prev_file;
        self.declared_globals.pop();
        let returns = self.return_stack.pop().expect("frame pushed");
        self.call_stack.pop();
        for (i, key) in ref_backs {
            if let Some(nt) = callee_env.get(&decl.params[i].name) {
                env.set(key, nt);
            }
        }
        match returns.as_slice() {
            [] => self.empty_nt,
            [one] => *one,
            many => {
                let j = self.cfg.add_nonterminal(format!("ret:{}", decl.name));
                let mut uniq = many.to_vec();
                uniq.sort();
                uniq.dedup();
                for nt in uniq {
                    self.cfg.add_production(j, vec![Symbol::N(nt)]);
                }
                j
            }
        }
    }

    fn eval_builtin(&mut self, name: &str, args: &[Expr], env: &mut Env) -> NtId {
        let model = builtins::lookup(name);
        let Some(model) = model else {
            let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&arg_nts);
            self.unmodeled.insert(name.to_owned());
            return self.any_with_taint(name, t);
        };
        match model {
            Model::Identity => match args.first() {
                Some(a) => self.eval(a, env),
                None => self.empty_nt,
            },
            Model::Transducer(kind) => {
                let nt = match args.first() {
                    Some(a) => self.eval(a, env),
                    None => self.empty_nt,
                };
                for a in args.iter().skip(1) {
                    self.eval(a, env);
                }
                let fst = builtins::transducer_fst(kind);
                self.apply_fst(nt, &fst, name)
            }
            Model::Numeric => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                self.numeric_result(t)
            }
            Model::HexToken => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                let hex = self.lang_nt("hex");
                self.wrap_lang(hex, t, "hex†")
            }
            Model::Base64 => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                let b = self.lang_nt("b64");
                self.wrap_lang(b, t, "b64†")
            }
            Model::UrlSafe => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                let u = self.lang_nt("urlsafe");
                self.wrap_lang(u, t, "urlsafe†")
            }
            Model::AnyKeepTaint => {
                let arg_nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
                let t = self.args_taint(&arg_nts);
                self.any_with_taint(name, t)
            }
            Model::AnyUntainted => {
                for a in args {
                    self.eval(a, env);
                }
                self.any_nt
            }
            Model::ConstEmpty => {
                for a in args {
                    self.eval(a, env);
                }
                self.empty_nt
            }
            Model::Bool => {
                for a in args {
                    self.eval(a, env);
                }
                self.lang_nt("bool")
            }
            Model::StrReplace => self.eval_str_replace(args, env),
            Model::PregReplace { posix_ci, delimited } => {
                self.eval_preg_replace(args, env, posix_ci, delimited)
            }
            Model::Sprintf => self.eval_sprintf(args, env),
            Model::Implode => self.eval_implode(args, env),
            Model::Explode => self.eval_explode(args, env),
            Model::StrRepeat => self.eval_str_repeat(args, env),
        }
    }

    fn eval_str_repeat(&mut self, args: &[Expr], env: &mut Env) -> NtId {
        if args.len() < 2 {
            return self.empty_nt;
        }
        let base = self.eval(&args[0], env);
        // Constant small counts unroll exactly; anything else becomes
        // "any number of repetitions" (a recursive production) — an
        // over-approximation that preserves the alphabet and taint.
        let count = const_bytes_static(&args[1])
            .and_then(|b| String::from_utf8_lossy(&b).parse::<usize>().ok());
        match count {
            Some(n) if n <= 16 => {
                let nt = self.cfg.add_nonterminal("str_repeat");
                self.cfg
                    .add_production(nt, vec![Symbol::N(base); n]);
                nt
            }
            _ => {
                self.eval(&args[1], env);
                let nt = self.cfg.add_nonterminal("str_repeat*");
                self.cfg.add_production(nt, vec![]);
                self.cfg
                    .add_production(nt, vec![Symbol::N(base), Symbol::N(nt)]);
                nt
            }
        }
    }

    fn wrap_lang(&mut self, lang: NtId, taint: Taint, name: &str) -> NtId {
        if taint.is_empty() {
            return lang;
        }
        let nt = self.cfg.add_nonterminal(name);
        self.cfg.add_production(nt, vec![Symbol::N(lang)]);
        self.cfg.set_taint(nt, taint);
        nt
    }

    fn eval_str_replace(&mut self, args: &[Expr], env: &mut Env) -> NtId {
        if args.len() < 3 {
            return self.empty_nt;
        }
        let subj = self.eval(&args[2], env);
        // Scalar or array-of-literal pattern/replacement.
        let pats: Option<Vec<Vec<u8>>> = const_list(&args[0]);
        let reps: Option<Vec<Vec<u8>>> = const_list(&args[1]);
        if let (Some(pats), Some(reps)) = (pats, reps) {
            if !pats.is_empty() && pats.iter().all(|p| !p.is_empty()) {
                // PHP semantics: pattern i is replaced by replacement i
                // (or "" / the scalar). Apply sequentially.
                let mut cur = subj;
                for (i, pat) in pats.iter().enumerate() {
                    let rep = if reps.len() == 1 {
                        reps[0].clone()
                    } else {
                        reps.get(i).cloned().unwrap_or_default()
                    };
                    let fst = strtaint_automata::fst::builders::replace_literal(pat, &rep);
                    cur = self.apply_fst(cur, &fst, "str_replace");
                }
                return cur;
            }
        }
        self.eval(&args[0], env);
        self.eval(&args[1], env);
        let t = self.reachable_taint(subj);
        self.any_with_taint("str_replace", t)
    }

    fn eval_preg_replace(
        &mut self,
        args: &[Expr],
        env: &mut Env,
        posix_ci: bool,
        delimited: bool,
    ) -> NtId {
        if args.len() < 3 {
            return self.empty_nt;
        }
        let subj = self.eval(&args[2], env);
        let pat = const_bytes_static(&args[0]);
        let rep = const_bytes_static(&args[1]);
        if let (Some(pat), Some(rep)) = (pat, rep) {
            let pat_str = String::from_utf8_lossy(&pat).into_owned();
            let re = if delimited {
                Regex::new_delimited(&pat_str)
            } else {
                Regex::with_flags(&pat_str, posix_ci)
            };
            let has_backref = rep.windows(2).any(|w| {
                (w[0] == b'\\' || w[0] == b'$') && w[1].is_ascii_digit()
            });
            if let Ok(re) = re {
                use strtaint_automata::regex::Anchoring;
                if !has_backref && re.ast().anchoring() == Anchoring::None {
                    let dfa = Dfa::from_nfa(&re.anchored_nfa()).minimize();
                    let fst = strtaint_automata::fst::builders::replace_regex(&dfa, &rep);
                    return self.apply_fst(subj, &fst, "preg_replace");
                }
            }
        }
        self.eval(&args[0], env);
        self.eval(&args[1], env);
        let t = self.reachable_taint(subj);
        self.any_with_taint("preg_replace", t)
    }

    fn eval_sprintf(&mut self, args: &[Expr], env: &mut Env) -> NtId {
        let Some(fmt) = args.first().and_then(const_bytes_static) else {
            let nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&nts);
            return self.any_with_taint("sprintf", t);
        };
        let mut rhs: Vec<Symbol> = Vec::new();
        let mut arg_idx = 1usize;
        let mut i = 0usize;
        let mut ok = true;
        while i < fmt.len() {
            let b = fmt[i];
            if b != b'%' {
                rhs.push(Symbol::T(b));
                i += 1;
                continue;
            }
            i += 1;
            if i >= fmt.len() {
                break;
            }
            // Skip flags/width/precision.
            while i < fmt.len()
                && (fmt[i].is_ascii_digit()
                    || matches!(fmt[i], b'-' | b'+' | b' ' | b'0' | b'.' | b'\''))
            {
                i += 1;
            }
            if i >= fmt.len() {
                ok = false;
                break;
            }
            match fmt[i] {
                b'%' => rhs.push(Symbol::T(b'%')),
                b's' => {
                    let nt = match args.get(arg_idx) {
                        Some(a) => self.eval(a, env),
                        None => self.empty_nt,
                    };
                    arg_idx += 1;
                    rhs.push(Symbol::N(nt));
                }
                b'd' | b'u' | b'i' | b'f' | b'F' | b'e' | b'g' => {
                    let t = match args.get(arg_idx) {
                        Some(a) => {
                            let nt = self.eval(a, env);
                            self.reachable_taint(nt)
                        }
                        None => Taint::NONE,
                    };
                    arg_idx += 1;
                    let nt = self.numeric_result(t);
                    rhs.push(Symbol::N(nt));
                }
                b'x' | b'X' | b'o' | b'b' => {
                    let _ = args.get(arg_idx).map(|a| self.eval(a, env));
                    arg_idx += 1;
                    let nt = self.lang_nt("hex");
                    rhs.push(Symbol::N(nt));
                }
                _ => {
                    ok = false;
                    break;
                }
            }
            i += 1;
        }
        if !ok {
            let nts: Vec<NtId> = args.iter().map(|a| self.eval(a, env)).collect();
            let t = self.args_taint(&nts);
            return self.any_with_taint("sprintf", t);
        }
        // Remaining args: evaluate for effects.
        for a in args.iter().skip(arg_idx.max(1)) {
            self.eval(a, env);
        }
        let nt = self.cfg.add_nonterminal("sprintf");
        self.cfg.add_production(nt, rhs);
        nt
    }

    fn eval_implode(&mut self, args: &[Expr], env: &mut Env) -> NtId {
        if args.len() < 2 {
            if let Some(a) = args.first() {
                let nt = self.eval(a, env);
                let t = self.reachable_taint(nt);
                return self.any_with_taint("implode", t);
            }
            return self.empty_nt;
        }
        let glue = const_bytes_static(&args[0]);
        let elems = self.elements_of(&args[1], env);
        let Some(glue) = glue else {
            self.eval(&args[0], env);
            let t = self.reachable_taint(elems);
            return self.any_with_taint("implode", t);
        };
        // R → E | E glue R  (any count, order lost — like the paper's
        // explode treatment).
        let r = self.cfg.add_nonterminal("implode");
        self.cfg.add_production(r, vec![Symbol::N(elems)]);
        let mut rhs = vec![Symbol::N(elems)];
        rhs.extend(glue.iter().map(|&b| Symbol::T(b)));
        rhs.push(Symbol::N(r));
        self.cfg.add_production(r, rhs);
        r
    }

    fn eval_explode(&mut self, args: &[Expr], env: &mut Env) -> NtId {
        if args.len() < 2 {
            return self.empty_nt;
        }
        let subj = self.eval(&args[1], env);
        let delim = const_bytes_static(&args[0]);
        let Some(delim) = delim else {
            self.eval(&args[0], env);
            let t = self.reachable_taint(subj);
            return self.any_with_taint("explode", t);
        };
        // Piece transducer: skip a prefix, copy a piece, skip the rest
        // (paper Fig. 8 / Minamide's two-FST construction; the order of
        // the returned array is lost, exactly as the paper notes).
        let fst = explode_piece_fst(&delim);
        self.apply_fst(subj, &fst, "explode")
    }

    // ---------------------------------------------------- includes

    fn layout_dfa(&mut self) -> Rc<Dfa> {
        if let Some(d) = &self.layout {
            return Rc::clone(d);
        }
        let mut nfa = Nfa::empty();
        for p in self.vfs.paths() {
            nfa = nfa.union(&Nfa::literal(p.as_bytes()));
            // Also accept the common "./path" spelling.
            let dotted = format!("./{p}");
            nfa = nfa.union(&Nfa::literal(dotted.as_bytes()));
        }
        let d = Rc::new(Dfa::from_nfa(&nfa).minimize());
        self.layout = Some(Rc::clone(&d));
        d
    }

    fn handle_include(
        &mut self,
        kind: IncludeKind,
        arg: &Expr,
        span: Span,
        env: &mut Env,
    ) {
        let nt = self.eval(arg, env);
        let site = format!("{}:{}", self.cur_file, span.line);
        let paths: Vec<String> = if let Some(ovr) = self.config.include_overrides.get(&site)
        {
            ovr.clone()
        } else if self.reaches_open_header(nt) {
            self.warn(format!("dynamic include at {site} inside loop skipped"));
            return;
        } else {
            let direct = bounded_language(&self.cfg, nt, self.config.max_include_fanout);
            let lang = match direct {
                Some(l) => Some(l),
                None => {
                    // §4: intersect with the filesystem layout, treating
                    // the directory tree as part of the specification.
                    let layout = self.layout_dfa();
                    let budget = self.budget.clone();
                    match intersect_with(&self.cfg, nt, &layout, &budget) {
                        Ok((g2, r2)) => {
                            bounded_language(&g2, r2, self.config.max_include_fanout)
                        }
                        Err(err) => {
                            self.degrade(
                                err,
                                &format!("include@{site}"),
                                DegradeAction::KeptUnrefined,
                            );
                            // Fall through to the unresolved-include
                            // warning below.
                            None
                        }
                    }
                }
            };
            match lang {
                Some(l) if !l.is_empty() => l
                    .into_iter()
                    .map(|b| String::from_utf8_lossy(&b).into_owned())
                    .collect(),
                Some(_) => {
                    self.warn(format!(
                        "dynamic include at {site} matches no file in the layout"
                    ));
                    return;
                }
                None => {
                    self.warn(format!(
                        "dynamic include at {site} unresolved (provide an override)"
                    ));
                    return;
                }
            }
        };
        for p in paths {
            self.include_file(&p, kind, env);
        }
    }

    fn include_file(&mut self, path: &str, kind: IncludeKind, env: &mut Env) {
        let norm = normalize(path);
        let once = matches!(kind, IncludeKind::IncludeOnce | IncludeKind::RequireOnce);
        if once && self.include_once.contains(&norm) {
            return;
        }
        let Some(src) = self.vfs.get(&norm) else {
            self.warn(format!("included file not found: {norm}"));
            return;
        };
        if once {
            self.include_once.insert(norm.clone());
        }
        let file = match self.parsed.get(&norm) {
            Some(f) => Rc::clone(f),
            None => match parse(src) {
                Ok(f) => {
                    let rc = Rc::new(f);
                    self.parsed.insert(norm.clone(), Rc::clone(&rc));
                    rc
                }
                Err(e) => {
                    self.warn(format!("included file {norm} failed to parse: {e}"));
                    return;
                }
            },
        };
        let prev = std::mem::replace(&mut self.cur_file, norm);
        self.files_analyzed += 1;
        self.register_functions(&file.stmts);
        self.analyze_stmts(&file.stmts, env);
        self.cur_file = prev;
    }
}

/// Builds the `explode` piece transducer for a delimiter: relates the
/// subject to each returned array element (superset when the delimiter
/// is multi-byte).
pub(crate) fn explode_piece_fst(delim: &[u8]) -> Fst {
    use strtaint_automata::{ByteSet, OutSym};
    let mut f = Fst::new();
    let skip_pre = f.start();
    let piece = f.add_state();
    let skip_post = f.add_state();
    f.add_arc(skip_pre, ByteSet::FULL, Vec::new(), skip_pre);
    let copyable = if delim.len() == 1 {
        ByteSet::singleton(delim[0]).complement()
    } else {
        ByteSet::FULL
    };
    // Enter the piece by copying its first byte.
    f.add_arc(skip_pre, copyable, vec![OutSym::Copy], piece);
    f.add_arc(piece, copyable, vec![OutSym::Copy], piece);
    // Leave the piece on a delimiter-ish byte.
    let leave = if delim.len() == 1 {
        ByteSet::singleton(delim[0])
    } else {
        ByteSet::FULL
    };
    f.add_arc(piece, leave, Vec::new(), skip_post);
    f.add_arc(skip_post, ByteSet::FULL, Vec::new(), skip_post);
    // Empty piece (delimiter at the edge) and full-piece cases.
    f.set_final(skip_pre, Vec::new());
    f.set_final(piece, Vec::new());
    f.set_final(skip_post, Vec::new());
    f
}

/// Constant-folds an expression to bytes when it is a literal (string,
/// int, float, escape-free interpolation, or concatenation of such).
pub(crate) fn const_bytes_static(e: &Expr) -> Option<Vec<u8>> {
    match &e.kind {
        ExprKind::Str(s) => Some(s.clone()),
        ExprKind::Int(i) => Some(i.to_string().into_bytes()),
        ExprKind::Float(x) => Some(format!("{x}").into_bytes()),
        ExprKind::Bool(true) => Some(b"1".to_vec()),
        ExprKind::Bool(false) | ExprKind::Null => Some(Vec::new()),
        ExprKind::Interp(parts) => {
            let mut out = Vec::new();
            for p in parts {
                match p {
                    StrPart::Lit(b) => out.extend_from_slice(b),
                    _ => return None,
                }
            }
            Some(out)
        }
        ExprKind::Binary(BinOp::Concat, a, b) => {
            let mut out = const_bytes_static(a)?;
            out.extend(const_bytes_static(b)?);
            Some(out)
        }
        _ => None,
    }
}

/// Constant-folds either a scalar literal (one-element list) or an
/// `array(...)` of literals.
fn const_list(e: &Expr) -> Option<Vec<Vec<u8>>> {
    if let ExprKind::Array(items) = &e.kind {
        let mut out = Vec::new();
        for (_, v) in items {
            out.push(const_bytes_static(v)?);
        }
        return Some(out);
    }
    const_bytes_static(e).map(|b| vec![b])
}

/// Collects the environment keys assigned anywhere in a statement list
/// (loop pre-scan for header creation).
fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Expr(e) | StmtKind::Return(Some(e)) | StmtKind::Exit(Some(e)) => {
                collect_assigned_expr(e, out)
            }
            StmtKind::Echo(es) | StmtKind::Unset(es) => {
                for e in es {
                    collect_assigned_expr(e, out);
                }
            }
            StmtKind::If {
                cond,
                then,
                elifs,
                els,
            } => {
                collect_assigned_expr(cond, out);
                collect_assigned(then, out);
                for (c, b) in elifs {
                    collect_assigned_expr(c, out);
                    collect_assigned(b, out);
                }
                if let Some(b) = els {
                    collect_assigned(b, out);
                }
            }
            StmtKind::While { cond, body } => {
                collect_assigned_expr(cond, out);
                collect_assigned(body, out);
            }
            StmtKind::DoWhile { body, cond } => {
                collect_assigned(body, out);
                collect_assigned_expr(cond, out);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init.iter().chain(step.iter()) {
                    collect_assigned_expr(e, out);
                }
                if let Some(c) = cond {
                    collect_assigned_expr(c, out);
                }
                collect_assigned(body, out);
            }
            StmtKind::Foreach {
                subject,
                key,
                value,
                body,
            } => {
                collect_assigned_expr(subject, out);
                if let Some(k) = key {
                    out.insert(k.clone());
                }
                out.insert(value.clone());
                collect_assigned(body, out);
            }
            StmtKind::Switch { subject, cases } => {
                collect_assigned_expr(subject, out);
                for (l, b) in cases {
                    if let Some(l) = l {
                        collect_assigned_expr(l, out);
                    }
                    collect_assigned(b, out);
                }
            }
            StmtKind::Block(b) => collect_assigned(b, out),
            StmtKind::Global(names) => {
                for n in names {
                    out.insert(n.clone());
                }
            }
            StmtKind::Include { arg, .. } => collect_assigned_expr(arg, out),
            _ => {}
        }
    }
}

fn collect_assigned_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match &e.kind {
        ExprKind::Assign(lhs, _, rhs) => {
            if let Some(key) = lvalue_key_static(lhs) {
                out.insert(key);
            }
            collect_assigned_expr(rhs, out);
        }
        ExprKind::IncDec { target, .. } => {
            if let Some(key) = lvalue_key_static(target) {
                out.insert(key);
            }
        }
        ExprKind::Binary(_, a, b) => {
            collect_assigned_expr(a, out);
            collect_assigned_expr(b, out);
        }
        ExprKind::Unary(_, a) | ExprKind::Suppress(a) | ExprKind::Empty(a) => {
            collect_assigned_expr(a, out)
        }
        ExprKind::Cast(_, a) => collect_assigned_expr(a, out),
        ExprKind::Ternary(c, t, f) => {
            collect_assigned_expr(c, out);
            if let Some(t) = t {
                collect_assigned_expr(t, out);
            }
            collect_assigned_expr(f, out);
        }
        ExprKind::Call(_, args) | ExprKind::Isset(args) | ExprKind::New(_, args) => {
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::MethodCall(obj, _, args) => {
            collect_assigned_expr(obj, out);
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::Index(b, i) => {
            collect_assigned_expr(b, out);
            if let Some(i) = i {
                collect_assigned_expr(i, out);
            }
        }
        ExprKind::Array(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    collect_assigned_expr(k, out);
                }
                collect_assigned_expr(v, out);
            }
        }
        _ => {}
    }
}

/// Static (analyzer-free) version of lvalue keying for the pre-scan.
fn lvalue_key_static(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Var(v) => Some(v.clone()),
        ExprKind::Index(base, idx) => {
            let b = lvalue_key_static(base)?;
            let key = match idx {
                None => "*".to_owned(),
                Some(i) => match const_bytes_static(i) {
                    Some(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
                    None => "*".to_owned(),
                },
            };
            Some(format!("{b}{KEY_SEP}{key}"))
        }
        ExprKind::Prop(base, p) => Some(format!("{}->{}", lvalue_key_static(base)?, p)),
        _ => None,
    }
}
